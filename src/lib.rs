//! # tm-ic — independent-connection traffic-matrix toolkit (facade)
//!
//! Reproduction of *"An Independent-Connection Model for Traffic Matrices"*
//! (Erramilli, Crovella, Taft — IMC 2006). This facade crate re-exports the
//! workspace's public API so applications can depend on a single crate:
//!
//! * [`linalg`] — dense linear algebra substrate,
//! * [`stats`] — distributions, MLE fits, diurnal activity models,
//! * [`topology`] — PoP graphs, routing matrices, link counts,
//! * [`flowsim`] — connection-level traffic and packet-trace simulation,
//! * [`datasets`] — synthetic stand-ins for the paper's D1/D2/D3 datasets,
//! * [`core`] — the IC model family, gravity model, and the Section 5.1
//!   fitting program (the paper's contribution),
//! * [`estimation`] — traffic-matrix estimation with IC and gravity priors.
//!
//! See `examples/quickstart.rs` for a 60-second tour.

pub use ic_core as core;
pub use ic_datasets as datasets;
pub use ic_estimation as estimation;
pub use ic_flowsim as flowsim;
pub use ic_linalg as linalg;
pub use ic_stats as stats;
pub use ic_topology as topology;
