//! # tm-ic — independent-connection traffic-matrix toolkit (facade)
//!
//! Reproduction of *"An Independent-Connection Model for Traffic Matrices"*
//! (Erramilli, Crovella, Taft — IMC 2006). This facade crate re-exports the
//! workspace's public API so applications can depend on a single crate:
//!
//! * [`linalg`] — dense linear algebra substrate,
//! * [`stats`] — distributions, MLE fits, diurnal activity models,
//! * [`topology`] — PoP graphs, routing matrices, link counts,
//! * [`flowsim`] — connection-level traffic and packet-trace simulation,
//! * [`datasets`] — synthetic stand-ins for the paper's D1/D2/D3 datasets,
//! * [`core`] — the IC model family behind the [`core::IcModel`]/
//!   [`core::Fit`] traits, gravity model, and the Section 5.1 fitting
//!   program (the paper's contribution),
//! * [`engine`] — the deterministic sharded execution engine
//!   ([`engine::Engine`]) every parallel layer schedules on: 1 worker and
//!   N workers are bit-identical by construction,
//! * [`obs`] — the hand-rolled observability layer: atomic metrics
//!   registry, span timers, structured event ring buffer, and the
//!   Prometheus/JSON renderings the serving layer exposes over the wire,
//! * [`estimation`] — traffic-matrix estimation with IC and gravity priors,
//! * [`stream`] — online/streaming estimation: windowed ingestion,
//!   warm-started incremental fits, parameter forecasting, and drift
//!   detection ([`stream::OnlineEstimator`] and friends),
//! * [`serve`] — the multi-tenant streaming estimation service
//!   ([`serve::Service`] core, [`serve::Server`]/[`serve::Client`] TCP
//!   front-end) with warm-state snapshots and deterministic
//!   record/replay journals,
//! * [`experiment`] — declarative [`experiment::Scenario`]s, the parallel
//!   [`experiment::Runner`], and structured reports.
//!
//! Most applications want `use tm_ic::prelude::*;` — it pulls in the
//! handful of types the examples use. [`TmIcError`] unifies every
//! layer's error type behind one `?`-friendly enum.
//!
//! See `examples/quickstart.rs` for a 60-second tour.

pub use ic_core as core;
pub use ic_datasets as datasets;
pub use ic_engine as engine;
pub use ic_estimation as estimation;
pub use ic_experiment as experiment;
pub use ic_flowsim as flowsim;
pub use ic_linalg as linalg;
pub use ic_obs as obs;
pub use ic_serve as serve;
pub use ic_stats as stats;
pub use ic_stream as stream;
pub use ic_topology as topology;

/// The one-stop error type of the facade: every workspace layer's error
/// converts into it, so application code can `?` across layers without
/// hand-mapping variants.
#[derive(Debug)]
pub enum TmIcError {
    /// Linear-algebra substrate failure.
    Linalg(ic_linalg::LinalgError),
    /// Statistics / distribution failure.
    Stats(ic_stats::StatsError),
    /// Topology / routing failure.
    Topology(ic_topology::TopologyError),
    /// Connection-level simulation failure.
    FlowSim(ic_flowsim::FlowSimError),
    /// Dataset build / I/O failure.
    Dataset(ic_datasets::DatasetError),
    /// IC-model / fitting failure.
    Core(ic_core::IcError),
    /// Estimation-pipeline failure.
    Estimation(ic_estimation::EstimationError),
    /// Streaming-estimation failure.
    Stream(ic_stream::StreamError),
    /// Serving-layer failure (tenant registry, snapshots, wire protocol).
    Serve(ic_serve::ServeError),
    /// Scenario / runner failure.
    Experiment(ic_experiment::ExperimentError),
}

impl std::fmt::Display for TmIcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TmIcError::Linalg(e) => write!(f, "linalg: {e}"),
            TmIcError::Stats(e) => write!(f, "stats: {e}"),
            TmIcError::Topology(e) => write!(f, "topology: {e}"),
            TmIcError::FlowSim(e) => write!(f, "flowsim: {e}"),
            TmIcError::Dataset(e) => write!(f, "dataset: {e}"),
            TmIcError::Core(e) => write!(f, "core: {e}"),
            TmIcError::Estimation(e) => write!(f, "estimation: {e}"),
            TmIcError::Stream(e) => write!(f, "stream: {e}"),
            TmIcError::Serve(e) => write!(f, "serve: {e}"),
            TmIcError::Experiment(e) => write!(f, "experiment: {e}"),
        }
    }
}

impl std::error::Error for TmIcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TmIcError::Linalg(e) => Some(e),
            TmIcError::Stats(e) => Some(e),
            TmIcError::Topology(e) => Some(e),
            TmIcError::FlowSim(e) => Some(e),
            TmIcError::Dataset(e) => Some(e),
            TmIcError::Core(e) => Some(e),
            TmIcError::Estimation(e) => Some(e),
            TmIcError::Stream(e) => Some(e),
            TmIcError::Serve(e) => Some(e),
            TmIcError::Experiment(e) => Some(e),
        }
    }
}

macro_rules! from_layer {
    ($variant:ident, $err:ty) => {
        impl From<$err> for TmIcError {
            fn from(e: $err) -> Self {
                TmIcError::$variant(e)
            }
        }
    };
}

from_layer!(Linalg, ic_linalg::LinalgError);
from_layer!(Stats, ic_stats::StatsError);
from_layer!(Topology, ic_topology::TopologyError);
from_layer!(FlowSim, ic_flowsim::FlowSimError);
from_layer!(Dataset, ic_datasets::DatasetError);
from_layer!(Core, ic_core::IcError);
from_layer!(Estimation, ic_estimation::EstimationError);
from_layer!(Stream, ic_stream::StreamError);
from_layer!(Serve, ic_serve::ServeError);
from_layer!(Experiment, ic_experiment::ExperimentError);

/// Convenience result alias over [`TmIcError`].
pub type Result<T> = std::result::Result<T, TmIcError>;

/// The toolkit's working set in one import: `use tm_ic::prelude::*;`.
///
/// Covers the model family ([`IcModel`](prelude::IcModel) /
/// [`Fit`](prelude::Fit) and the three parameterizations), synthesis,
/// the estimation pipeline with its priors, and the scenario/runner
/// experiment API.
pub mod prelude {
    pub use crate::{Result, TmIcError};
    pub use ic_core::{
        fit_stable_f, fit_stable_fp, fit_time_varying, generate_synthetic, gravity_predict,
        improvement_percent, mean_rel_l2, rel_l2_series, simplified_ic, Fit, FitOptions, FitReport,
        IcModel, Objective, StableFParams, StableFpParams, SynthConfig, TimeVaryingParams,
        TmSeries, WarmStart,
    };
    pub use ic_datasets::{build_d1, build_d2, Dataset, GeantConfig, TotemConfig};
    pub use ic_engine::{default_threads, Engine, Shard, ShardPlan, WorkspacePool};
    pub use ic_estimation::{
        compare_priors, compare_priors_with, EstimationConfig, EstimationPipeline, GravityPrior,
        IpfOptions, MeasuredIcPrior, ObservationModel, Observations, StableFPrior, StableFpPrior,
        TmPrior, TomogravityOptions,
    };
    pub use ic_experiment::{
        PriorStrategy, Report, Runner, Scenario, ScenarioReport, Source, Task, TopologySpec,
    };
    pub use ic_linalg::{BatchOptions, Matrix, Precision, SolveStats, SolverPolicy};
    pub use ic_obs::{MetricsRegistry, Span};
    pub use ic_serve::{
        Client, Server, Service, StatsFormat, TenantEvent, TenantSnapshot, TenantSpec,
    };
    pub use ic_stream::{
        replay_estimation, replay_estimation_with, replay_fit, replay_fit_with, DriftDetector,
        DriftOptions, ForecastOptions, LinkLoadStream, OnlineEstimator, OnlineGravity,
        ParamForecaster, ReplayOptions, ReplayReport, ReplayStream, StreamingTomogravity,
        SyntheticStream, WarmStartIcFit, Window, Windower,
    };
    pub use ic_topology::{geant22, totem23, RoutingScheme, Topology};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tm_ic_error_wraps_every_layer() {
        let errs: Vec<TmIcError> = vec![
            ic_linalg::LinalgError::Singular.into(),
            ic_stats::StatsError::InsufficientData("x").into(),
            ic_topology::TopologyError::Empty.into(),
            ic_core::IcError::BadData("y").into(),
            ic_estimation::EstimationError::BadData("z").into(),
            ic_experiment::ExperimentError::BadScenario("w".into()).into(),
            ic_stream::StreamError::BadConfig("s").into(),
            ic_serve::ServeError::BadRequest("q".into()).into(),
            ic_datasets::DatasetError::Format("v".into()).into(),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_some());
        }
    }

    #[test]
    fn question_mark_crosses_layers() {
        fn mixed() -> Result<f64> {
            let cfg = ic_core::SynthConfig::geant_like(3)
                .with_nodes(4)
                .with_bins(6);
            let out = ic_core::generate_synthetic(&cfg)?;
            let grav = ic_core::gravity_predict(&out.series)?;
            Ok(ic_core::mean_rel_l2(&out.series, &grav)?)
        }
        assert!(mixed().unwrap() > 0.0);
    }
}
