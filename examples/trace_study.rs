//! Measuring the forward ratio from packet traces (paper Section 5.2).
//!
//! Replays the paper's Abilene study: synthesize a two-hour bidirectional
//! packet-header trace on the IPLS↔CLEV link pair, match connections by
//! 5-tuple, attribute initiators by SYN, and measure `f` per 5-minute bin.
//! Also demonstrates the failure mode the paper warns about: connections
//! that straddle the trace start lose their SYN and become unknown
//! traffic.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_study            # 2-hour trace
//! cargo run --release --example trace_study -- --short # 10-minute trace
//! ```

use tm_ic::datasets::{build_d3, AbileneConfig};
use tm_ic::flowsim::{analyze_trace, AppMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let short = std::env::args().any(|a| a == "--short");
    let cfg = if short {
        AbileneConfig::smoke(20020814)
    } else {
        AbileneConfig::default()
    };
    println!(
        "synthesizing {}s of bidirectional packet headers at IPLS...",
        cfg.duration
    );
    let ds = build_d3(&cfg)?;
    println!(
        "  IPLS<->CLEV: {} packets, IPLS<->KSCY: {} packets",
        ds.ipls_clev.len(),
        ds.ipls_kscy.len()
    );

    let mix = AppMix::research_network_2004();
    println!(
        "application mix aggregate f = {:.3} (what the measurement should recover)",
        mix.aggregate_f()
    );

    for (name, trace) in [
        ("IPLS<->CLEV", &ds.ipls_clev),
        ("IPLS<->KSCY", &ds.ipls_kscy),
    ] {
        let analysis = analyze_trace(trace, ds.duration, 300.0)?;
        println!("\n## {name}");
        println!(
            "  connections: {} classified, {} unknown (no SYN in window)",
            analysis.classified_connections, analysis.unknown_connections
        );
        println!(
            "  unknown traffic fraction: {:.1}% (paper observed < 20%)",
            100.0 * analysis.unknown_fraction
        );
        let fij = analysis.f_ij_series();
        let fji = analysis.f_ji_series();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "  f forward-direction mean = {:.3}, reverse-direction mean = {:.3}",
            mean(&fij),
            mean(&fji)
        );
        println!("  bin-by-bin f (forward direction):");
        for (t, b) in analysis.bins.iter().enumerate() {
            if let Some(f) = b.f_ij {
                println!("    bin {t:>2}: f = {f:.3}");
            }
        }
    }
    println!("\n(both directions land near the mix aggregate and stay stable in time\n — the spatial/temporal stability that justifies the stable-f model)");
    Ok(())
}
