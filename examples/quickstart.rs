//! 60-second tour of the independent-connection traffic-matrix toolkit.
//!
//! Generates a synthetic traffic-matrix week with the Section 5.5 recipe,
//! fits the stable-fP model back through the unified `Fit` trait, compares
//! it against the gravity baseline, and runs one round of TM estimation
//! through the declarative `Scenario` API — all from `tm_ic::prelude`.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tm_ic::flowsim::{sample_netflow, NetflowConfig};
use tm_ic::prelude::*;

fn main() -> Result<()> {
    // 1. Generate a synthetic TM series (22 nodes, one day of 5-min bins),
    //    then degrade it with 1/1000 NetFlow packet sampling — the same
    //    measurement noise the paper's datasets carry.
    let cfg = SynthConfig::geant_like(7).with_bins(288);
    let synth = generate_synthetic(&cfg)?;
    let measured = sample_netflow(&synth.series, NetflowConfig::default())?;
    println!(
        "generated {} nodes x {} bins, total traffic at t=0: {:.3e} bytes",
        measured.nodes(),
        measured.bins(),
        measured.total(0)
    );

    // 2. Fit the stable-fP IC model (Section 5.1 nonlinear program) via
    //    the unified Fit trait — swap the type parameter to fit any other
    //    family member (StableFParams, TimeVaryingParams) the same way.
    let fit: FitReport<StableFpParams> = StableFpParams::fit(&measured, FitOptions::default())?;
    println!(
        "fitted {} model: f = {:.3} (generator used {:.3}); fit error = {:.3}",
        fit.params.name(),
        fit.params.f,
        cfg.f,
        fit.final_objective()
    );

    // 3. Compare against the gravity model on the same data.
    let ic_err = fit.final_objective();
    let gravity = gravity_predict(&measured)?;
    let gr_err = mean_rel_l2(&measured, &gravity)?;
    println!(
        "mean RelL2: IC = {ic_err:.4}, gravity = {gr_err:.4} ({:.1}% improvement)",
        100.0 * (gr_err - ic_err) / gr_err
    );

    // 4. TM estimation on the Géant topology: SNMP-style link counts in,
    //    traffic matrix out, IC prior vs gravity prior — declared as a
    //    scenario and executed by the parallel runner.
    let scenario = Scenario::builder("quickstart: measured-IC vs gravity")
        .series(measured)
        .geant22()
        .prior(PriorStrategy::MeasuredIc)
        .build()?;
    let report = Runner::new().run(&[scenario])?;
    println!(
        "estimation with IC prior beats gravity prior by {:.1}% on average",
        report.scenarios[0].mean_improvement
    );
    Ok(())
}
