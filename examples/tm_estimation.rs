//! Full SNMP-style traffic-matrix estimation on the Géant topology.
//!
//! The operator's problem (paper Section 6): you can read per-link byte
//! counters (SNMP) and you know the routing, but you cannot afford
//! continuous NetFlow. Estimate the traffic matrix.
//!
//! This example builds a synthetic Géant day, derives the observables
//! (link counts + node marginals), and runs the three-step estimation
//! pipeline with all four priors, reporting the accuracy of each.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example tm_estimation
//! ```

use tm_ic::core::{fit_stable_fp, mean_rel_l2, FitOptions};
use tm_ic::datasets::{build_d1, GeantConfig};
use tm_ic::estimation::{
    EstimationPipeline, GravityPrior, MeasuredIcPrior, ObservationModel, StableFPrior,
    StableFpPrior, TmPrior,
};
use tm_ic::topology::{geant22, RoutingScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two synthetic weeks: week 1 calibrates parameters ("a few weeks of
    // direct measurement", per the hybrid scenario of Soule et al.),
    // week 2 is estimated from link counts alone.
    let ds = build_d1(&GeantConfig::smoke(1))?;
    let weeks = ds.measured_weeks()?;
    let (calibration, target) = (&weeks[0], &weeks[1]);

    println!(
        "calibrating IC parameters on week 1 ({} bins)...",
        calibration.bins()
    );
    let cal_fit = fit_stable_fp(calibration, FitOptions::default())?;
    println!(
        "  f = {:.3}, preference spread = {:.3}x median",
        cal_fit.params.f,
        {
            let mut p = cal_fit.params.preference.clone();
            p.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            p[p.len() - 1] / p[p.len() / 2].max(1e-12)
        }
    );

    let om = ObservationModel::new(&geant22(), RoutingScheme::Ecmp)?;
    println!(
        "observing week 2: {} backbone link counters + {} node marginals per bin",
        om.links(),
        2 * om.nodes()
    );
    let obs = om.observe(target)?;
    let pipeline = EstimationPipeline::new(om);

    // The same-week fit stands in for "all parameters measured" (§6.1).
    let same_week_fit = fit_stable_fp(target, FitOptions::default())?;

    let priors: Vec<Box<dyn TmPrior>> = vec![
        Box::new(GravityPrior),
        Box::new(MeasuredIcPrior {
            params: same_week_fit.params.clone(),
        }),
        Box::new(StableFpPrior {
            f: cal_fit.params.f,
            preference: cal_fit.params.preference.clone(),
        }),
        Box::new(StableFPrior {
            f: cal_fit.params.f,
        }),
    ];

    println!("\nprior           raw RelL2   estimated RelL2");
    let mut gravity_err = None;
    for prior in &priors {
        let raw = prior.prior_series(&obs)?;
        let est = pipeline.estimate_from_series(&raw, &obs)?;
        let raw_err = mean_rel_l2(target, &raw)?;
        let est_err = mean_rel_l2(target, &est)?;
        if prior.name() == "gravity" {
            gravity_err = Some(est_err);
        }
        let vs_gravity = gravity_err
            .map(|g| format!(" ({:+.1}% vs gravity)", 100.0 * (g - est_err) / g))
            .unwrap_or_default();
        println!(
            "{:<15} {raw_err:>9.4} {est_err:>14.4}{vs_gravity}",
            prior.name()
        );
    }
    println!("\n(IC priors consume less measurement than the TM itself: stable-fP\n needs last week's f and P; stable-f needs only f)");
    Ok(())
}
