//! Full SNMP-style traffic-matrix estimation on the Géant topology.
//!
//! The operator's problem (paper Section 6): you can read per-link byte
//! counters (SNMP) and you know the routing, but you cannot afford
//! continuous NetFlow. Estimate the traffic matrix.
//!
//! This example declares the paper's three measurement scenarios
//! (Sections 6.1–6.3) — plus the gravity baseline — against the same
//! synthetic Géant data through the `Scenario` builder, runs them in
//! parallel, and prints the structured report (including its CSV form,
//! ready for a plotting pipeline).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example tm_estimation
//! ```

use tm_ic::prelude::*;

fn main() -> Result<()> {
    // Two synthetic weeks: week 1 calibrates parameters ("a few weeks of
    // direct measurement", per the hybrid scenario of Soule et al.),
    // week 2 is estimated from link counts alone.
    let data = GeantConfig::smoke(1);
    println!(
        "estimating a {}-bin Géant week from link counts + marginals\n",
        data.bins_per_week
    );

    // One builder line per measurement scenario; the runner executes the
    // batch in parallel and reports in input order.
    let base = |name: &str| {
        Scenario::builder(name)
            .dataset_d1(data.clone())
            .geant22()
            .target_week(1)
    };
    let scenarios = vec![
        // §6.1 — all IC parameters measured (same-week fit): the upper
        // bound on what the IC prior can deliver.
        base("6.1 all measured")
            .prior(PriorStrategy::MeasuredIc)
            .build()?,
        // §6.2 — f and P from last week, activities from marginals.
        base("6.2 f,P from week 1")
            .prior(PriorStrategy::StableFpFromWeek {
                calibration_week: 0,
            })
            .build()?,
        // §6.3 — only f from last week.
        base("6.3 f from week 1")
            .prior(PriorStrategy::StableFFromWeek {
                calibration_week: 0,
            })
            .build()?,
    ];
    let report = Runner::new().run(&scenarios)?;

    println!("prior           mean RelL2   vs gravity");
    for s in &report.scenarios {
        println!(
            "{:<15} {:>10.4} {:>+9.1}%",
            s.prior.as_deref().unwrap_or("?"),
            s.mean_candidate_error(),
            s.mean_improvement
        );
    }
    println!(
        "\n(gravity-prior baseline error: {:.4})",
        report.scenarios[0].mean_gravity_error()
    );
    println!("\nCSV report:\n{}", report.to_csv());
    println!("(IC priors consume less measurement than the TM itself: stable-fP\n needs last week's f and P; stable-f needs only f)");
    Ok(())
}
