//! What-if capacity planning with the IC model (paper Section 5.5).
//!
//! The IC model's parameters have physical meaning, which makes "what-if"
//! studies direct parameter edits:
//!
//! * **application-mix shift** — P2P displacing web traffic raises `f`;
//! * **flash crowd** — a service at one PoP becomes wildly popular: its
//!   preference spikes;
//! * **user growth** — a PoP doubles its subscriber base: its activity
//!   doubles.
//!
//! For each scenario this example regenerates the TM, routes it over the
//! Géant topology, and reports the most-loaded links — the capacity
//! planner's question.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use tm_ic::core::{generate_synthetic, SynthConfig};
use tm_ic::topology::{geant22, RoutingMatrix, RoutingScheme, Topology};

/// Routes the peak-bin TM and returns the top-`k` loaded links.
fn peak_link_loads(
    topo: &Topology,
    routing: &RoutingMatrix,
    series: &tm_ic::core::TmSeries,
    k: usize,
) -> Vec<(String, f64)> {
    // Find the busiest bin.
    let peak_bin = (0..series.bins())
        .max_by(|&a, &b| {
            series
                .total(a)
                .partial_cmp(&series.total(b))
                .expect("finite totals")
        })
        .expect("non-empty series");
    let y = routing
        .link_counts(&series.column(peak_bin))
        .expect("routable series");
    let mut loads: Vec<(String, f64)> = y
        .iter()
        .enumerate()
        .map(|(l, &v)| {
            let link = topo.link(l);
            (
                format!("{}->{}", topo.node_name(link.from), topo.node_name(link.to)),
                v,
            )
        })
        .collect();
    loads.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite loads"));
    loads.truncate(k);
    loads
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = geant22();
    let routing = RoutingMatrix::build(&topo, RoutingScheme::Ecmp)?;

    let mut base_cfg = SynthConfig::geant_like(11);
    base_cfg.bins = 288;
    let base = generate_synthetic(&base_cfg)?;
    println!("## Baseline (f = {:.2})", base_cfg.f);
    for (link, load) in peak_link_loads(&topo, &routing, &base.series, 5) {
        println!("  {link:<10} {load:.3e} bytes/bin");
    }

    // Scenario 1: P2P boom — the application mix shifts, f rises 0.25→0.4.
    let mut p2p_cfg = base_cfg.clone();
    p2p_cfg.f = 0.40;
    let p2p = generate_synthetic(&p2p_cfg)?;
    println!(
        "\n## P2P boom (f = {:.2}): traffic becomes more symmetric",
        p2p_cfg.f
    );
    for (link, load) in peak_link_loads(&topo, &routing, &p2p.series, 5) {
        println!("  {link:<10} {load:.3e} bytes/bin");
    }

    // Scenario 2: flash crowd — node 0 hosts tomorrow's viral service.
    // Regenerate with the same seed, then re-weight preference directly.
    let flash = {
        let mut params = base.params.clone();
        params.preference[0] *= 20.0;
        let mass: f64 = params.preference.iter().sum();
        params.preference.iter_mut().for_each(|p| *p /= mass);
        tm_ic::core::stable_fp_series(&params, 300.0)?
    };
    println!("\n## Flash crowd at node '{}'", topo.node_name(0));
    for (link, load) in peak_link_loads(&topo, &routing, &flash, 5) {
        println!("  {link:<10} {load:.3e} bytes/bin");
    }

    // Scenario 3: user growth — node 3 doubles its subscriber base.
    let growth = {
        let mut params = base.params.clone();
        for t in 0..params.activity.cols() {
            params.activity[(3, t)] *= 2.0;
        }
        tm_ic::core::stable_fp_series(&params, 300.0)?
    };
    println!(
        "\n## User growth at node '{}' (activity x2)",
        topo.node_name(3)
    );
    for (link, load) in peak_link_loads(&topo, &routing, &growth, 5) {
        println!("  {link:<10} {load:.3e} bytes/bin");
    }

    println!("\n(each scenario is a one-line parameter edit — the point of a model\n whose parameters mean something)");
    Ok(())
}
