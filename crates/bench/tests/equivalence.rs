//! Equivalence locks for the `ic-experiment` port of the figure and
//! ablation binaries.
//!
//! Each ported binary used to hand-wire its experiment out of the
//! `ic-bench` helpers (`fit_weeks`, `estimation_comparison`,
//! `fit_improvement_series`, ...). These tests replicate that historical
//! wiring at smoke scale and assert the numbers coming out of the new
//! declarative `Scenario` API are **bit-identical** — same datasets, same
//! fits, same pipelines, same floating-point operation order.

use ic_bench::{
    d1_config, d2_config, estimation_comparison, fit_improvement_series, fit_weeks,
    paper_fit_options, Scale,
};
use ic_core::{fit_stable_fp, generate_synthetic, gravity_predict, mean_rel_l2, SynthConfig};
use ic_datasets::{build_d1, build_d2, GeantConfig};
use ic_estimation::{MeasuredIcPrior, StableFPrior, StableFpPrior};
use ic_experiment::{PriorStrategy, Runner, Scenario, ScenarioReport, Task};
use ic_flowsim::NetflowConfig;

/// Runs one scenario through the parallel runner (2 workers, so the
/// equivalence also covers the threaded path).
fn run_one(scenario: Scenario) -> ScenarioReport {
    Runner::new()
        .with_threads(2)
        .run(&[scenario])
        .expect("scenario runs")
        .scenarios
        .remove(0)
}

#[test]
fn fig11_totem_panel_is_bit_identical() {
    // Historical wiring (fig11 binary before the port), totem panel at
    // smoke scale: fit the target week itself, MeasuredIcPrior.
    let ds = build_d2(&d2_config(Scale::Smoke, 1, 20041114)).unwrap();
    let weeks = ds.measured_weeks().unwrap();
    let fit = &fit_weeks(&weeks)[0];
    let prior = MeasuredIcPrior {
        params: fit.params.clone(),
    };
    let cmp = estimation_comparison("totem-d2", &weeks[0], &prior);

    let report = run_one(
        Scenario::builder("fig11b")
            .dataset_d2(d2_config(Scale::Smoke, 1, 20041114))
            .totem23()
            .prior(PriorStrategy::MeasuredIc)
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .unwrap(),
    );
    assert_eq!(report.improvement, cmp.improvement);
    assert_eq!(report.errors_candidate, cmp.errors_candidate);
    assert_eq!(report.errors_gravity, cmp.errors_gravity);
    assert_eq!(report.mean_improvement, cmp.mean_improvement);
    assert_eq!(report.fitted_f, Some(fit.params.f));
}

#[test]
fn fig11_geant_panel_is_bit_identical() {
    // The D1 source path, at a reduced week length to keep the suite fast
    // (the binary's --scale smoke uses the same code with 288 bins).
    let mut cfg = d1_config(Scale::Smoke, 1, 1);
    cfg.bins_per_week = 48;
    let ds = build_d1(&cfg).unwrap();
    let weeks = ds.measured_weeks().unwrap();
    let fit = &fit_weeks(&weeks)[0];
    let prior = MeasuredIcPrior {
        params: fit.params.clone(),
    };
    let cmp = estimation_comparison("geant-d1", &weeks[0], &prior);

    let report = run_one(
        Scenario::builder("fig11a")
            .dataset_d1(cfg)
            .geant22()
            .prior(PriorStrategy::MeasuredIc)
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .unwrap(),
    );
    assert_eq!(report.improvement, cmp.improvement);
    assert_eq!(report.errors_candidate, cmp.errors_candidate);
    assert_eq!(report.errors_gravity, cmp.errors_gravity);
}

#[test]
fn fig12_totem_panel_is_bit_identical() {
    // Historical wiring: calibrate f and P on week 1, estimate week 3.
    let ds = build_d2(&d2_config(Scale::Smoke, 3, 20041114)).unwrap();
    let weeks = ds.measured_weeks().unwrap();
    let fits = fit_weeks(&weeks[0..=0]);
    let prior = StableFpPrior {
        f: fits[0].params.f,
        preference: fits[0].params.preference.clone(),
    };
    let cmp = estimation_comparison("totem-d2", &weeks[2], &prior);

    let report = run_one(
        Scenario::builder("fig12b")
            .dataset_d2(d2_config(Scale::Smoke, 3, 20041114))
            .totem23()
            .target_week(2)
            .prior(PriorStrategy::StableFpFromWeek {
                calibration_week: 0,
            })
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .unwrap(),
    );
    assert_eq!(report.improvement, cmp.improvement);
    assert_eq!(report.errors_candidate, cmp.errors_candidate);
    assert_eq!(report.errors_gravity, cmp.errors_gravity);
    assert_eq!(report.fitted_f, Some(fits[0].params.f));
}

#[test]
fn fig13_totem_panel_is_bit_identical() {
    // Historical wiring: only f carries over from the calibration week.
    let ds = build_d2(&d2_config(Scale::Smoke, 3, 20041114)).unwrap();
    let weeks = ds.measured_weeks().unwrap();
    let fits = fit_weeks(&weeks[0..=0]);
    let prior = StableFPrior {
        f: fits[0].params.f,
    };
    let cmp = estimation_comparison("totem-d2", &weeks[2], &prior);

    let report = run_one(
        Scenario::builder("fig13b")
            .dataset_d2(d2_config(Scale::Smoke, 3, 20041114))
            .totem23()
            .target_week(2)
            .prior(PriorStrategy::StableFFromWeek {
                calibration_week: 0,
            })
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .unwrap(),
    );
    assert_eq!(report.improvement, cmp.improvement);
    assert_eq!(report.errors_candidate, cmp.errors_candidate);
    assert_eq!(report.errors_gravity, cmp.errors_gravity);
}

#[test]
fn ablation_sampling_point_is_bit_identical() {
    // Historical wiring of the sampling ablation at the paper's 1/1000
    // rate, reduced to a 96-bin week to keep the suite fast (the binary
    // uses 288 bins with identical code).
    let cfg = GeantConfig {
        weeks: 1,
        bins_per_week: 96,
        seed: 1,
        sampling: Some(NetflowConfig {
            sampling_rate: 1.0 / 1000.0,
            ..NetflowConfig::default()
        }),
    };
    let ds = build_d1(&cfg).unwrap();
    let week = &ds.measured_weeks().unwrap()[0];
    let fit = fit_stable_fp(week, paper_fit_options()).unwrap();
    let imp = fit_improvement_series(week, &fit);
    let grav = gravity_predict(week).unwrap();
    let g_err = mean_rel_l2(week, &grav).unwrap();

    let report = run_one(
        Scenario::builder("1/1000")
            .dataset_d1(cfg)
            .task(Task::FitImprovement)
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .unwrap(),
    );
    assert_eq!(report.improvement, imp);
    assert_eq!(report.fitted_f, Some(fit.params.f));
    assert_eq!(report.fit_objective, Some(fit.final_objective()));
    assert_eq!(report.mean_gravity_error(), g_err);
}

#[test]
fn ablation_model_params_points_are_bit_identical() {
    // Historical wiring of the model-parameter ablation at two grid
    // points (interior f and the rank-two worst case f = 0.5).
    for (f, sigma) in [(0.25, 1.7), (0.5, 1.7), (0.25, 0.3)] {
        let cfg = SynthConfig::geant_like(42)
            .with_bins(96)
            .with_f(f)
            .with_preference_sigma(sigma)
            .with_noise_cv(0.0);
        let out = generate_synthetic(&cfg).unwrap();
        let grav = gravity_predict(&out.series).unwrap();
        let err = mean_rel_l2(&out.series, &grav).unwrap();

        let report = run_one(
            Scenario::builder(format!("f={f} sigma={sigma}"))
                .synth(cfg)
                .task(Task::GravityGap)
                .build()
                .unwrap(),
        );
        assert_eq!(report.mean_gravity_error(), err, "f={f} sigma={sigma}");
        assert_eq!(report.errors_gravity.len(), 96);
    }
}
