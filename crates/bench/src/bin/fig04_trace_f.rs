//! Figure 4 — f measured from packet traces on the IPLS↔CLEV link pair
//! (paper Section 5.2).
//!
//! Synthesizes the D3-style two-hour bidirectional packet trace, replays
//! the paper's measurement procedure (5-tuple matching, SYN attribution,
//! unknown classification) and prints the per-5-minute-bin f values in
//! both directions. Paper shape: f in 0.2–0.3 at all times, the two
//! directions similar, unknown traffic < 20%.

use ic_bench::{print_summary, summarize, Scale};
use ic_datasets::{build_d3, AbileneConfig};
use ic_flowsim::analyze_trace;

fn main() {
    let scale = Scale::from_args();
    let cfg = match scale {
        Scale::Full => AbileneConfig::default(),
        Scale::Smoke => AbileneConfig::smoke(20020814),
    };
    println!("# Figure 4: f for IPLS-CLEV and CLEV-IPLS over time ({scale:?})");
    let ds = build_d3(&cfg).expect("D3 build");
    let analysis = analyze_trace(&ds.ipls_clev, ds.duration, 300.0).expect("analysis");

    println!(
        "# unknown traffic fraction: {:.3} (paper: < 0.20)",
        analysis.unknown_fraction
    );
    println!(
        "# classified connections: {}, unknown 5-tuples: {}",
        analysis.classified_connections, analysis.unknown_connections
    );
    println!("# bin\tf(IPLS->CLEV)\tf(CLEV->IPLS)");
    for (t, b) in analysis.bins.iter().enumerate() {
        let fij = b
            .f_ij
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "-".into());
        let fji = b
            .f_ji
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "-".into());
        println!("{t}\t{fij}\t{fji}");
    }
    print_summary("f_ij", &summarize(&analysis.f_ij_series()));
    print_summary("f_ji", &summarize(&analysis.f_ji_series()));
}
