//! Figure 2 — the three-node worked example (paper Section 3).
//!
//! Demonstrates that packet-level ingress/egress independence fails even
//! when connection-level independence holds exactly. Prints the traffic
//! matrix and the conditional egress probabilities the paper reports
//! (≈ 0.50 / 0.93 / 0.95 against a marginal of ≈ 0.65).

use ic_core::figure2_example;

fn main() {
    let r = figure2_example();
    println!("# Figure 2: example traffic in an IC setting");
    println!("# traffic matrix (packets):");
    let names = ["A", "B", "C"];
    for i in 0..3 {
        let row: Vec<String> = (0..3)
            .map(|j| format!("{:>6.0}", r.traffic[(i, j)]))
            .collect();
        println!("#   {} | {}", names[i], row.join(" "));
    }
    println!("P[E=A | I=A] = {:.4}   (paper: ~0.50)", r.p_e_a_given_i_a);
    println!("P[E=A | I=B] = {:.4}   (paper: ~0.93)", r.p_e_a_given_i_b);
    println!("P[E=A | I=C] = {:.4}   (paper: ~0.95)", r.p_e_a_given_i_c);
    println!("P[E=A]       = {:.4}   (paper: ~0.65)", r.p_e_a);
    println!(
        "max |conditional - marginal| = {:.4} (gravity would require 0)",
        r.max_independence_violation()
    );
}
