//! Figure 8 — fitted preference vs normalized mean egress counts
//! (paper Section 5.3).
//!
//! Paper shape: egress volume is a poor proxy for preference — among nodes
//! above median traffic there is little correlation.

use ic_bench::{d1_at, d2_at, fit_weeks, Scale};
use ic_core::stability::preference_vs_egress;

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 8: optimal P vs normalized egress counts ({scale:?})");
    for (panel, name) in [("a", "geant-d1"), ("b", "totem-d2")] {
        let ds = match name {
            "geant-d1" => d1_at(scale, 1, 1),
            _ => d2_at(scale, 1, 20041114),
        };
        let weeks = ds.measured_weeks().expect("weeks");
        let fit = &fit_weeks(&weeks)[0];
        let cmp = preference_vs_egress(fit, &weeks[0]).expect("comparison");
        println!("\n## Figure 8({panel}): {name}");
        println!("# node\tP\tmean_egress_share");
        for (i, (p, e)) in cmp
            .preference
            .iter()
            .zip(cmp.egress_share.iter())
            .enumerate()
        {
            println!("{i}\t{p:.4}\t{e:.4}");
        }
        println!(
            "# pearson(all)={:.3} spearman(all)={:.3} pearson(above-median)={:.3}",
            cmp.pearson_all, cmp.spearman_all, cmp.pearson_above_median
        );
    }
}
