//! Ablation — when does the general IC model (Eq. 1) matter?
//!
//! Section 5.6 / Figure 10 of the paper: hot-potato routing asymmetry
//! makes `f_ij ≠ f_ji`, which the simplified model (Eq. 2) cannot
//! represent; the paper leaves "whether routing asymmetry requires use of
//! the general IC model" to future work. This ablation answers it on the
//! synthetic substrate: generate traffic with increasing per-pair
//! forward-ratio asymmetry, evaluate the *oracle* general model (true
//! per-pair f matrix) against the simplified model with the best single f,
//! and report both errors.

use ic_core::{general_ic, mean_rel_l2, simplified_ic, TmSeries};
use ic_flowsim::{AggregateConfig, AggregateGenerator};
use ic_linalg::Matrix;

fn main() {
    let n = 10;
    let bins = 24;
    println!("# Ablation: general (Eq. 1) vs simplified (Eq. 2) IC under f asymmetry");
    println!("# f_spread\tsimplified_rel_l2\tgeneral_rel_l2");
    for spread in [0.0, 0.05, 0.1, 0.15, 0.2, 0.3] {
        let mut agg = AggregateConfig::ideal(0.25, 99);
        agg.f_spatial_std = spread;
        agg.f_bounds = (0.02, 0.98);
        let gen = AggregateGenerator::new(n, agg).expect("generator");
        let mut activity = Matrix::zeros(n, bins);
        for i in 0..n {
            for t in 0..bins {
                activity[(i, t)] =
                    1e6 * (i + 1) as f64 * (1.0 + 0.2 * ((t * (i + 1)) as f64).sin().abs());
            }
        }
        let preference: Vec<f64> = (1..=n).map(|k| 1.0 / k as f64).collect();
        let truth = gen
            .generate(&activity, &preference, 300.0)
            .expect("generate");

        // Oracle predictions from the true generating parameters.
        let mut simplified = TmSeries::zeros(n, bins, 300.0).expect("alloc");
        let mut general = TmSeries::zeros(n, bins, 300.0).expect("alloc");
        for t in 0..bins {
            let a: Vec<f64> = (0..n).map(|i| activity[(i, t)]).collect();
            let xs = simplified_ic(gen.mean_f(), &a, &preference).expect("simplified");
            let xg = general_ic(gen.pair_f(), &a, &preference).expect("general");
            for i in 0..n {
                for j in 0..n {
                    simplified.set(i, j, t, xs[(i, j)]).expect("set");
                    general.set(i, j, t, xg[(i, j)]).expect("set");
                }
            }
        }
        println!(
            "{spread}\t{:.4}\t{:.4}",
            mean_rel_l2(&truth, &simplified).expect("err"),
            mean_rel_l2(&truth, &general).expect("err")
        );
    }
    println!("# the general model is exact at every spread (it owns the extra");
    println!("# parameters); the simplified model's error grows with the spread —");
    println!("# the quantitative answer to the paper's Section 5.6 question");
}
