//! Unified estimation performance benchmark — the sparse-vs-dense
//! headline numbers of the scaled-topology overhaul.
//!
//! Sweeps seeded hierarchical backbone/PoP topologies across sizes,
//! generates synthetic IC traffic on each, and times the tomogravity
//! refinement through both linear-algebra paths:
//!
//! * **sparse** — the production path: CSR `A W Aᵀ` with reusable
//!   [`TomogravityWorkspace`] buffers (allocation-free per bin once warm;
//!   the allocation counter below proves it);
//! * **dense** — the dense reference `refine_bin` on the materialized
//!   stacked operator (skipped above `--dense-max` nodes, where dense
//!   memory/time costs stop being measurable in CI).
//!
//! Also times the full prior → tomogravity → IPF pipeline on the sparse
//! path — serially and with bins sharded across an `ic-engine` worker
//! pool (`--threads`) — and emits a machine-readable
//! `BENCH_estimation.json` in the same style as `BENCH_streaming.json`,
//! consumed by the CI perf-regression gate (`perf_gate`). The parallel
//! estimate is asserted bit-identical to the serial one before it is
//! timed; the recorded `threads`/`shard_bins`/`cpus_available` metadata
//! makes the parallel numbers interpretable across machines (on a 1-CPU
//! runner the parallel speedup is necessarily ~1x).
//!
//! `--solver auto|dense|pcg` pins the [`SolverPolicy`] of the timed
//! paths (default `auto`). Independently of the chosen policy, every
//! size also times a forced-PCG refinement pass (`pcg_secs_per_bin`) and
//! cross-checks it against the policy path, so the matrix-free solver is
//! always measured and gated; solver counters (PCG iterations, stalls,
//! Cholesky→pseudo-inverse fallbacks) are logged per size.
//!
//! `--batch B1,B2,...` sweeps the batched SoA pipeline at each width:
//! every width is asserted bit-identical to the serial per-bin estimate,
//! then timed, and the per-width throughput is emitted as
//! `bins_per_sec_batch{B}` (the `B ∈ {1, 16}` keys are perf-gated).
//!
//! `--mode flat|multilevel|both` selects the decomposition paths under
//! test (default `both`). `both` augments every size with the
//! partition-aware multilevel solve (coarse quotient + per-cluster
//! blocks, [`MultilevelPipeline`]) on the same observations: its error
//! against the synthetic truth is asserted to stay within
//! `ML_ERR_MARGIN` of the flat pipeline's error **before** anything is
//! timed, and `multilevel_secs_per_bin` joins the perf-gated keys.
//! `multilevel` is the scale sweep the flat path cannot follow: a
//! streaming single-path observation generator produces link loads
//! without ever materializing the `links x n²` routing matrix or the
//! `n²` traffic vector, so 10k–20k-node topologies fit in bounded
//! memory; the flat pipeline is run for cross-checking and timing only
//! up to `--flat-max` nodes (default 1000), and the sweep writes
//! `BENCH_estimation_multilevel.json`.
//!
//! Usage: `estimation_perf [--scale smoke|full] [--sizes 50,100,200]
//! [--bins N] [--dense-max N] [--threads N] [--shard-bins N]
//! [--solver auto|dense|pcg] [--batch 1,4,16]
//! [--mode flat|multilevel|both] [--flat-max N] [--out PATH]`.

use ic_bench::{arg_value, json_f, out_path, Scale};
use ic_core::{generate_synthetic, mean_rel_l2, SynthConfig, TmSeries};
use ic_engine::{default_threads, Engine, WorkspacePool};
use ic_estimation::{
    EstimationConfig, EstimationPipeline, GravityPrior, MultilevelPipeline, ObservationModel,
    Observations, PipelineBatchWorkspace, PipelineMetrics, PipelineWorkspace, SolveStats,
    SolverPolicy, TmPrior, Tomogravity, TomogravityOptions, TomogravityWorkspace,
};
use ic_linalg::Matrix;
use ic_obs::{MetricsRegistry, Span};
use ic_topology::{hierarchical, HierarchicalConfig, Partition, RoutingScheme, Topology};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the bench can report that the sparse
/// workspace path really is allocation-free per bin after warm-up.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to `System` verbatim; the counter is a relaxed atomic
// with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` repeatedly until `target_secs` of wall clock accumulates (or
/// `max_reps` is hit) and returns the **minimum** single-run time — the
/// standard robust estimator for short benchmarks, which is what keeps the
/// smoke-scale numbers stable enough for a 25% CI regression gate.
fn time_min(mut f: impl FnMut(), target_secs: f64, max_reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    let start = Instant::now();
    for _ in 0..max_reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
        if start.elapsed().as_secs_f64() >= target_secs {
            break;
        }
    }
    best
}

struct SizeResult {
    nodes: usize,
    links: usize,
    nnz: usize,
    density: f64,
    bins: usize,
    sparse_secs_per_bin: f64,
    dense_secs_per_bin: Option<f64>,
    speedup_vs_dense: Option<f64>,
    pipeline_secs_per_bin: f64,
    parallel_pipeline_secs_per_bin: f64,
    parallel_speedup: f64,
    allocs_per_bin_warm: u64,
    max_rel_diff_vs_dense: Option<f64>,
    /// Forced-PCG refinement time (measured even when the policy path
    /// resolved to dense, so the matrix-free solver is always gated).
    pcg_secs_per_bin: f64,
    /// Mean PCG iterations per forced-PCG solve.
    pcg_iterations_per_solve: f64,
    /// Solver counters of the policy path over one counted bin sweep.
    solve_stats: SolveStats,
    /// Pipeline time with `ic-obs` stage metrics attached — the
    /// metrics-overhead gate compares this against the bare
    /// `pipeline_secs_per_bin`.
    instrumented_pipeline_secs_per_bin: f64,
    /// Warm-sweep allocations per bin with a span recording each refine
    /// into a registry histogram. Must stay 0: metric recording is
    /// clock reads and relaxed atomics only.
    instrumented_allocs_per_bin_warm: u64,
    /// Batched SoA pipeline throughput per batch width `B`, as
    /// `(B, bins_per_sec)`. Every width is asserted bit-identical to the
    /// serial per-bin estimate before it is timed.
    batch_sweep: Vec<(usize, f64)>,
    /// Multilevel solve on the same observations (`--mode both`): timing
    /// plus the truth-relative errors of both paths, asserted within
    /// `ML_ERR_MARGIN` before the timing ran.
    multilevel: Option<MlNumbers>,
}

fn default_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![20, 50],
        Scale::Full => vec![50, 100, 200],
    }
}

fn parse_sizes(spec: &str) -> Vec<usize> {
    let sizes: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 10)
        .collect();
    assert!(
        !sizes.is_empty(),
        "--sizes {spec:?} contains no valid size (comma-separated integers >= 10); \
         refusing to run an empty sweep"
    );
    sizes
}

fn parse_solver(spec: &str) -> SolverPolicy {
    match spec {
        "auto" => SolverPolicy::Auto,
        "dense" => SolverPolicy::Dense,
        "pcg" => SolverPolicy::Pcg,
        other => panic!("--solver {other:?} is not one of auto|dense|pcg"),
    }
}

fn parse_batch(spec: &str) -> Vec<usize> {
    let widths: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok())
        .filter(|&b| b >= 1)
        .collect();
    assert!(
        !widths.is_empty(),
        "--batch {spec:?} contains no valid width (comma-separated integers >= 1)"
    );
    widths
}

/// Which decomposition paths a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The classic flat sweep only.
    Flat,
    /// The multilevel scale sweep with its streaming observation
    /// generator; flat runs for cross-checking up to `--flat-max`.
    Multilevel,
    /// The flat sweep with the multilevel solve piggybacked on every
    /// size (the CI default, so `multilevel_secs_per_bin` is always
    /// emitted and gated).
    Both,
}

fn parse_mode(spec: &str) -> Mode {
    match spec {
        "flat" => Mode::Flat,
        "multilevel" => Mode::Multilevel,
        "both" => Mode::Both,
        other => panic!("--mode {other:?} is not one of flat|multilevel|both"),
    }
}

/// How much worse (mean relative L2 vs truth) the multilevel estimate
/// may be than the flat estimate before the bench fails. The coarse
/// level loses intra-vs-inter attribution detail, so a small additive
/// margin is expected; a blow-up here means the decomposition is broken,
/// and the assertion fires before any multilevel timing is recorded.
const ML_ERR_MARGIN: f64 = 0.25;

/// Groups the generator's per-backbone clusters (10 nodes each) into
/// contiguous super-clusters of roughly `2·sqrt(n)` nodes. Per-backbone
/// clusters would make the quotient itself a large ring — coarse paths
/// of O(k) hops and a quadratic-in-k coarse solve — while sqrt-sized
/// groups balance the coarse solve against the per-cluster solves.
fn grouped_partition(topo: &Topology, cfg: &HierarchicalConfig) -> Partition {
    let backbone_of = cfg.cluster_assignment();
    let target = ((topo.node_count() as f64).sqrt() / 2.0).round().max(2.0) as usize;
    let group = cfg.backbones.div_ceil(target).max(1);
    let assign: Vec<usize> = backbone_of.iter().map(|&k| k / group).collect();
    Partition::from_assignment(topo, &assign)
        .expect("contiguous backbone groups are a valid partition")
}

/// splitmix64: the bench's deterministic weight source (no RNG state to
/// thread through).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Normalized gravity weights in `[0.25, 2.0)` before normalization —
/// enough spread to make the solve non-trivial, no heavy tail that
/// would starve small clusters of traffic.
fn gravity_weights(n: usize, salt: u64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..n)
        .map(|i| 0.25 + 1.75 * (splitmix(salt ^ (i as u64)) as f64 / u64::MAX as f64))
        .collect();
    let sum: f64 = w.iter().sum();
    for v in &mut w {
        *v /= sum;
    }
    w
}

/// Min-heap entry for the generator's Dijkstra (reversed distance order,
/// node-id tie-break for determinism — same rule as `ic-topology`).
#[derive(PartialEq)]
struct MinDist {
    dist: f64,
    node: usize,
}

impl Eq for MinDist {}

impl PartialOrd for MinDist {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinDist {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Streaming single-path link loads for a unit-total gravity matrix
/// `T[s][t] = o[s]·d[t]` (`s ≠ t`): one reverse Dijkstra per destination
/// plus a flow-accumulation pass down the forwarding tree, replicating
/// `RoutingScheme::SinglePath`'s lowest-link-id tie-break. `O(n·(m +
/// n log n))` time and `O(n + m)` working memory — never the `links x
/// n²` routing matrix, which is what lets the multilevel sweep reach
/// sizes the flat observation model cannot.
fn single_path_unit_loads(topo: &Topology, o: &[f64], d: &[f64]) -> Vec<f64> {
    const EPS: f64 = 1e-9;
    let n = topo.node_count();
    let links = topo.links();
    // Reverse adjacency for the to-destination Dijkstra, forward
    // adjacency in link-id order for the deterministic next-hop pick.
    let mut rev: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut fwd: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); n];
    for (lid, l) in links.iter().enumerate() {
        rev[l.to].push((l.from, l.igp_weight));
        fwd[l.from].push((lid, l.to, l.igp_weight));
    }
    let mut y = vec![0.0; links.len()];
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    let mut load = vec![0.0; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for t in 0..n {
        dist.fill(f64::INFINITY);
        done.fill(false);
        order.clear();
        dist[t] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(MinDist { dist: 0.0, node: t });
        while let Some(MinDist { dist: du, node: u }) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            order.push(u);
            for &(from, w) in &rev[u] {
                let nd = du + w;
                if nd + EPS < dist[from] {
                    dist[from] = nd;
                    heap.push(MinDist {
                        dist: nd,
                        node: from,
                    });
                }
            }
        }
        assert_eq!(
            order.len(),
            n,
            "generator requires a strongly connected topology"
        );
        // Farthest-first: every node's accumulated load is final before
        // it is pushed one hop closer to `t` (positive weights make the
        // next hop strictly closer).
        for &s in order.iter().rev() {
            if s == t {
                continue;
            }
            load[s] += o[s] * d[t];
            let mut pushed = false;
            for &(lid, to, w) in &fwd[s] {
                if (w + dist[to] - dist[s]).abs() < EPS {
                    y[lid] += load[s];
                    load[to] += load[s];
                    pushed = true;
                    break; // lowest link id, as in RoutingScheme::SinglePath
                }
            }
            assert!(pushed, "no shortest-path next hop from node {s}");
            load[s] = 0.0;
        }
        load[t] = 0.0;
    }
    y
}

/// Multilevel numbers piggybacked on a flat size sweep (`--mode both`).
struct MlNumbers {
    clusters: usize,
    boundary_link_fraction: f64,
    secs_per_bin: f64,
    rel_err: f64,
    flat_rel_err: f64,
}

/// One size of the `--mode multilevel` scale sweep.
struct MlSizeResult {
    nodes: usize,
    links: usize,
    clusters: usize,
    boundary_link_fraction: f64,
    bins: usize,
    multilevel_secs_per_bin: f64,
    flat_secs_per_bin: Option<f64>,
    speedup_vs_flat: Option<f64>,
    multilevel_rel_err: Option<f64>,
    flat_rel_err: Option<f64>,
}

/// Benches one size of the multilevel scale sweep: streaming
/// observations, multilevel solve timing, and — up to `flat_max` nodes —
/// the flat pipeline on the same observations for the accuracy assertion
/// and the speedup column.
fn bench_multilevel_size(
    nodes: usize,
    bins: usize,
    flat_max: usize,
    engine: Engine,
    policy: SolverPolicy,
) -> MlSizeResult {
    let cfg = HierarchicalConfig::new((nodes / 10).max(1), 9, 20060419);
    let topo = hierarchical(&cfg).expect("generator config is valid");
    let n = topo.node_count();
    let links = topo.link_count();
    let partition = grouped_partition(&topo, &cfg);
    let clusters = partition.cluster_count();
    let boundary_link_fraction = partition.boundary_link_fraction();

    // Gravity truth `T[i][j](b) = total_b·o_i·d_j`, observed under
    // single-path routing by the streaming generator; marginals are
    // analytic (`Σ_{j≠i} d_j = 1 − d_i`), so nothing `n²`-sized exists
    // unless the flat cross-check below materializes the truth.
    let o = gravity_weights(n, 0xA11C_E5EE_D000 + n as u64);
    let d = gravity_weights(n, 0xB0B5_EED0_0000 + n as u64);
    let y_unit = single_path_unit_loads(&topo, &o, &d);
    let totals: Vec<f64> = (0..bins)
        .map(|b| n as f64 * 1e6 * (1.0 + 0.1 * b as f64))
        .collect();
    let mut obs = Observations {
        y: Matrix::zeros(links, bins),
        ingress: Matrix::zeros(n, bins),
        egress: Matrix::zeros(n, bins),
        bin_seconds: 300.0,
    };
    for (b, &total) in totals.iter().enumerate() {
        for (l, &unit) in y_unit.iter().enumerate() {
            obs.y[(l, b)] = unit * total;
        }
        for i in 0..n {
            obs.ingress[(i, b)] = total * o[i] * (1.0 - d[i]);
            obs.egress[(i, b)] = total * d[i] * (1.0 - o[i]);
        }
    }

    let config = EstimationConfig::new().with_solver(policy);
    let ml = MultilevelPipeline::new(&topo, RoutingScheme::SinglePath, partition, config.clone())
        .expect("quotient of backbone groups is strongly connected");

    // Flat cross-check, only where the full `links x n²` observation
    // model is tractable. The accuracy assertion runs before any timing.
    let (flat_secs_per_bin, multilevel_rel_err, flat_rel_err) = if n <= flat_max {
        let om =
            ObservationModel::new(&topo, RoutingScheme::SinglePath).expect("strongly connected");
        let flat = EstimationPipeline::new(om).config(config.clone());
        let mut pws = PipelineWorkspace::new();
        let flat_est = flat
            .estimate_with(&GravityPrior, &obs, &mut pws)
            .expect("flat estimate");
        let mut truth = TmSeries::zeros(n, bins, 300.0).expect("truth dims");
        for (b, &total) in totals.iter().enumerate() {
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        truth
                            .set(i, j, b, total * o[i] * d[j])
                            .expect("truth in bounds");
                    }
                }
            }
        }
        let ml_mat = ml
            .estimate_parallel(&GravityPrior, &obs, &engine)
            .expect("multilevel estimate")
            .materialize()
            .expect("materialize");
        let ml_err = mean_rel_l2(&truth, &ml_mat).expect("series align");
        let flat_err = mean_rel_l2(&truth, &flat_est).expect("series align");
        assert!(
            ml_err <= flat_err + ML_ERR_MARGIN,
            "multilevel error {ml_err:.4} exceeds flat {flat_err:.4} + {ML_ERR_MARGIN} at {n} nodes"
        );
        let secs = time_min(
            || {
                flat.estimate_with(&GravityPrior, &obs, &mut pws)
                    .expect("flat estimate");
            },
            0.5,
            20,
        );
        (Some(secs / bins as f64), Some(ml_err), Some(flat_err))
    } else {
        (None, None, None)
    };

    ml.estimate_parallel(&GravityPrior, &obs, &engine)
        .expect("multilevel warm-up");
    let ml_secs = time_min(
        || {
            ml.estimate_parallel(&GravityPrior, &obs, &engine)
                .expect("multilevel estimate");
        },
        0.5,
        50,
    );
    let multilevel_secs_per_bin = ml_secs / bins as f64;
    MlSizeResult {
        nodes: n,
        links,
        clusters,
        boundary_link_fraction,
        bins,
        multilevel_secs_per_bin,
        flat_secs_per_bin,
        speedup_vs_flat: flat_secs_per_bin.map(|f| f / multilevel_secs_per_bin),
        multilevel_rel_err,
        flat_rel_err,
    }
}

fn bench_size(
    nodes: usize,
    bins: usize,
    dense_max: usize,
    engine: Engine,
    policy: SolverPolicy,
    batch_widths: &[usize],
    with_multilevel: bool,
) -> SizeResult {
    // Hierarchical topology: nodes/10 backbones with 9 PoPs each, so the
    // node count lands exactly on the requested size for multiples of 10.
    let cfg = HierarchicalConfig::new((nodes / 10).max(1), 9, 20060419);
    let topo = hierarchical(&cfg).expect("generator config is valid");
    let n = topo.node_count();
    let om = ObservationModel::new(&topo, RoutingScheme::Ecmp).expect("strongly connected");
    let synth = SynthConfig::geant_like(7 + n as u64)
        .with_nodes(n)
        .with_bins(bins);
    let truth = generate_synthetic(&synth)
        .expect("valid synth config")
        .series;
    let obs = om.observe(&truth).expect("observe");
    let prior = GravityPrior.prior_series(&obs).expect("gravity prior");
    let tomo = Tomogravity::new(TomogravityOptions::default().with_solver(policy));

    // Sparse path: series refine through the reusable workspace, with a
    // one-bin warm-up so the timed region measures steady state.
    let a = om.stacked_sparse();
    let at = om.stacked_transpose();
    let mut ws = TomogravityWorkspace::new();
    let xp0 = prior.column(0);
    let b0 = obs.stacked_at(0);
    tomo.refine_bin_sparse_with(a, at, &xp0, &b0, &mut ws)
        .expect("warm-up refine");
    let mut xp = vec![0.0; n * n];
    let mut b = vec![0.0; obs.stacked_len()];
    // Allocation count of one warm pass (measured outside the timing reps
    // so the input fills don't blur it). Solver counters are reset first
    // so the snapshot covers exactly this bin sweep.
    ws.reset_solve_stats();
    let allocs_before = allocations();
    for t in 0..bins {
        for (row, slot) in xp.iter_mut().enumerate() {
            *slot = prior.as_matrix()[(row, t)];
        }
        obs.stacked_at_into(t, &mut b).expect("stacked obs");
        tomo.refine_bin_sparse_with(a, at, &xp, &b, &mut ws)
            .expect("sparse refine");
    }
    let allocs_per_bin_warm = (allocations() - allocs_before) / bins as u64;
    let solve_stats = ws.solve_stats();
    let sparse_last: Vec<f64> = ws.solution().to_vec();

    // Sparse timing: min over repetitions of the whole bin sweep.
    let sparse_secs = time_min(
        || {
            for t in 0..bins {
                for (row, slot) in xp.iter_mut().enumerate() {
                    *slot = prior.as_matrix()[(row, t)];
                }
                obs.stacked_at_into(t, &mut b).expect("stacked obs");
                tomo.refine_bin_sparse_with(a, at, &xp, &b, &mut ws)
                    .expect("sparse refine");
            }
        },
        0.5,
        200,
    );
    let sparse_secs_per_bin = sparse_secs / bins as f64;

    // The same warm sweep with every refine wrapped in a recording span:
    // proves the zero-allocation warm path survives instrumentation.
    let registry = MetricsRegistry::new();
    let refine_hist = registry.histogram("bench.refine.seconds");
    let allocs_before = allocations();
    for t in 0..bins {
        for (row, slot) in xp.iter_mut().enumerate() {
            *slot = prior.as_matrix()[(row, t)];
        }
        obs.stacked_at_into(t, &mut b).expect("stacked obs");
        let span = Span::start(&refine_hist);
        tomo.refine_bin_sparse_with(a, at, &xp, &b, &mut ws)
            .expect("instrumented sparse refine");
        drop(span);
    }
    let instrumented_allocs_per_bin_warm = (allocations() - allocs_before) / bins as u64;
    assert_eq!(refine_hist.count(), bins as u64);

    // Dense reference path, where tractable.
    let (dense_secs_per_bin, max_rel_diff_vs_dense) = if n <= dense_max {
        let a_dense = om.stacked().expect("dense stacked");
        let mut dense_last = Vec::new();
        let dense_secs = time_min(
            || {
                for t in 0..bins {
                    for (row, slot) in xp.iter_mut().enumerate() {
                        *slot = prior.as_matrix()[(row, t)];
                    }
                    obs.stacked_at_into(t, &mut b).expect("stacked obs");
                    dense_last = tomo.refine_bin(&a_dense, &xp, &b).expect("dense refine");
                }
            },
            0.5,
            50,
        );
        // Cross-check: both paths refined the same last bin.
        let scale: f64 = dense_last.iter().fold(1.0_f64, |m, &v| m.max(v.abs()));
        let diff = sparse_last
            .iter()
            .zip(dense_last.iter())
            .fold(0.0_f64, |m, (&s, &d)| m.max((s - d).abs()));
        (Some(dense_secs / bins as f64), Some(diff / scale))
    } else {
        (None, None)
    };

    // Forced-PCG refinement pass. When the policy path already ran pure
    // PCG (no dense solves), its numbers are reused; otherwise a second
    // sweep with a pinned-PCG tomogravity measures the matrix-free
    // solver at this size and is cross-checked against the policy path.
    let (pcg_secs_per_bin, pcg_iterations_per_solve) =
        if solve_stats.dense_solves == 0 && solve_stats.pcg_solves > 0 {
            (
                sparse_secs_per_bin,
                solve_stats.pcg_iterations as f64 / solve_stats.pcg_solves as f64,
            )
        } else {
            let tomo_pcg =
                Tomogravity::new(TomogravityOptions::default().with_solver(SolverPolicy::Pcg));
            let mut ws_pcg = TomogravityWorkspace::new();
            let mut pcg_last = Vec::new();
            let pcg_secs = time_min(
                || {
                    for t in 0..bins {
                        for (row, slot) in xp.iter_mut().enumerate() {
                            *slot = prior.as_matrix()[(row, t)];
                        }
                        obs.stacked_at_into(t, &mut b).expect("stacked obs");
                        tomo_pcg
                            .refine_bin_sparse_with(a, at, &xp, &b, &mut ws_pcg)
                            .expect("pcg refine");
                    }
                    pcg_last.clear();
                    pcg_last.extend_from_slice(ws_pcg.solution());
                },
                0.5,
                200,
            );
            // Cross-check: PCG refined the same last bin as the policy
            // path, within estimation tolerance.
            let scale: f64 = sparse_last.iter().fold(1.0_f64, |m, &v| m.max(v.abs()));
            let diff = sparse_last
                .iter()
                .zip(pcg_last.iter())
                .fold(0.0_f64, |m, (&s, &p)| m.max((s - p).abs()));
            assert!(
                diff <= 1e-6 * scale,
                "forced-PCG refinement disagrees with the policy path at {n} nodes: \
                 rel diff {}",
                diff / scale
            );
            let st = ws_pcg.solve_stats();
            (
                pcg_secs / bins as f64,
                st.pcg_iterations as f64 / st.pcg_solves.max(1) as f64,
            )
        };

    // Full sparse pipeline (prior + tomogravity + IPF) for context.
    let pipeline = EstimationPipeline::new(om).config(EstimationConfig::new().with_solver(policy));
    let mut pws = PipelineWorkspace::new();
    let serial_est = pipeline
        .estimate_with(&GravityPrior, &obs, &mut pws)
        .expect("pipeline warm-up");
    let pipeline_secs = time_min(
        || {
            pipeline
                .estimate_with(&GravityPrior, &obs, &mut pws)
                .expect("pipeline estimate");
        },
        0.5,
        200,
    );
    let pipeline_secs_per_bin = pipeline_secs / bins as f64;

    // The same pipeline with bins sharded across the engine's worker
    // pool. Warm up the per-worker workspaces, prove bit-identity to the
    // serial run, then time the steady state.
    let pool = WorkspacePool::new();
    let parallel_est = pipeline
        .estimate_parallel_pooled(&GravityPrior, &obs, &engine, &pool)
        .expect("parallel warm-up");
    assert_eq!(
        parallel_est, serial_est,
        "parallel estimate must be bit-identical to serial at {n} nodes"
    );
    let parallel_secs = time_min(
        || {
            pipeline
                .estimate_parallel_pooled(&GravityPrior, &obs, &engine, &pool)
                .expect("parallel estimate");
        },
        0.5,
        200,
    );
    let parallel_pipeline_secs_per_bin = parallel_secs / bins as f64;

    // The serial pipeline with stage metrics attached: bit-identical
    // output, and the timing difference vs the bare run is the whole
    // observability overhead.
    let instrumented_pipeline = pipeline.clone().config(
        pipeline
            .estimation_config()
            .clone()
            .with_metrics(PipelineMetrics::register(&registry)),
    );
    let instrumented_est = instrumented_pipeline
        .estimate_with(&GravityPrior, &obs, &mut pws)
        .expect("instrumented warm-up");
    assert_eq!(
        instrumented_est, serial_est,
        "instrumented estimate must be bit-identical to bare at {n} nodes"
    );
    let instrumented_secs = time_min(
        || {
            instrumented_pipeline
                .estimate_with(&GravityPrior, &obs, &mut pws)
                .expect("instrumented estimate");
        },
        0.5,
        200,
    );
    let instrumented_pipeline_secs_per_bin = instrumented_secs / bins as f64;

    // Batched SoA sweep: the same pipeline with batch width B folds up to
    // B bins into each CSR kernel pass (shards become batches). Every
    // width is warmed through a reusable batch-workspace pool, asserted
    // bit-identical to the serial per-bin estimate (f64 compute), then
    // timed; `bins_per_sec_batch{1,16}` feed the CI perf gate.
    let mut batch_sweep = Vec::new();
    for &width in batch_widths {
        let batched = pipeline.clone().config(
            EstimationConfig::new()
                .with_solver(policy)
                .with_batch_width(width),
        );
        let secs = if width > 1 {
            let batch_pool: WorkspacePool<PipelineBatchWorkspace> = WorkspacePool::new();
            let batched_est = batched
                .estimate_batch_parallel_pooled(&GravityPrior, &obs, &engine, &batch_pool)
                .expect("batched warm-up");
            assert_eq!(
                batched_est, serial_est,
                "batched estimate (B={width}) must be bit-identical to serial at {n} nodes"
            );
            time_min(
                || {
                    batched
                        .estimate_batch_parallel_pooled(&GravityPrior, &obs, &engine, &batch_pool)
                        .expect("batched estimate");
                },
                0.5,
                200,
            )
        } else {
            // Width 1 is the per-bin path by construction; time it through
            // the same parallel entry point so the sweep's B=1 row is the
            // exact baseline the wider rows are compared against.
            time_min(
                || {
                    batched
                        .estimate_parallel_pooled(&GravityPrior, &obs, &engine, &pool)
                        .expect("per-bin estimate");
                },
                0.5,
                200,
            )
        };
        batch_sweep.push((width, bins as f64 / secs));
    }

    // Multilevel solve on the same observations: accuracy vs truth is
    // asserted against the flat pipeline's accuracy before the timing,
    // so a broken decomposition can never post a (meaningless) time.
    let multilevel = if with_multilevel {
        let partition = grouped_partition(&topo, &cfg);
        let clusters = partition.cluster_count();
        let boundary_link_fraction = partition.boundary_link_fraction();
        let ml = MultilevelPipeline::new(
            &topo,
            RoutingScheme::Ecmp,
            partition,
            EstimationConfig::new().with_solver(policy),
        )
        .expect("quotient of backbone groups is strongly connected");
        let ml_mat = ml
            .estimate_parallel(&GravityPrior, &obs, &engine)
            .expect("multilevel warm-up")
            .materialize()
            .expect("materialize");
        let rel_err = mean_rel_l2(&truth, &ml_mat).expect("series align");
        let flat_rel_err = mean_rel_l2(&truth, &serial_est).expect("series align");
        assert!(
            rel_err <= flat_rel_err + ML_ERR_MARGIN,
            "multilevel error {rel_err:.4} exceeds flat {flat_rel_err:.4} + {ML_ERR_MARGIN} \
             at {n} nodes"
        );
        let secs = time_min(
            || {
                ml.estimate_parallel(&GravityPrior, &obs, &engine)
                    .expect("multilevel estimate");
            },
            0.5,
            200,
        );
        Some(MlNumbers {
            clusters,
            boundary_link_fraction,
            secs_per_bin: secs / bins as f64,
            rel_err,
            flat_rel_err,
        })
    } else {
        None
    };

    let sparse = pipeline.model().stacked_sparse();
    SizeResult {
        nodes: n,
        links: pipeline.model().links(),
        nnz: sparse.nnz(),
        density: sparse.density(),
        bins,
        sparse_secs_per_bin,
        dense_secs_per_bin,
        speedup_vs_dense: dense_secs_per_bin.map(|d| d / sparse_secs_per_bin),
        pipeline_secs_per_bin,
        parallel_pipeline_secs_per_bin,
        parallel_speedup: pipeline_secs_per_bin / parallel_pipeline_secs_per_bin,
        allocs_per_bin_warm,
        max_rel_diff_vs_dense,
        pcg_secs_per_bin,
        pcg_iterations_per_solve,
        solve_stats,
        instrumented_pipeline_secs_per_bin,
        instrumented_allocs_per_bin_warm,
        batch_sweep,
        multilevel,
    }
}

fn main() {
    let scale = Scale::from_args();
    let sizes = arg_value("--sizes")
        .map(|s| parse_sizes(&s))
        .unwrap_or_else(|| default_sizes(scale));
    let bins: usize = arg_value("--bins")
        .and_then(|s| s.parse().ok())
        .unwrap_or(match scale {
            Scale::Smoke => 4,
            Scale::Full => 3,
        });
    let dense_max: usize = arg_value("--dense-max")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let threads: usize = arg_value("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_threads);
    // Per-bin shards by default: a tomogravity bin is coarse enough that
    // scheduling overhead is invisible, and it maximizes the usable
    // parallelism of short bin sweeps.
    let shard_bins: usize = arg_value("--shard-bins")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let solver = arg_value("--solver").map_or(SolverPolicy::Auto, |s| parse_solver(&s));
    let batch_widths = arg_value("--batch").map_or_else(|| vec![1, 4, 16], |s| parse_batch(&s));
    let mode = arg_value("--mode").map_or(Mode::Both, |s| parse_mode(&s));
    let flat_max: usize = arg_value("--flat-max")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let engine = Engine::new()
        .with_threads(threads)
        .with_shard_bins(shard_bins);
    if mode == Mode::Multilevel {
        // The scale sweep has its own default sizes: the whole point is
        // territory beyond the flat defaults.
        let ml_sizes = arg_value("--sizes")
            .map(|s| parse_sizes(&s))
            .unwrap_or_else(|| match scale {
                Scale::Smoke => vec![200, 500],
                Scale::Full => vec![1000, 2000, 5000],
            });
        run_multilevel_sweep(scale, &ml_sizes, bins, flat_max, engine, solver);
        return;
    }
    println!(
        "# estimation_perf ({scale:?}): sizes {sizes:?}, {bins} bins, dense-max {dense_max}, \
         solver {solver:?}, batch {batch_widths:?}, {} threads x {}-bin shards \
         ({} cpus available)",
        engine.threads(),
        engine.shard_bins(),
        default_threads(),
    );
    println!(
        "# nodes\tlinks\tnnz\tdensity\tsparse_s/bin\tdense_s/bin\tspeedup\tpcg_s/bin\tpar_s/bin\tpar_speedup\tallocs/bin"
    );
    let mut results = Vec::new();
    for &size in &sizes {
        let r = bench_size(
            size,
            bins,
            dense_max,
            engine,
            solver,
            &batch_widths,
            mode == Mode::Both,
        );
        println!(
            "{}\t{}\t{}\t{:.5}\t{:.5}\t{}\t{}\t{:.5}\t{:.5}\t{:.2}x\t{}",
            r.nodes,
            r.links,
            r.nnz,
            r.density,
            r.sparse_secs_per_bin,
            r.dense_secs_per_bin
                .map(|v| format!("{v:.5}"))
                .unwrap_or_else(|| "-".to_string()),
            r.speedup_vs_dense
                .map(|v| format!("{v:.1}x"))
                .unwrap_or_else(|| "-".to_string()),
            r.pcg_secs_per_bin,
            r.parallel_pipeline_secs_per_bin,
            r.parallel_speedup,
            r.allocs_per_bin_warm,
        );
        // Satellite of the solver refactor: the once-silent
        // pseudo-inverse fallback (and all PCG work) is logged per size.
        let st = &r.solve_stats;
        println!(
            "#   solver @ {} nodes: {} dense / {} pcg solves, {} pcg iters \
             ({:.1}/solve forced-pcg), {} stalls, {} fallbacks",
            r.nodes,
            st.dense_solves,
            st.pcg_solves,
            st.pcg_iterations,
            r.pcg_iterations_per_solve,
            st.pcg_stalls,
            st.fallbacks,
        );
        // Metrics-overhead gate: stage spans are two clock reads and a
        // few relaxed atomics per bin, so the instrumented pipeline must
        // stay within noise of the bare one. 1.5x is far above any real
        // span cost and still catches an accidentally hot-path allocation
        // or lock.
        println!(
            "#   metrics @ {} nodes: instrumented pipeline {:.5} s/bin vs bare {:.5} \
             ({:+.1}% overhead), {} allocs/bin warm",
            r.nodes,
            r.instrumented_pipeline_secs_per_bin,
            r.pipeline_secs_per_bin,
            (r.instrumented_pipeline_secs_per_bin / r.pipeline_secs_per_bin - 1.0) * 100.0,
            r.instrumented_allocs_per_bin_warm,
        );
        assert!(
            r.instrumented_pipeline_secs_per_bin <= 1.5 * r.pipeline_secs_per_bin,
            "metrics overhead too high at {} nodes: instrumented {:.6} s/bin vs bare {:.6}",
            r.nodes,
            r.instrumented_pipeline_secs_per_bin,
            r.pipeline_secs_per_bin,
        );
        assert_eq!(
            r.instrumented_allocs_per_bin_warm, 0,
            "instrumented warm refine sweep allocated at {} nodes",
            r.nodes
        );
        // Batched throughput sweep, relative to the B=1 per-bin row. On a
        // 1-CPU runner the kernel-level batching gain is the whole story;
        // the multi-core gain shows up in the nightly sweep.
        let base = r.batch_sweep.first().map_or(0.0, |&(_, bps)| bps);
        for &(width, bps) in &r.batch_sweep {
            println!(
                "#   batch @ {} nodes: B={width} -> {bps:.1} bins/s ({:.2}x vs B=1)",
                r.nodes,
                if base > 0.0 { bps / base } else { f64::NAN },
            );
        }
        if let Some(ml) = &r.multilevel {
            println!(
                "#   multilevel @ {} nodes: {} clusters ({:.1}% boundary links), \
                 {:.5} s/bin vs flat {:.5} ({:.2}x), rel err {:.4} vs flat {:.4}",
                r.nodes,
                ml.clusters,
                ml.boundary_link_fraction * 100.0,
                ml.secs_per_bin,
                r.pipeline_secs_per_bin,
                r.pipeline_secs_per_bin / ml.secs_per_bin,
                ml.rel_err,
                ml.flat_rel_err,
            );
        }
        if let Some(diff) = r.max_rel_diff_vs_dense {
            // PCG solves to a 1e-12 relative residual, not to machine
            // epsilon, so when the policy path ran PCG the dense
            // cross-check gets estimation tolerance instead of the
            // bit-level dense-vs-sparse bound.
            let tol = if r.solve_stats.pcg_solves > 0 {
                1e-6
            } else {
                1e-9
            };
            assert!(
                diff < tol,
                "sparse and dense refinements disagree at {} nodes: {diff}",
                r.nodes
            );
        }
        results.push(r);
    }
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            // One flat key per swept width so the perf gate's exact-key
            // extraction can track each width independently.
            let batch_json: String = r
                .batch_sweep
                .iter()
                .map(|&(w, bps)| format!(",\"bins_per_sec_batch{w}\":{}", json_f(bps)))
                .collect();
            let ml_json = r.multilevel.as_ref().map_or_else(String::new, |ml| {
                format!(
                    ",\"multilevel_secs_per_bin\":{},\"multilevel_clusters\":{},\
                     \"multilevel_boundary_link_fraction\":{},\
                     \"multilevel_rel_err\":{},\"multilevel_flat_rel_err\":{}",
                    json_f(ml.secs_per_bin),
                    ml.clusters,
                    json_f(ml.boundary_link_fraction),
                    json_f(ml.rel_err),
                    json_f(ml.flat_rel_err),
                )
            });
            format!(
                "{{\"nodes\":{},\"links\":{},\"nnz\":{},\"density\":{},\"bins\":{},\
                 \"sparse_refine_secs_per_bin\":{},\"dense_refine_secs_per_bin\":{},\
                 \"speedup_vs_dense\":{},\"pcg_secs_per_bin\":{},\
                 \"pcg_iterations_per_solve\":{},\"fallbacks\":{},\
                 \"pipeline_secs_per_bin\":{},\
                 \"parallel_pipeline_secs_per_bin\":{},\"parallel_speedup\":{},\
                 \"allocs_per_bin_warm\":{},\
                 \"instrumented_pipeline_secs_per_bin\":{},\
                 \"instrumented_allocs_per_bin_warm\":{}{}{}}}",
                r.nodes,
                r.links,
                r.nnz,
                json_f(r.density),
                r.bins,
                json_f(r.sparse_secs_per_bin),
                r.dense_secs_per_bin
                    .map(json_f)
                    .unwrap_or_else(|| "null".to_string()),
                r.speedup_vs_dense
                    .map(json_f)
                    .unwrap_or_else(|| "null".to_string()),
                json_f(r.pcg_secs_per_bin),
                json_f(r.pcg_iterations_per_solve),
                r.solve_stats.fallbacks,
                json_f(r.pipeline_secs_per_bin),
                json_f(r.parallel_pipeline_secs_per_bin),
                json_f(r.parallel_speedup),
                r.allocs_per_bin_warm,
                json_f(r.instrumented_pipeline_secs_per_bin),
                r.instrumented_allocs_per_bin_warm,
                batch_json,
                ml_json,
            )
        })
        .collect();
    let json = format!(
        "{{\"scale\":\"{scale:?}\",\"bins\":{bins},\"dense_max\":{dense_max},\
         \"solver\":\"{solver:?}\",\
         \"threads\":{},\"shard_bins\":{},\"cpus_available\":{},\"results\":[{}]}}\n",
        engine.threads(),
        engine.shard_bins(),
        default_threads(),
        entries.join(",")
    );
    let path = out_path("BENCH_estimation.json");
    std::fs::write(&path, &json).expect("write BENCH_estimation.json");
    println!("# wrote {path}");
    print!("{json}");
}

/// The `--mode multilevel` scale sweep: sizes the flat observation model
/// cannot reach, timed through the partition-aware decomposition, with a
/// flat cross-check (accuracy asserted before timing) up to `flat_max`
/// nodes. Writes `BENCH_estimation_multilevel.json`.
fn run_multilevel_sweep(
    scale: Scale,
    sizes: &[usize],
    bins: usize,
    flat_max: usize,
    engine: Engine,
    solver: SolverPolicy,
) {
    println!(
        "# estimation_perf ({scale:?}, multilevel): sizes {sizes:?}, {bins} bins, \
         flat-max {flat_max}, solver {solver:?}, {} threads ({} cpus available)",
        engine.threads(),
        default_threads(),
    );
    println!(
        "# nodes\tlinks\tclusters\tboundary%\tml_s/bin\tflat_s/bin\tspeedup\tml_err\tflat_err"
    );
    let mut results = Vec::new();
    for &size in sizes {
        let r = bench_multilevel_size(size, bins, flat_max, engine, solver);
        println!(
            "{}\t{}\t{}\t{:.1}\t{:.5}\t{}\t{}\t{}\t{}",
            r.nodes,
            r.links,
            r.clusters,
            r.boundary_link_fraction * 100.0,
            r.multilevel_secs_per_bin,
            r.flat_secs_per_bin
                .map(|v| format!("{v:.5}"))
                .unwrap_or_else(|| "-".to_string()),
            r.speedup_vs_flat
                .map(|v| format!("{v:.1}x"))
                .unwrap_or_else(|| "-".to_string()),
            r.multilevel_rel_err
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".to_string()),
            r.flat_rel_err
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".to_string()),
        );
        results.push(r);
    }
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"nodes\":{},\"links\":{},\"clusters\":{},\
                 \"boundary_link_fraction\":{},\"bins\":{},\
                 \"multilevel_secs_per_bin\":{},\"flat_pipeline_secs_per_bin\":{},\
                 \"speedup_vs_flat\":{},\"multilevel_rel_err\":{},\"flat_rel_err\":{}}}",
                r.nodes,
                r.links,
                r.clusters,
                json_f(r.boundary_link_fraction),
                r.bins,
                json_f(r.multilevel_secs_per_bin),
                r.flat_secs_per_bin
                    .map(json_f)
                    .unwrap_or_else(|| "null".to_string()),
                r.speedup_vs_flat
                    .map(json_f)
                    .unwrap_or_else(|| "null".to_string()),
                r.multilevel_rel_err
                    .map(json_f)
                    .unwrap_or_else(|| "null".to_string()),
                r.flat_rel_err
                    .map(json_f)
                    .unwrap_or_else(|| "null".to_string()),
            )
        })
        .collect();
    let json = format!(
        "{{\"scale\":\"{scale:?}\",\"mode\":\"multilevel\",\"bins\":{bins},\
         \"flat_max\":{flat_max},\"solver\":\"{solver:?}\",\"threads\":{},\
         \"cpus_available\":{},\"results\":[{}]}}\n",
        engine.threads(),
        default_threads(),
        entries.join(",")
    );
    let path = out_path("BENCH_estimation_multilevel.json");
    std::fs::write(&path, &json).expect("write BENCH_estimation_multilevel.json");
    println!("# wrote {path}");
    print!("{json}");
}
