//! Unified estimation performance benchmark — the sparse-vs-dense
//! headline numbers of the scaled-topology overhaul.
//!
//! Sweeps seeded hierarchical backbone/PoP topologies across sizes,
//! generates synthetic IC traffic on each, and times the tomogravity
//! refinement through both linear-algebra paths:
//!
//! * **sparse** — the production path: CSR `A W Aᵀ` with reusable
//!   [`TomogravityWorkspace`] buffers (allocation-free per bin once warm;
//!   the allocation counter below proves it);
//! * **dense** — the dense reference `refine_bin` on the materialized
//!   stacked operator (skipped above `--dense-max` nodes, where dense
//!   memory/time costs stop being measurable in CI).
//!
//! Also times the full prior → tomogravity → IPF pipeline on the sparse
//! path — serially and with bins sharded across an `ic-engine` worker
//! pool (`--threads`) — and emits a machine-readable
//! `BENCH_estimation.json` in the same style as `BENCH_streaming.json`,
//! consumed by the CI perf-regression gate (`perf_gate`). The parallel
//! estimate is asserted bit-identical to the serial one before it is
//! timed; the recorded `threads`/`shard_bins`/`cpus_available` metadata
//! makes the parallel numbers interpretable across machines (on a 1-CPU
//! runner the parallel speedup is necessarily ~1x).
//!
//! `--solver auto|dense|pcg` pins the [`SolverPolicy`] of the timed
//! paths (default `auto`). Independently of the chosen policy, every
//! size also times a forced-PCG refinement pass (`pcg_secs_per_bin`) and
//! cross-checks it against the policy path, so the matrix-free solver is
//! always measured and gated; solver counters (PCG iterations, stalls,
//! Cholesky→pseudo-inverse fallbacks) are logged per size.
//!
//! `--batch B1,B2,...` sweeps the batched SoA pipeline at each width:
//! every width is asserted bit-identical to the serial per-bin estimate,
//! then timed, and the per-width throughput is emitted as
//! `bins_per_sec_batch{B}` (the `B ∈ {1, 16}` keys are perf-gated).
//!
//! Usage: `estimation_perf [--scale smoke|full] [--sizes 50,100,200]
//! [--bins N] [--dense-max N] [--threads N] [--shard-bins N]
//! [--solver auto|dense|pcg] [--batch 1,4,16] [--out PATH]`.

use ic_bench::{arg_value, json_f, out_path, Scale};
use ic_core::{generate_synthetic, SynthConfig};
use ic_engine::{default_threads, Engine, WorkspacePool};
use ic_estimation::{
    EstimationConfig, EstimationPipeline, GravityPrior, ObservationModel, PipelineBatchWorkspace,
    PipelineMetrics, PipelineWorkspace, SolveStats, SolverPolicy, TmPrior, Tomogravity,
    TomogravityOptions, TomogravityWorkspace,
};
use ic_obs::{MetricsRegistry, Span};
use ic_topology::{hierarchical, HierarchicalConfig, RoutingScheme};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the bench can report that the sparse
/// workspace path really is allocation-free per bin after warm-up.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to `System` verbatim; the counter is a relaxed atomic
// with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` repeatedly until `target_secs` of wall clock accumulates (or
/// `max_reps` is hit) and returns the **minimum** single-run time — the
/// standard robust estimator for short benchmarks, which is what keeps the
/// smoke-scale numbers stable enough for a 25% CI regression gate.
fn time_min(mut f: impl FnMut(), target_secs: f64, max_reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    let start = Instant::now();
    for _ in 0..max_reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
        if start.elapsed().as_secs_f64() >= target_secs {
            break;
        }
    }
    best
}

struct SizeResult {
    nodes: usize,
    links: usize,
    nnz: usize,
    density: f64,
    bins: usize,
    sparse_secs_per_bin: f64,
    dense_secs_per_bin: Option<f64>,
    speedup_vs_dense: Option<f64>,
    pipeline_secs_per_bin: f64,
    parallel_pipeline_secs_per_bin: f64,
    parallel_speedup: f64,
    allocs_per_bin_warm: u64,
    max_rel_diff_vs_dense: Option<f64>,
    /// Forced-PCG refinement time (measured even when the policy path
    /// resolved to dense, so the matrix-free solver is always gated).
    pcg_secs_per_bin: f64,
    /// Mean PCG iterations per forced-PCG solve.
    pcg_iterations_per_solve: f64,
    /// Solver counters of the policy path over one counted bin sweep.
    solve_stats: SolveStats,
    /// Pipeline time with `ic-obs` stage metrics attached — the
    /// metrics-overhead gate compares this against the bare
    /// `pipeline_secs_per_bin`.
    instrumented_pipeline_secs_per_bin: f64,
    /// Warm-sweep allocations per bin with a span recording each refine
    /// into a registry histogram. Must stay 0: metric recording is
    /// clock reads and relaxed atomics only.
    instrumented_allocs_per_bin_warm: u64,
    /// Batched SoA pipeline throughput per batch width `B`, as
    /// `(B, bins_per_sec)`. Every width is asserted bit-identical to the
    /// serial per-bin estimate before it is timed.
    batch_sweep: Vec<(usize, f64)>,
}

fn default_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![20, 50],
        Scale::Full => vec![50, 100, 200],
    }
}

fn parse_sizes(spec: &str) -> Vec<usize> {
    let sizes: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 10)
        .collect();
    assert!(
        !sizes.is_empty(),
        "--sizes {spec:?} contains no valid size (comma-separated integers >= 10); \
         refusing to run an empty sweep"
    );
    sizes
}

fn parse_solver(spec: &str) -> SolverPolicy {
    match spec {
        "auto" => SolverPolicy::Auto,
        "dense" => SolverPolicy::Dense,
        "pcg" => SolverPolicy::Pcg,
        other => panic!("--solver {other:?} is not one of auto|dense|pcg"),
    }
}

fn parse_batch(spec: &str) -> Vec<usize> {
    let widths: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok())
        .filter(|&b| b >= 1)
        .collect();
    assert!(
        !widths.is_empty(),
        "--batch {spec:?} contains no valid width (comma-separated integers >= 1)"
    );
    widths
}

fn bench_size(
    nodes: usize,
    bins: usize,
    dense_max: usize,
    engine: Engine,
    policy: SolverPolicy,
    batch_widths: &[usize],
) -> SizeResult {
    // Hierarchical topology: nodes/10 backbones with 9 PoPs each, so the
    // node count lands exactly on the requested size for multiples of 10.
    let cfg = HierarchicalConfig::new((nodes / 10).max(1), 9, 20060419);
    let topo = hierarchical(&cfg).expect("generator config is valid");
    let n = topo.node_count();
    let om = ObservationModel::new(&topo, RoutingScheme::Ecmp).expect("strongly connected");
    let synth = SynthConfig::geant_like(7 + n as u64)
        .with_nodes(n)
        .with_bins(bins);
    let truth = generate_synthetic(&synth)
        .expect("valid synth config")
        .series;
    let obs = om.observe(&truth).expect("observe");
    let prior = GravityPrior.prior_series(&obs).expect("gravity prior");
    let tomo = Tomogravity::new(TomogravityOptions::default().with_solver(policy));

    // Sparse path: series refine through the reusable workspace, with a
    // one-bin warm-up so the timed region measures steady state.
    let a = om.stacked_sparse();
    let at = om.stacked_transpose();
    let mut ws = TomogravityWorkspace::new();
    let xp0 = prior.column(0);
    let b0 = obs.stacked_at(0);
    tomo.refine_bin_sparse_with(a, at, &xp0, &b0, &mut ws)
        .expect("warm-up refine");
    let mut xp = vec![0.0; n * n];
    let mut b = vec![0.0; obs.stacked_len()];
    // Allocation count of one warm pass (measured outside the timing reps
    // so the input fills don't blur it). Solver counters are reset first
    // so the snapshot covers exactly this bin sweep.
    ws.reset_solve_stats();
    let allocs_before = allocations();
    for t in 0..bins {
        for (row, slot) in xp.iter_mut().enumerate() {
            *slot = prior.as_matrix()[(row, t)];
        }
        obs.stacked_at_into(t, &mut b).expect("stacked obs");
        tomo.refine_bin_sparse_with(a, at, &xp, &b, &mut ws)
            .expect("sparse refine");
    }
    let allocs_per_bin_warm = (allocations() - allocs_before) / bins as u64;
    let solve_stats = ws.solve_stats();
    let sparse_last: Vec<f64> = ws.solution().to_vec();

    // Sparse timing: min over repetitions of the whole bin sweep.
    let sparse_secs = time_min(
        || {
            for t in 0..bins {
                for (row, slot) in xp.iter_mut().enumerate() {
                    *slot = prior.as_matrix()[(row, t)];
                }
                obs.stacked_at_into(t, &mut b).expect("stacked obs");
                tomo.refine_bin_sparse_with(a, at, &xp, &b, &mut ws)
                    .expect("sparse refine");
            }
        },
        0.5,
        200,
    );
    let sparse_secs_per_bin = sparse_secs / bins as f64;

    // The same warm sweep with every refine wrapped in a recording span:
    // proves the zero-allocation warm path survives instrumentation.
    let registry = MetricsRegistry::new();
    let refine_hist = registry.histogram("bench.refine.seconds");
    let allocs_before = allocations();
    for t in 0..bins {
        for (row, slot) in xp.iter_mut().enumerate() {
            *slot = prior.as_matrix()[(row, t)];
        }
        obs.stacked_at_into(t, &mut b).expect("stacked obs");
        let span = Span::start(&refine_hist);
        tomo.refine_bin_sparse_with(a, at, &xp, &b, &mut ws)
            .expect("instrumented sparse refine");
        drop(span);
    }
    let instrumented_allocs_per_bin_warm = (allocations() - allocs_before) / bins as u64;
    assert_eq!(refine_hist.count(), bins as u64);

    // Dense reference path, where tractable.
    let (dense_secs_per_bin, max_rel_diff_vs_dense) = if n <= dense_max {
        let a_dense = om.stacked().expect("dense stacked");
        let mut dense_last = Vec::new();
        let dense_secs = time_min(
            || {
                for t in 0..bins {
                    for (row, slot) in xp.iter_mut().enumerate() {
                        *slot = prior.as_matrix()[(row, t)];
                    }
                    obs.stacked_at_into(t, &mut b).expect("stacked obs");
                    dense_last = tomo.refine_bin(&a_dense, &xp, &b).expect("dense refine");
                }
            },
            0.5,
            50,
        );
        // Cross-check: both paths refined the same last bin.
        let scale: f64 = dense_last.iter().fold(1.0_f64, |m, &v| m.max(v.abs()));
        let diff = sparse_last
            .iter()
            .zip(dense_last.iter())
            .fold(0.0_f64, |m, (&s, &d)| m.max((s - d).abs()));
        (Some(dense_secs / bins as f64), Some(diff / scale))
    } else {
        (None, None)
    };

    // Forced-PCG refinement pass. When the policy path already ran pure
    // PCG (no dense solves), its numbers are reused; otherwise a second
    // sweep with a pinned-PCG tomogravity measures the matrix-free
    // solver at this size and is cross-checked against the policy path.
    let (pcg_secs_per_bin, pcg_iterations_per_solve) =
        if solve_stats.dense_solves == 0 && solve_stats.pcg_solves > 0 {
            (
                sparse_secs_per_bin,
                solve_stats.pcg_iterations as f64 / solve_stats.pcg_solves as f64,
            )
        } else {
            let tomo_pcg =
                Tomogravity::new(TomogravityOptions::default().with_solver(SolverPolicy::Pcg));
            let mut ws_pcg = TomogravityWorkspace::new();
            let mut pcg_last = Vec::new();
            let pcg_secs = time_min(
                || {
                    for t in 0..bins {
                        for (row, slot) in xp.iter_mut().enumerate() {
                            *slot = prior.as_matrix()[(row, t)];
                        }
                        obs.stacked_at_into(t, &mut b).expect("stacked obs");
                        tomo_pcg
                            .refine_bin_sparse_with(a, at, &xp, &b, &mut ws_pcg)
                            .expect("pcg refine");
                    }
                    pcg_last.clear();
                    pcg_last.extend_from_slice(ws_pcg.solution());
                },
                0.5,
                200,
            );
            // Cross-check: PCG refined the same last bin as the policy
            // path, within estimation tolerance.
            let scale: f64 = sparse_last.iter().fold(1.0_f64, |m, &v| m.max(v.abs()));
            let diff = sparse_last
                .iter()
                .zip(pcg_last.iter())
                .fold(0.0_f64, |m, (&s, &p)| m.max((s - p).abs()));
            assert!(
                diff <= 1e-6 * scale,
                "forced-PCG refinement disagrees with the policy path at {n} nodes: \
                 rel diff {}",
                diff / scale
            );
            let st = ws_pcg.solve_stats();
            (
                pcg_secs / bins as f64,
                st.pcg_iterations as f64 / st.pcg_solves.max(1) as f64,
            )
        };

    // Full sparse pipeline (prior + tomogravity + IPF) for context.
    let pipeline = EstimationPipeline::new(om).config(EstimationConfig::new().with_solver(policy));
    let mut pws = PipelineWorkspace::new();
    let serial_est = pipeline
        .estimate_with(&GravityPrior, &obs, &mut pws)
        .expect("pipeline warm-up");
    let pipeline_secs = time_min(
        || {
            pipeline
                .estimate_with(&GravityPrior, &obs, &mut pws)
                .expect("pipeline estimate");
        },
        0.5,
        200,
    );
    let pipeline_secs_per_bin = pipeline_secs / bins as f64;

    // The same pipeline with bins sharded across the engine's worker
    // pool. Warm up the per-worker workspaces, prove bit-identity to the
    // serial run, then time the steady state.
    let pool = WorkspacePool::new();
    let parallel_est = pipeline
        .estimate_parallel_pooled(&GravityPrior, &obs, &engine, &pool)
        .expect("parallel warm-up");
    assert_eq!(
        parallel_est, serial_est,
        "parallel estimate must be bit-identical to serial at {n} nodes"
    );
    let parallel_secs = time_min(
        || {
            pipeline
                .estimate_parallel_pooled(&GravityPrior, &obs, &engine, &pool)
                .expect("parallel estimate");
        },
        0.5,
        200,
    );
    let parallel_pipeline_secs_per_bin = parallel_secs / bins as f64;

    // The serial pipeline with stage metrics attached: bit-identical
    // output, and the timing difference vs the bare run is the whole
    // observability overhead.
    let instrumented_pipeline = pipeline.clone().config(
        pipeline
            .estimation_config()
            .clone()
            .with_metrics(PipelineMetrics::register(&registry)),
    );
    let instrumented_est = instrumented_pipeline
        .estimate_with(&GravityPrior, &obs, &mut pws)
        .expect("instrumented warm-up");
    assert_eq!(
        instrumented_est, serial_est,
        "instrumented estimate must be bit-identical to bare at {n} nodes"
    );
    let instrumented_secs = time_min(
        || {
            instrumented_pipeline
                .estimate_with(&GravityPrior, &obs, &mut pws)
                .expect("instrumented estimate");
        },
        0.5,
        200,
    );
    let instrumented_pipeline_secs_per_bin = instrumented_secs / bins as f64;

    // Batched SoA sweep: the same pipeline with batch width B folds up to
    // B bins into each CSR kernel pass (shards become batches). Every
    // width is warmed through a reusable batch-workspace pool, asserted
    // bit-identical to the serial per-bin estimate (f64 compute), then
    // timed; `bins_per_sec_batch{1,16}` feed the CI perf gate.
    let mut batch_sweep = Vec::new();
    for &width in batch_widths {
        let batched = pipeline.clone().config(
            EstimationConfig::new()
                .with_solver(policy)
                .with_batch_width(width),
        );
        let secs = if width > 1 {
            let batch_pool: WorkspacePool<PipelineBatchWorkspace> = WorkspacePool::new();
            let batched_est = batched
                .estimate_batch_parallel_pooled(&GravityPrior, &obs, &engine, &batch_pool)
                .expect("batched warm-up");
            assert_eq!(
                batched_est, serial_est,
                "batched estimate (B={width}) must be bit-identical to serial at {n} nodes"
            );
            time_min(
                || {
                    batched
                        .estimate_batch_parallel_pooled(&GravityPrior, &obs, &engine, &batch_pool)
                        .expect("batched estimate");
                },
                0.5,
                200,
            )
        } else {
            // Width 1 is the per-bin path by construction; time it through
            // the same parallel entry point so the sweep's B=1 row is the
            // exact baseline the wider rows are compared against.
            time_min(
                || {
                    batched
                        .estimate_parallel_pooled(&GravityPrior, &obs, &engine, &pool)
                        .expect("per-bin estimate");
                },
                0.5,
                200,
            )
        };
        batch_sweep.push((width, bins as f64 / secs));
    }

    let sparse = pipeline.model().stacked_sparse();
    SizeResult {
        nodes: n,
        links: pipeline.model().links(),
        nnz: sparse.nnz(),
        density: sparse.density(),
        bins,
        sparse_secs_per_bin,
        dense_secs_per_bin,
        speedup_vs_dense: dense_secs_per_bin.map(|d| d / sparse_secs_per_bin),
        pipeline_secs_per_bin,
        parallel_pipeline_secs_per_bin,
        parallel_speedup: pipeline_secs_per_bin / parallel_pipeline_secs_per_bin,
        allocs_per_bin_warm,
        max_rel_diff_vs_dense,
        pcg_secs_per_bin,
        pcg_iterations_per_solve,
        solve_stats,
        instrumented_pipeline_secs_per_bin,
        instrumented_allocs_per_bin_warm,
        batch_sweep,
    }
}

fn main() {
    let scale = Scale::from_args();
    let sizes = arg_value("--sizes")
        .map(|s| parse_sizes(&s))
        .unwrap_or_else(|| default_sizes(scale));
    let bins: usize = arg_value("--bins")
        .and_then(|s| s.parse().ok())
        .unwrap_or(match scale {
            Scale::Smoke => 4,
            Scale::Full => 3,
        });
    let dense_max: usize = arg_value("--dense-max")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let threads: usize = arg_value("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_threads);
    // Per-bin shards by default: a tomogravity bin is coarse enough that
    // scheduling overhead is invisible, and it maximizes the usable
    // parallelism of short bin sweeps.
    let shard_bins: usize = arg_value("--shard-bins")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let solver = arg_value("--solver").map_or(SolverPolicy::Auto, |s| parse_solver(&s));
    let batch_widths = arg_value("--batch").map_or_else(|| vec![1, 4, 16], |s| parse_batch(&s));
    let engine = Engine::new()
        .with_threads(threads)
        .with_shard_bins(shard_bins);
    println!(
        "# estimation_perf ({scale:?}): sizes {sizes:?}, {bins} bins, dense-max {dense_max}, \
         solver {solver:?}, batch {batch_widths:?}, {} threads x {}-bin shards \
         ({} cpus available)",
        engine.threads(),
        engine.shard_bins(),
        default_threads(),
    );
    println!(
        "# nodes\tlinks\tnnz\tdensity\tsparse_s/bin\tdense_s/bin\tspeedup\tpcg_s/bin\tpar_s/bin\tpar_speedup\tallocs/bin"
    );
    let mut results = Vec::new();
    for &size in &sizes {
        let r = bench_size(size, bins, dense_max, engine, solver, &batch_widths);
        println!(
            "{}\t{}\t{}\t{:.5}\t{:.5}\t{}\t{}\t{:.5}\t{:.5}\t{:.2}x\t{}",
            r.nodes,
            r.links,
            r.nnz,
            r.density,
            r.sparse_secs_per_bin,
            r.dense_secs_per_bin
                .map(|v| format!("{v:.5}"))
                .unwrap_or_else(|| "-".to_string()),
            r.speedup_vs_dense
                .map(|v| format!("{v:.1}x"))
                .unwrap_or_else(|| "-".to_string()),
            r.pcg_secs_per_bin,
            r.parallel_pipeline_secs_per_bin,
            r.parallel_speedup,
            r.allocs_per_bin_warm,
        );
        // Satellite of the solver refactor: the once-silent
        // pseudo-inverse fallback (and all PCG work) is logged per size.
        let st = &r.solve_stats;
        println!(
            "#   solver @ {} nodes: {} dense / {} pcg solves, {} pcg iters \
             ({:.1}/solve forced-pcg), {} stalls, {} fallbacks",
            r.nodes,
            st.dense_solves,
            st.pcg_solves,
            st.pcg_iterations,
            r.pcg_iterations_per_solve,
            st.pcg_stalls,
            st.fallbacks,
        );
        // Metrics-overhead gate: stage spans are two clock reads and a
        // few relaxed atomics per bin, so the instrumented pipeline must
        // stay within noise of the bare one. 1.5x is far above any real
        // span cost and still catches an accidentally hot-path allocation
        // or lock.
        println!(
            "#   metrics @ {} nodes: instrumented pipeline {:.5} s/bin vs bare {:.5} \
             ({:+.1}% overhead), {} allocs/bin warm",
            r.nodes,
            r.instrumented_pipeline_secs_per_bin,
            r.pipeline_secs_per_bin,
            (r.instrumented_pipeline_secs_per_bin / r.pipeline_secs_per_bin - 1.0) * 100.0,
            r.instrumented_allocs_per_bin_warm,
        );
        assert!(
            r.instrumented_pipeline_secs_per_bin <= 1.5 * r.pipeline_secs_per_bin,
            "metrics overhead too high at {} nodes: instrumented {:.6} s/bin vs bare {:.6}",
            r.nodes,
            r.instrumented_pipeline_secs_per_bin,
            r.pipeline_secs_per_bin,
        );
        assert_eq!(
            r.instrumented_allocs_per_bin_warm, 0,
            "instrumented warm refine sweep allocated at {} nodes",
            r.nodes
        );
        // Batched throughput sweep, relative to the B=1 per-bin row. On a
        // 1-CPU runner the kernel-level batching gain is the whole story;
        // the multi-core gain shows up in the nightly sweep.
        let base = r.batch_sweep.first().map_or(0.0, |&(_, bps)| bps);
        for &(width, bps) in &r.batch_sweep {
            println!(
                "#   batch @ {} nodes: B={width} -> {bps:.1} bins/s ({:.2}x vs B=1)",
                r.nodes,
                if base > 0.0 { bps / base } else { f64::NAN },
            );
        }
        if let Some(diff) = r.max_rel_diff_vs_dense {
            // PCG solves to a 1e-12 relative residual, not to machine
            // epsilon, so when the policy path ran PCG the dense
            // cross-check gets estimation tolerance instead of the
            // bit-level dense-vs-sparse bound.
            let tol = if r.solve_stats.pcg_solves > 0 {
                1e-6
            } else {
                1e-9
            };
            assert!(
                diff < tol,
                "sparse and dense refinements disagree at {} nodes: {diff}",
                r.nodes
            );
        }
        results.push(r);
    }
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            // One flat key per swept width so the perf gate's exact-key
            // extraction can track each width independently.
            let batch_json: String = r
                .batch_sweep
                .iter()
                .map(|&(w, bps)| format!(",\"bins_per_sec_batch{w}\":{}", json_f(bps)))
                .collect();
            format!(
                "{{\"nodes\":{},\"links\":{},\"nnz\":{},\"density\":{},\"bins\":{},\
                 \"sparse_refine_secs_per_bin\":{},\"dense_refine_secs_per_bin\":{},\
                 \"speedup_vs_dense\":{},\"pcg_secs_per_bin\":{},\
                 \"pcg_iterations_per_solve\":{},\"fallbacks\":{},\
                 \"pipeline_secs_per_bin\":{},\
                 \"parallel_pipeline_secs_per_bin\":{},\"parallel_speedup\":{},\
                 \"allocs_per_bin_warm\":{},\
                 \"instrumented_pipeline_secs_per_bin\":{},\
                 \"instrumented_allocs_per_bin_warm\":{}{}}}",
                r.nodes,
                r.links,
                r.nnz,
                json_f(r.density),
                r.bins,
                json_f(r.sparse_secs_per_bin),
                r.dense_secs_per_bin
                    .map(json_f)
                    .unwrap_or_else(|| "null".to_string()),
                r.speedup_vs_dense
                    .map(json_f)
                    .unwrap_or_else(|| "null".to_string()),
                json_f(r.pcg_secs_per_bin),
                json_f(r.pcg_iterations_per_solve),
                r.solve_stats.fallbacks,
                json_f(r.pipeline_secs_per_bin),
                json_f(r.parallel_pipeline_secs_per_bin),
                json_f(r.parallel_speedup),
                r.allocs_per_bin_warm,
                json_f(r.instrumented_pipeline_secs_per_bin),
                r.instrumented_allocs_per_bin_warm,
                batch_json,
            )
        })
        .collect();
    let json = format!(
        "{{\"scale\":\"{scale:?}\",\"bins\":{bins},\"dense_max\":{dense_max},\
         \"solver\":\"{solver:?}\",\
         \"threads\":{},\"shard_bins\":{},\"cpus_available\":{},\"results\":[{}]}}\n",
        engine.threads(),
        engine.shard_bins(),
        default_threads(),
        entries.join(",")
    );
    let path = out_path("BENCH_estimation.json");
    std::fs::write(&path, &json).expect("write BENCH_estimation.json");
    println!("# wrote {path}");
    print!("{json}");
}
