//! CI perf-regression gate: compares a freshly produced bench JSON
//! against a committed baseline snapshot and fails (exit code 1) when a
//! tracked metric regresses beyond the tolerance.
//!
//! The metric set is inferred from the keys present in the baseline:
//!
//! * streaming (`BENCH_streaming.json`): `throughput_bins_per_sec` ↑,
//!   `warm_speedup` ↑, `service_bins_per_sec` ↑ (the multi-tenant
//!   `ic-serve` ingest+poll path);
//! * estimation (`BENCH_estimation.json`): `sparse_refine_secs_per_bin` ↓,
//!   `pcg_secs_per_bin` ↓, `pipeline_secs_per_bin` ↓,
//!   `parallel_pipeline_secs_per_bin` ↓, `speedup_vs_dense` ↑,
//!   `allocs_per_bin_warm` ↓, `instrumented_pipeline_secs_per_bin` ↓ and
//!   `instrumented_allocs_per_bin_warm` ↓ (the `ic-obs`-instrumented
//!   pipeline and warm refine sweep; a 0-alloc baseline means any
//!   instrumentation-added allocation fails the gate), and
//!   `bins_per_sec_batch1` / `bins_per_sec_batch16` ↑ (batched SoA
//!   pipeline throughput at B=1 and B=16), and
//!   `multilevel_secs_per_bin` ↓ (the partition-aware multilevel solve
//!   the default `--mode both` piggybacks on every size) — compared
//!   positionally per topology size.
//!
//! The engine-sharded timing is gated as an absolute per-bin time rather
//! than as a parallel-speedup ratio: the ratio is a function of the
//! runner's core count (a 1-CPU runner can never exceed 1x), while the
//! absolute timing regresses exactly when the parallel path gets slower
//! on comparable hardware. Baselines must therefore be produced with the
//! same `--threads` the gate's current run uses.
//!
//! Usage: `perf_gate --baseline PATH --current PATH [--tolerance 0.25]
//! [--update]`. `--update` copies the current file over the baseline
//! instead of comparing — the documented way to refresh snapshots after an
//! intentional performance change (or a hardware change).
//!
//! Ratio metrics (`warm_speedup`, `speedup_vs_dense`) are largely
//! hardware-independent; absolute timings drift with the runner, which is
//! why the gate compares them with a generous default tolerance and why
//! baselines are refreshed with `--update` rather than edited by hand.

use ic_bench::arg_value;
use ic_bench::perf::{compare, Direction, Regression};
use std::process::ExitCode;

const METRICS: &[(&str, Direction)] = &[
    // Streaming bench.
    ("throughput_bins_per_sec", Direction::HigherIsBetter),
    ("warm_speedup", Direction::HigherIsBetter),
    ("service_bins_per_sec", Direction::HigherIsBetter),
    // Estimation bench.
    ("sparse_refine_secs_per_bin", Direction::LowerIsBetter),
    ("pcg_secs_per_bin", Direction::LowerIsBetter),
    ("pipeline_secs_per_bin", Direction::LowerIsBetter),
    ("parallel_pipeline_secs_per_bin", Direction::LowerIsBetter),
    ("speedup_vs_dense", Direction::HigherIsBetter),
    ("allocs_per_bin_warm", Direction::LowerIsBetter),
    (
        "instrumented_pipeline_secs_per_bin",
        Direction::LowerIsBetter,
    ),
    ("instrumented_allocs_per_bin_warm", Direction::LowerIsBetter),
    // Batched SoA pipeline throughput at the per-bin baseline width and
    // at a representative wide batch (key extraction is exact, so
    // `batch1` never aliases `batch16`).
    ("bins_per_sec_batch1", Direction::HigherIsBetter),
    ("bins_per_sec_batch16", Direction::HigherIsBetter),
    // Partition-aware multilevel solve on the same observations
    // (`--mode both`, the smoke default).
    ("multilevel_secs_per_bin", Direction::LowerIsBetter),
];

fn main() -> ExitCode {
    let Some(baseline_path) = arg_value("--baseline") else {
        eprintln!("perf_gate: --baseline PATH is required");
        return ExitCode::FAILURE;
    };
    let Some(current_path) = arg_value("--current") else {
        eprintln!("perf_gate: --current PATH is required");
        return ExitCode::FAILURE;
    };
    let tolerance: f64 = arg_value("--tolerance")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    let current = match std::fs::read_to_string(&current_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf_gate: cannot read current {current_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if std::env::args().any(|a| a == "--update") {
        if let Err(e) = std::fs::write(&baseline_path, &current) {
            eprintln!("perf_gate: cannot update baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("perf_gate: baseline {baseline_path} refreshed from {current_path}");
        return ExitCode::SUCCESS;
    }
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf_gate: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let regressions = compare(&baseline, &current, METRICS, tolerance);
    if regressions.is_empty() {
        println!(
            "perf_gate: OK — no metric in {current_path} regressed more than {:.0}% vs {baseline_path}",
            tolerance * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "perf_gate: FAIL — {} metric(s) regressed more than {:.0}% vs {baseline_path}:",
        regressions.len(),
        tolerance * 100.0
    );
    for Regression {
        key,
        index,
        baseline,
        current,
    } in &regressions
    {
        eprintln!("  {key}[{index}]: baseline {baseline:.6} -> current {current:.6}");
    }
    ExitCode::FAILURE
}
