//! Ablation — how process violations move the IC-over-gravity fit
//! improvement.
//!
//! The paper's Figure 3 numbers (Géant ≈ 20–25%, Totem ≈ 6–8%) sit between
//! two extremes: an exact IC process (IC wins by ~100%) and noise-dominated
//! data (neither model wins). This ablation sweeps the three violation
//! knobs of the generator — per-OD burst noise, spatial forward-ratio
//! jitter, and hot-potato asymmetry — and reports the resulting fit
//! improvement, quantifying which violations close the gap. It doubles as
//! the calibration evidence for the synthetic D1/D2 parameter choices
//! (documented in EXPERIMENTS.md).

use ic_bench::{fit_improvement_series, paper_fit_options, summarize};
use ic_core::fit_stable_fp;
use ic_flowsim::{sample_netflow, AggregateConfig, AggregateGenerator, NetflowConfig};
use ic_linalg::Matrix;
use ic_stats::dist::{LogNormal, Pareto, Sample};
use ic_stats::rng::derive_seed;
use ic_stats::{seeded_rng, DiurnalModel, DiurnalProfile};

fn build_measured(n: usize, bins: usize, agg: AggregateConfig, seed: u64) -> ic_core::TmSeries {
    let mut rng_p = seeded_rng(derive_seed(seed, 1));
    let raw: Vec<f64> = LogNormal::new(-4.3, 1.7).unwrap().sample_n(&mut rng_p, n);
    let mass: f64 = raw.iter().sum();
    let preference: Vec<f64> = raw.iter().map(|&v| v / mass).collect();
    let mut rng_b = seeded_rng(derive_seed(seed, 2));
    let bases: Vec<f64> = Pareto::new(1.0e8, 1.15).unwrap().sample_n(&mut rng_b, n);
    let base_ref = bases.iter().copied().fold(f64::MIN, f64::max);
    let profile = DiurnalProfile::european_5min();
    let mut activity = Matrix::zeros(n, bins);
    for (i, &base) in bases.iter().enumerate() {
        let model = DiurnalModel::with_aggregation_noise(profile, base, 0.25, base_ref).unwrap();
        let mut rng_node = seeded_rng(derive_seed(seed, 1000 + i as u64));
        for t in 0..bins {
            activity[(i, t)] = model.sample_at(t, &mut rng_node);
        }
    }
    let generator = AggregateGenerator::new(n, agg).unwrap();
    let truth = generator.generate(&activity, &preference, 300.0).unwrap();
    sample_netflow(
        &truth,
        NetflowConfig {
            seed: derive_seed(seed, 3),
            ..NetflowConfig::default()
        },
    )
    .unwrap()
}

fn improvement_for(agg: AggregateConfig, seed: u64) -> (f64, f64) {
    let tm = build_measured(22, 288, agg, seed);
    let fit = fit_stable_fp(&tm, paper_fit_options()).unwrap();
    let imp = fit_improvement_series(&tm, &fit);
    (summarize(&imp).mean, fit.params.f)
}

fn main() {
    let f0 = 0.234;
    println!("# Ablation: violation knobs vs fit improvement (22 nodes, 288 bins)");
    println!("# knob\tvalue\tmean_improvement_%\tfitted_f");

    for cv in [0.0, 0.12, 0.25, 0.4, 0.6, 0.9, 1.2] {
        let mut agg = AggregateConfig::realistic(f0, 7);
        agg.od_noise_cv = cv;
        let (imp, f) = improvement_for(agg, 7);
        println!("od_noise_cv\t{cv}\t{imp:.1}\t{f:.3}");
    }
    for std in [0.0, 0.03, 0.07, 0.12, 0.2] {
        let mut agg = AggregateConfig::realistic(f0, 7);
        agg.f_spatial_std = std;
        let (imp, f) = improvement_for(agg, 7);
        println!("f_spatial_std\t{std}\t{imp:.1}\t{f:.3}");
    }
    for asym in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let mut agg = AggregateConfig::realistic(f0, 7);
        agg.asymmetry_fraction = asym;
        let (imp, f) = improvement_for(agg, 7);
        println!("asymmetry\t{asym}\t{imp:.1}\t{f:.3}");
    }
}
