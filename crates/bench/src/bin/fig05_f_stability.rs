//! Figure 5 — optimal f values over consecutive weeks (paper Section 5.2).
//!
//! Fits the stable-fP model to each of seven consecutive Totem weeks and
//! prints the per-week optimal f. Paper shape: f ≈ 0.2, nearly constant
//! across all seven weeks.

use ic_bench::{d2_at, fit_weeks, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 5: optimal f over 7 consecutive Totem weeks ({scale:?})");
    let ds = d2_at(scale, 7, 20041114);
    let weeks = ds.measured_weeks().expect("weeks");
    let fits = fit_weeks(&weeks);
    println!("# week\tf");
    for (w, fit) in fits.iter().enumerate() {
        println!("{}\t{:.4}", w + 1, fit.params.f);
    }
    let fs: Vec<f64> = fits.iter().map(|f| f.params.f).collect();
    let mean = fs.iter().sum::<f64>() / fs.len() as f64;
    let max_delta = fs
        .windows(2)
        .map(|w| (w[1] - w[0]).abs())
        .fold(0.0_f64, f64::max);
    println!("# mean f = {mean:.4}, max week-over-week delta = {max_delta:.4}");
    println!(
        "# ground-truth generating aggregate f = {:.4}",
        ds.ground_truth.aggregate_f
    );
}
