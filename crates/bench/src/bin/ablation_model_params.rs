//! Ablation — sensitivity of the IC-vs-gravity gap to the model
//! parameters themselves.
//!
//! Two sweeps on clean synthetic data (no measurement noise, so the effect
//! of the parameter is isolated):
//!
//! * **f sweep** — under the IC model the TM is `f·A Pᵀ + (1−f)·P Aᵀ`:
//!   *rank one* (hence exactly gravity-representable) at `f ∈ {0, 1}` and
//!   maximally rank-two near `f = 0.5`. Gravity therefore fails **worst
//!   for symmetric bidirectional traffic** — precisely why the paper's
//!   Figure 2 example (equal forward/reverse volume) breaks packet
//!   independence so dramatically, and why connection-dominated traffic
//!   at any interior `f` defeats the gravity model.
//! * **preference-tail sweep** — lognormal σ controls how concentrated
//!   service popularity is; heavier tails concentrate reverse traffic and
//!   widen the gap.
//!
//! Thin wrapper over `ic-experiment`: every sweep point is a gravity-gap
//! scenario and the whole grid runs in parallel (equivalence with the
//! historical wiring is locked by `tests/equivalence.rs`).

use ic_core::SynthConfig;
use ic_experiment::{Runner, Scenario, Task};

const F_SWEEP: [f64; 10] = [0.05, 0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.75, 0.95];
const SIGMA_SWEEP: [f64; 6] = [0.3, 0.8, 1.2, 1.7, 2.2, 2.8];

fn gap_scenario(name: String, f: f64, sigma: f64) -> Scenario {
    Scenario::builder(name)
        .synth(
            SynthConfig::geant_like(42)
                .with_bins(96)
                .with_f(f)
                .with_preference_sigma(sigma)
                .with_noise_cv(0.0), // isolate the structural effect
        )
        .task(Task::GravityGap)
        .build()
        .expect("valid scenario")
}

fn main() {
    println!("# Ablation: gravity error on exact IC data (22 nodes, 96 bins, noise-free)");
    println!("# the IC fit error is ~0 on this data, so gravity error = the whole gap");
    let mut scenarios: Vec<Scenario> = F_SWEEP
        .into_iter()
        .map(|f| gap_scenario(format!("{f}"), f, 1.7))
        .collect();
    scenarios.extend(
        SIGMA_SWEEP
            .into_iter()
            .map(|sigma| gap_scenario(format!("{sigma}"), 0.25, sigma)),
    );
    let report = Runner::new().run(&scenarios).expect("scenarios run");

    println!("\n# f sweep (preference sigma = 1.7)");
    println!("# f\tgravity_rel_l2");
    for s in &report.scenarios[..F_SWEEP.len()] {
        println!("{}\t{:.4}", s.name, s.mean_gravity_error());
    }
    println!("\n# preference-tail sweep (f = 0.25)");
    println!("# sigma\tgravity_rel_l2");
    for s in &report.scenarios[F_SWEEP.len()..] {
        println!("{}\t{:.4}", s.name, s.mean_gravity_error());
    }
}
