//! Ablation — sensitivity of the IC-vs-gravity gap to the model
//! parameters themselves.
//!
//! Two sweeps on clean synthetic data (no measurement noise, so the effect
//! of the parameter is isolated):
//!
//! * **f sweep** — under the IC model the TM is `f·A Pᵀ + (1−f)·P Aᵀ`:
//!   *rank one* (hence exactly gravity-representable) at `f ∈ {0, 1}` and
//!   maximally rank-two near `f = 0.5`. Gravity therefore fails **worst
//!   for symmetric bidirectional traffic** — precisely why the paper's
//!   Figure 2 example (equal forward/reverse volume) breaks packet
//!   independence so dramatically, and why connection-dominated traffic
//!   at any interior `f` defeats the gravity model.
//! * **preference-tail sweep** — lognormal σ controls how concentrated
//!   service popularity is; heavier tails concentrate reverse traffic and
//!   widen the gap.

use ic_core::{generate_synthetic, gravity_predict, mean_rel_l2, SynthConfig};

fn gravity_error(f: f64, sigma: f64, seed: u64) -> f64 {
    let mut cfg = SynthConfig::geant_like(seed);
    cfg.bins = 96;
    cfg.f = f;
    cfg.preference_sigma = sigma;
    cfg.noise_cv = 0.0; // isolate the structural effect
    let out = generate_synthetic(&cfg).expect("generate");
    let grav = gravity_predict(&out.series).expect("gravity");
    mean_rel_l2(&out.series, &grav).expect("error")
}

fn main() {
    println!("# Ablation: gravity error on exact IC data (22 nodes, 96 bins, noise-free)");
    println!("# the IC fit error is ~0 on this data, so gravity error = the whole gap");
    println!("\n# f sweep (preference sigma = 1.7)");
    println!("# f\tgravity_rel_l2");
    for f in [0.05, 0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.75, 0.95] {
        println!("{f}\t{:.4}", gravity_error(f, 1.7, 42));
    }
    println!("\n# preference-tail sweep (f = 0.25)");
    println!("# sigma\tgravity_rel_l2");
    for sigma in [0.3, 0.8, 1.2, 1.7, 2.2, 2.8] {
        println!("{sigma}\t{:.4}", gravity_error(0.25, sigma, 42));
    }
}
