//! Figure 7 — CCDF of fitted preference values against exponential and
//! lognormal MLE fits (paper Section 5.3).
//!
//! Paper shape: the empirical CCDF is long-tailed; the lognormal fit
//! tracks the tail far better than the exponential; reported lognormal
//! MLE ≈ (μ −4.3, σ 1.7).

use ic_bench::{d1_at, d2_at, fit_weeks, Scale};
use ic_stats::{empirical_ccdf, fit_exponential_mle, fit_lognormal_mle, ks_distance};

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 7: CCDF of optimal P values ({scale:?})");
    for (panel, name) in [("a", "geant-d1"), ("b", "totem-d2")] {
        let ds = match name {
            "geant-d1" => d1_at(scale, 1, 1),
            _ => d2_at(scale, 1, 20041114),
        };
        let weeks = ds.measured_weeks().expect("weeks");
        let fit = &fit_weeks(&weeks)[0];
        let p = &fit.params.preference;
        // Zero-preference nodes carry no tail information; both analytic
        // models have support on x > 0.
        let positive: Vec<f64> = p.iter().copied().filter(|&v| v > 0.0).collect();
        let ln = fit_lognormal_mle(&positive).expect("lognormal MLE");
        let ex = fit_exponential_mle(&positive).expect("exponential MLE");
        let ln_dist = ln.distribution().expect("valid fit");
        let ex_dist = ex.distribution().expect("valid fit");
        let ks_ln = ks_distance(&positive, |x| ln_dist.ccdf(x)).expect("ks");
        let ks_ex = ks_distance(&positive, |x| ex_dist.ccdf(x)).expect("ks");

        println!("\n## Figure 7({panel}): {name}");
        println!(
            "# lognormal MLE: mu={:.2} sigma={:.2} (paper: mu~-4.3 sigma~1.7), KS={ks_ln:.3}",
            ln.mu, ln.sigma
        );
        println!("# exponential MLE: rate={:.2}, KS={ks_ex:.3}", ex.rate);
        println!(
            "# lognormal fits better: {}",
            if ks_ln < ks_ex { "yes" } else { "NO" }
        );
        println!("# P\tempirical_ccdf\tlognormal_ccdf\texponential_ccdf");
        let ccdf = empirical_ccdf(&positive).expect("ccdf");
        for &(x, e) in ccdf.points() {
            println!(
                "{x:.6}\t{e:.4}\t{:.4}\t{:.4}",
                ln_dist.ccdf(x),
                ex_dist.ccdf(x)
            );
        }
    }
}
