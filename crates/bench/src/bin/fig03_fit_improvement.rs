//! Figure 3 — temporal % improvement of the stable-fP IC fit over the
//! gravity model (paper Section 5.1).
//!
//! One week each of D1 (Géant, 5-min bins) and D2 (Totem, 15-min bins);
//! the stable-fP model is fitted by the Section 5.1 program and compared
//! against the gravity prediction per bin. Paper shape: Géant ≈ 20–25%
//! improvement, Totem ≈ 6–8%.

use ic_bench::{
    d1_at, d2_at, fit_improvement_series, fit_weeks, print_series, print_summary, summarize, Scale,
};

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 3: fit improvement of stable-fP IC over gravity ({scale:?})");

    for (panel, name) in [("a", "geant-d1"), ("b", "totem-d2")] {
        let ds = match name {
            "geant-d1" => d1_at(scale, 1, 1),
            _ => d2_at(scale, 1, 20041114),
        };
        let weeks = ds.measured_weeks().expect("weeks");
        let fits = fit_weeks(&weeks);
        let imp = fit_improvement_series(&weeks[0], &fits[0]);
        println!(
            "\n## Figure 3({panel}): {name}, fitted f = {:.3}",
            fits[0].params.f
        );
        print_summary(&format!("improvement_{name}"), &summarize(&imp));
        print_series(&format!("improvement_{name}"), &imp, 24);
    }
}
