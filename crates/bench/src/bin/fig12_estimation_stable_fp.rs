//! Figure 12 — TM-estimation improvement with the stable-fP prior:
//! `f` and `{P_i}` calibrated on a *previous* week, activities estimated
//! from ingress/egress counts via Eq. 7–9 (paper Section 6.2).
//!
//! Géant calibrates on the week immediately before; Totem on the week two
//! weeks back (matching the paper's setup). Paper shape: 10–20%
//! improvement for both.
//!
//! Thin wrapper over `ic-experiment` (see `tests/equivalence.rs`).

use ic_bench::{
    d1_config, d2_config, paper_fit_options, print_series, print_summary, summarize, Scale,
};
use ic_experiment::{PriorStrategy, Runner, Scenario};

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 12: estimation improvement, f and P from a previous week ({scale:?})");
    let scenarios = vec![
        Scenario::builder("Figure 12(a): geant-d1 (calibrated on week 1, estimated week 2)")
            .dataset_d1(d1_config(scale, 2, 1))
            .geant22()
            .target_week(1)
            .prior(PriorStrategy::StableFpFromWeek {
                calibration_week: 0,
            })
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .expect("valid scenario"),
        Scenario::builder("Figure 12(b): totem-d2 (calibrated on week 1, estimated week 3)")
            .dataset_d2(d2_config(scale, 3, 20041114))
            .totem23()
            .target_week(2)
            .prior(PriorStrategy::StableFpFromWeek {
                calibration_week: 0,
            })
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .expect("valid scenario"),
    ];
    let report = Runner::new().run(&scenarios).expect("scenarios run");
    for s in &report.scenarios {
        println!("\n## {}", s.name);
        print_summary("improvement", &summarize(&s.improvement));
        print_series("improvement", &s.improvement, 24);
    }
}
