//! Figure 12 — TM-estimation improvement with the stable-fP prior:
//! `f` and `{P_i}` calibrated on a *previous* week, activities estimated
//! from ingress/egress counts via Eq. 7–9 (paper Section 6.2).
//!
//! Géant calibrates on the week immediately before; Totem on the week two
//! weeks back (matching the paper's setup). Paper shape: 10–20%
//! improvement for both.

use ic_bench::{
    d1_at, d2_at, estimation_comparison, fit_weeks, print_series, print_summary, summarize, Scale,
};
use ic_estimation::StableFpPrior;

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 12: estimation improvement, f and P from a previous week ({scale:?})");
    // (panel, dataset, weeks to build, calibration week index, target week index)
    for (panel, name, weeks_n, cal, target) in [
        ("a", "geant-d1", 2usize, 0usize, 1usize),
        ("b", "totem-d2", 3, 0, 2),
    ] {
        let ds = match name {
            "geant-d1" => d1_at(scale, weeks_n, 1),
            _ => d2_at(scale, weeks_n, 20041114),
        };
        let weeks = ds.measured_weeks().expect("weeks");
        let fits = fit_weeks(&weeks[cal..=cal]);
        let prior = StableFpPrior {
            f: fits[0].params.f,
            preference: fits[0].params.preference.clone(),
        };
        let cmp = estimation_comparison(name, &weeks[target], &prior);
        println!(
            "\n## Figure 12({panel}): {name} (calibrated on week {}, estimated week {})",
            cal + 1,
            target + 1
        );
        print_summary("improvement", &summarize(&cmp.improvement));
        print_series("improvement", &cmp.improvement, 24);
    }
}
