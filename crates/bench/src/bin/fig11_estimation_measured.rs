//! Figure 11 — TM-estimation improvement over the gravity prior when all
//! IC parameters are measured (paper Section 6.1).
//!
//! The "thought experiment" scenario: `f`, `{P_i}`, `{A_i(t)}` come from a
//! Section 5.1 fit of the same week; both priors are refined by the same
//! tomogravity + IPF steps. Paper shape: Géant 10–20%, Totem 20–30%.

use ic_bench::{
    d1_at, d2_at, estimation_comparison, fit_weeks, print_series, print_summary, summarize, Scale,
};
use ic_estimation::MeasuredIcPrior;

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 11: estimation improvement over gravity, all params measured ({scale:?})");
    for (panel, name) in [("a", "geant-d1"), ("b", "totem-d2")] {
        let ds = match name {
            "geant-d1" => d1_at(scale, 1, 1),
            _ => d2_at(scale, 1, 20041114),
        };
        let weeks = ds.measured_weeks().expect("weeks");
        let fit = &fit_weeks(&weeks)[0];
        let prior = MeasuredIcPrior {
            params: fit.params.clone(),
        };
        let cmp = estimation_comparison(name, &weeks[0], &prior);
        println!("\n## Figure 11({panel}): {name}");
        print_summary("improvement", &summarize(&cmp.improvement));
        print_series("improvement", &cmp.improvement, 24);
    }
}
