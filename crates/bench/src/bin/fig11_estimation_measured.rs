//! Figure 11 — TM-estimation improvement over the gravity prior when all
//! IC parameters are measured (paper Section 6.1).
//!
//! The "thought experiment" scenario: `f`, `{P_i}`, `{A_i(t)}` come from a
//! Section 5.1 fit of the same week; both priors are refined by the same
//! tomogravity + IPF steps. Paper shape: Géant 10–20%, Totem 20–30%.
//!
//! Thin wrapper over `ic-experiment`: both panels are declared as
//! scenarios and run in parallel (equivalence with the historical wiring
//! is locked by `tests/equivalence.rs`).

use ic_bench::{
    d1_config, d2_config, paper_fit_options, print_series, print_summary, summarize, Scale,
};
use ic_experiment::{PriorStrategy, Runner, Scenario};

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 11: estimation improvement over gravity, all params measured ({scale:?})");
    let scenarios = vec![
        Scenario::builder("Figure 11(a): geant-d1")
            .dataset_d1(d1_config(scale, 1, 1))
            .geant22()
            .prior(PriorStrategy::MeasuredIc)
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .expect("valid scenario"),
        Scenario::builder("Figure 11(b): totem-d2")
            .dataset_d2(d2_config(scale, 1, 20041114))
            .totem23()
            .prior(PriorStrategy::MeasuredIc)
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .expect("valid scenario"),
    ];
    let report = Runner::new().run(&scenarios).expect("scenarios run");
    for s in &report.scenarios {
        println!("\n## {}", s.name);
        print_summary("improvement", &summarize(&s.improvement));
        print_series("improvement", &s.improvement, 24);
    }
}
