//! Figure 13 — TM-estimation improvement with the stable-f prior: only
//! `f` is known; per-bin activities and preferences come from the marginal
//! inversion Eq. 11–12 (paper Section 6.3).
//!
//! Paper shape: Géant ≈ 8%, Totem 1–2% — still an improvement, with much
//! less side information than Figure 12.
//!
//! Thin wrapper over `ic-experiment` (see `tests/equivalence.rs`).

use ic_bench::{
    d1_config, d2_config, paper_fit_options, print_series, print_summary, summarize, Scale,
};
use ic_experiment::{PriorStrategy, Runner, Scenario};

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 13: estimation improvement, only f known ({scale:?})");
    let scenarios = vec![
        Scenario::builder("Figure 13(a): geant-d1 (f from week 1, estimated week 2)")
            .dataset_d1(d1_config(scale, 2, 1))
            .geant22()
            .target_week(1)
            .prior(PriorStrategy::StableFFromWeek {
                calibration_week: 0,
            })
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .expect("valid scenario"),
        Scenario::builder("Figure 13(b): totem-d2 (f from week 1, estimated week 3)")
            .dataset_d2(d2_config(scale, 3, 20041114))
            .totem23()
            .target_week(2)
            .prior(PriorStrategy::StableFFromWeek {
                calibration_week: 0,
            })
            .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
            .build()
            .expect("valid scenario"),
    ];
    let report = Runner::new().run(&scenarios).expect("scenarios run");
    for s in &report.scenarios {
        println!("\n## {}", s.name);
        print_summary("improvement", &summarize(&s.improvement));
        print_series("improvement", &s.improvement, 24);
    }
}
