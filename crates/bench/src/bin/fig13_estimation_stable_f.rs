//! Figure 13 — TM-estimation improvement with the stable-f prior: only
//! `f` is known; per-bin activities and preferences come from the marginal
//! inversion Eq. 11–12 (paper Section 6.3).
//!
//! Paper shape: Géant ≈ 8%, Totem 1–2% — still an improvement, with much
//! less side information than Figure 12.

use ic_bench::{
    d1_at, d2_at, estimation_comparison, fit_weeks, print_series, print_summary, summarize, Scale,
};
use ic_estimation::StableFPrior;

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 13: estimation improvement, only f known ({scale:?})");
    for (panel, name, weeks_n, cal, target) in [
        ("a", "geant-d1", 2usize, 0usize, 1usize),
        ("b", "totem-d2", 3, 0, 2),
    ] {
        let ds = match name {
            "geant-d1" => d1_at(scale, weeks_n, 1),
            _ => d2_at(scale, weeks_n, 20041114),
        };
        let weeks = ds.measured_weeks().expect("weeks");
        // Only f is carried over from the calibration week.
        let fits = fit_weeks(&weeks[cal..=cal]);
        let prior = StableFPrior {
            f: fits[0].params.f,
        };
        let cmp = estimation_comparison(name, &weeks[target], &prior);
        println!(
            "\n## Figure 13({panel}): {name} (f from week {}, estimated week {})",
            cal + 1,
            target + 1
        );
        print_summary("improvement", &summarize(&cmp.improvement));
        print_series("improvement", &cmp.improvement, 24);
    }
}
