//! Figure 6 — optimal preference values across weeks (paper Section 5.3).
//!
//! Fits the stable-fP model per week (Géant: 3 weeks, Totem: 7 weeks) and
//! prints the per-node preference for every week side by side. Paper
//! shape: per-node values overlay almost perfectly week over week; a few
//! nodes are up to ~10x larger than typical.

use ic_bench::{d1_at, d2_at, fit_weeks, Scale};
use ic_core::stability::WeeklyFits;

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 6: optimal P values over time ({scale:?})");
    for (panel, name, weeks_n) in [("a", "geant-d1", 3usize), ("b", "totem-d2", 7usize)] {
        let ds = match name {
            "geant-d1" => d1_at(scale, weeks_n, 1),
            _ => d2_at(scale, weeks_n, 20041114),
        };
        let weeks = ds.measured_weeks().expect("weeks");
        let fits = fit_weeks(&weeks);
        println!("\n## Figure 6({panel}): {name}");
        print!("# node");
        for w in 1..=fits.len() {
            print!("\twk{w}");
        }
        println!("\ttruth");
        let n = ds.descriptor.nodes;
        for i in 0..n {
            print!("{i}");
            for fit in &fits {
                print!("\t{:.4}", fit.params.preference[i]);
            }
            println!("\t{:.4}", ds.ground_truth.preference[i]);
        }
        let weekly = WeeklyFits { fits };
        let min_corr = weekly
            .preference_min_correlation()
            .expect("at least two weeks");
        println!("# min pairwise week correlation = {min_corr:.4} (1.0 = perfectly stable)");
    }
}
