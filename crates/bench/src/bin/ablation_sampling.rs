//! Ablation — NetFlow sampling-rate sweep.
//!
//! The paper's datasets were sampled at 1/1000; this ablation asks how the
//! Figure 3 comparison would have looked at other rates (1/100 … 1/10000):
//! how much of the measured IC-vs-gravity gap is real structure, and how
//! much is eaten by measurement noise as sampling coarsens.

use ic_bench::{fit_improvement_series, paper_fit_options, summarize};
use ic_core::fit_stable_fp;
use ic_datasets::{build_d1, GeantConfig};
use ic_flowsim::NetflowConfig;

fn main() {
    println!("# Ablation: sampling rate vs fit improvement (22 nodes, 288-bin week)");
    println!("# rate\tmean_improvement_%\tfitted_f\tfit_err\tgravity_err");
    for denom in [1.0, 100.0, 1000.0, 3000.0, 10000.0] {
        let cfg = GeantConfig {
            weeks: 1,
            bins_per_week: 288,
            seed: 1,
            sampling: if denom <= 1.0 {
                None
            } else {
                Some(NetflowConfig {
                    sampling_rate: 1.0 / denom,
                    ..NetflowConfig::default()
                })
            },
        };
        let ds = build_d1(&cfg).expect("build");
        let week = &ds.measured_weeks().expect("weeks")[0];
        let fit = fit_stable_fp(week, paper_fit_options()).expect("fit");
        let imp = fit_improvement_series(week, &fit);
        let grav = ic_core::gravity_predict(week).expect("gravity");
        let g_err = ic_core::mean_rel_l2(week, &grav).expect("err");
        let label = if denom <= 1.0 {
            "unsampled".to_string()
        } else {
            format!("1/{denom:.0}")
        };
        println!(
            "{label}\t{:.1}\t{:.3}\t{:.3}\t{:.3}",
            summarize(&imp).mean,
            fit.params.f,
            fit.final_objective(),
            g_err
        );
    }
}
