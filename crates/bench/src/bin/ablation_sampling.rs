//! Ablation — NetFlow sampling-rate sweep.
//!
//! The paper's datasets were sampled at 1/1000; this ablation asks how the
//! Figure 3 comparison would have looked at other rates (1/100 … 1/10000):
//! how much of the measured IC-vs-gravity gap is real structure, and how
//! much is eaten by measurement noise as sampling coarsens.
//!
//! Thin wrapper over `ic-experiment`: each rate is a fit-improvement
//! scenario and the whole sweep runs in parallel (equivalence with the
//! historical wiring is locked by `tests/equivalence.rs`).

use ic_bench::paper_fit_options;
use ic_datasets::GeantConfig;
use ic_experiment::{Runner, Scenario, Task};
use ic_flowsim::NetflowConfig;

fn main() {
    println!("# Ablation: sampling rate vs fit improvement (22 nodes, 288-bin week)");
    println!("# rate\tmean_improvement_%\tfitted_f\tfit_err\tgravity_err");
    let scenarios: Vec<Scenario> = [1.0, 100.0, 1000.0, 3000.0, 10000.0]
        .into_iter()
        .map(|denom| {
            let cfg = GeantConfig {
                weeks: 1,
                bins_per_week: 288,
                seed: 1,
                sampling: (denom > 1.0).then(|| NetflowConfig {
                    sampling_rate: 1.0 / denom,
                    ..NetflowConfig::default()
                }),
            };
            let label = if denom <= 1.0 {
                "unsampled".to_string()
            } else {
                format!("1/{denom:.0}")
            };
            Scenario::builder(label)
                .dataset_d1(cfg)
                .task(Task::FitImprovement)
                .config(ic_estimation::EstimationConfig::new().with_fit(paper_fit_options()))
                .build()
                .expect("valid scenario")
        })
        .collect();
    let report = Runner::new().run(&scenarios).expect("scenarios run");
    for s in &report.scenarios {
        println!(
            "{}\t{:.1}\t{:.3}\t{:.3}\t{:.3}",
            s.name,
            s.mean_improvement,
            s.fitted_f.expect("fit-improvement reports f"),
            s.fit_objective
                .expect("fit-improvement reports the objective"),
            s.mean_gravity_error()
        );
    }
}
