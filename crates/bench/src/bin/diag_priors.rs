//! Diagnostic: per-seed landscape of the Figure 3 / 11 / 12 / 13 numbers
//! on the real dataset builders (smoke scale).
use ic_bench::{d1_at, d2_at, fit_improvement_series, fit_weeks, summarize, Scale};
use ic_core::mean_rel_l2;
use ic_estimation::{
    EstimationPipeline, GravityPrior, MeasuredIcPrior, ObservationModel, StableFPrior,
    StableFpPrior, TmPrior,
};
use ic_topology::{geant22, totem23, RoutingScheme};

fn main() {
    println!("ds\tseed\tfig3\tfig11\tfig12\tfig13\tf_hat");
    for seed in [20041114u64, 1, 7, 41, 99, 123, 2004, 555] {
        for ds_name in ["d1", "d2"] {
            let ds = if ds_name == "d1" {
                d1_at(Scale::Smoke, 2, seed)
            } else {
                d2_at(Scale::Smoke, 2, seed)
            };
            let weeks = ds.measured_weeks().unwrap();
            let fits = fit_weeks(&weeks);
            let fig3 = summarize(&fit_improvement_series(&weeks[1], &fits[1])).mean;
            let topo = if ds_name == "d1" {
                geant22()
            } else {
                totem23()
            };
            let om = ObservationModel::new(&topo, RoutingScheme::Ecmp).unwrap();
            let obs = om.observe(&weeks[1]).unwrap();
            let pipe = EstimationPipeline::new(om);
            let post = |p: &dyn TmPrior| {
                let est = pipe.estimate(p, &obs).unwrap();
                mean_rel_l2(&weeks[1], &est).unwrap()
            };
            let g = post(&GravityPrior);
            let m = post(&MeasuredIcPrior {
                params: fits[1].params.clone(),
            });
            let fp = post(&StableFpPrior {
                f: fits[0].params.f,
                preference: fits[0].params.preference.clone(),
            });
            let fo = post(&StableFPrior {
                f: fits[0].params.f,
            });
            println!(
                "{ds_name}\t{seed}\t{fig3:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.3}",
                100.0 * (g - m) / g,
                100.0 * (g - fp) / g,
                100.0 * (g - fo) / g,
                fits[1].params.f
            );
        }
    }
}
