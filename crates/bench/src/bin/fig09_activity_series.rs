//! Figure 9 — fitted activity time series for the largest, a medium, and
//! the smallest node (paper Section 5.4).
//!
//! Paper shape: strong daily periodicity, reduced weekend activity, and a
//! sharper pattern at higher aggregation levels.

use ic_bench::{d1_at, d2_at, fit_weeks, print_series, Scale};
use ic_core::stability::activity_extremes;

fn main() {
    let scale = Scale::from_args();
    println!("# Figure 9: A_i(t) time series, largest/medium/smallest node ({scale:?})");
    for (panel, name) in [("a", "geant-d1"), ("b", "totem-d2")] {
        let ds = match name {
            "geant-d1" => d1_at(scale, 1, 1),
            _ => d2_at(scale, 1, 20041114),
        };
        let weeks = ds.measured_weeks().expect("weeks");
        let fit = &fit_weeks(&weeks)[0];
        println!("\n## Figure 9({panel}): {name}");
        let labels = ["largest", "medium", "smallest"];
        for (label, (idx, mean, series)) in labels.iter().zip(activity_extremes(fit)) {
            println!("# {label}: node {idx}, mean A = {mean:.3e} bytes/bin");
            print_series(&format!("A_node{idx}_{label}"), &series, 16);
        }
    }
}
