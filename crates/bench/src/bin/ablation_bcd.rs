//! Ablation — convergence profile of the block-coordinate fitting program
//! (DESIGN.md's replacement for the paper's Matlab solver).
//!
//! Reports the objective after each sweep on (a) exact IC data, where the
//! iteration converges linearly to machine precision, and (b) the noisy
//! D1 week, where it flattens at the noise floor within a handful of
//! sweeps — the empirical justification for the default sweep budget.
//! Also compares the two objective scalarizations (weighted SSE vs the
//! paper's literal ΣRelL2 via IRLS).

use ic_bench::paper_fit_options;
use ic_core::{fit_stable_fp, generate_synthetic, Objective, SynthConfig};
use ic_datasets::{build_d1, GeantConfig};

fn main() {
    println!("# Ablation: BCD convergence profile");

    // (a) Exact IC data.
    let mut cfg = SynthConfig::geant_like(5);
    cfg.bins = 96;
    cfg.noise_cv = 0.0;
    let clean = generate_synthetic(&cfg).expect("generate").series;
    let opts = paper_fit_options().with_max_sweeps(15).with_tolerance(0.0);
    let fit = fit_stable_fp(&clean, opts).expect("fit");
    println!("\n## exact IC data (22 nodes, 96 bins)");
    println!("# sweep\tmean_rel_l2");
    for (k, obj) in fit.objective_history.iter().enumerate() {
        println!("{}\t{obj:.3e}", k + 1);
    }

    // (b) Noisy measured week.
    let ds = build_d1(&GeantConfig {
        weeks: 1,
        bins_per_week: 288,
        seed: 1,
        ..GeantConfig::default()
    })
    .expect("build");
    let week = &ds.measured_weeks().expect("weeks")[0];
    println!("\n## measured D1 week (1/1000 sampling, process noise)");
    for objective in [Objective::WeightedSse, Objective::SumRelL2] {
        let opts = paper_fit_options()
            .with_max_sweeps(12)
            .with_tolerance(0.0)
            .with_objective(objective);
        let fit = fit_stable_fp(week, opts).expect("fit");
        println!("# objective = {objective:?}");
        println!("# sweep\tmean_rel_l2\tf");
        for (k, obj) in fit.objective_history.iter().enumerate() {
            println!("{}\t{obj:.5}\t", k + 1);
        }
        println!(
            "# final f = {:.4}, converged objective = {:.5}",
            fit.params.f,
            fit.final_objective()
        );
    }
}
