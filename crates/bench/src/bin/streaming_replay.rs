//! Streaming replay benchmark — the perf baseline of the `ic-stream`
//! subsystem.
//!
//! Replays a synthetic diurnal stream through the warm-started online
//! estimator, then times warm vs cold per-window refits head-to-head, and
//! emits a machine-readable `BENCH_streaming.json` (throughput in
//! bins/sec, warm vs cold fit time and sweep counts, and multi-tenant
//! `ic-serve` ingest+poll throughput) so the perf trajectory is tracked
//! across commits. The replay runs through the
//! shared `ic-engine` worker pool (`--threads`, default: machine
//! parallelism); the thread count and engine shard size are recorded in
//! the JSON metadata and never change the replayed results.
//!
//! Usage: `streaming_replay [--scale smoke|full] [--threads N] [--out PATH]`.

use ic_bench::{arg_value, json_f, out_path, Scale};
use ic_core::{fit_stable_fp, generate_synthetic, FitOptions, SynthConfig, TmSeries};
use ic_engine::{default_threads, Engine};
use ic_obs::{MetricsRegistry, Span};
use ic_serve::{Service, TenantSpec};
use ic_stream::{replay_fit_with, ReplayOptions, SyntheticStream, Windower};
use ic_topology::{RoutingScheme, Topology};
use std::time::Instant;

struct BenchConfig {
    nodes: usize,
    window_bins: usize,
    windows: usize,
}

/// Ring-with-chord tenant topology for the service path (matches the
/// shape `ic-serve`'s own tests benchmark against).
fn ring_topology(name: &str, n: usize) -> Topology {
    let mut t = Topology::new(name);
    let ids: Vec<usize> = (0..n)
        .map(|k| t.add_node(format!("n{k}")).expect("node"))
        .collect();
    for k in 0..n {
        t.add_symmetric_link(ids[k], ids[(k + 1) % n], 1.0, 1e12)
            .expect("link");
    }
    t.add_symmetric_link(ids[0], ids[n / 2], 1.0, 1e12)
        .expect("chord");
    t
}

fn bench_config(scale: Scale) -> BenchConfig {
    match scale {
        // One Géant-sized week of 5-minute bins in day windows.
        Scale::Full => BenchConfig {
            nodes: 22,
            window_bins: 288,
            windows: 7,
        },
        Scale::Smoke => BenchConfig {
            nodes: 6,
            window_bins: 24,
            windows: 8,
        },
    }
}

fn main() {
    let scale = Scale::from_args();
    let cfg = bench_config(scale);
    let bins = cfg.window_bins * cfg.windows;
    let threads: usize = arg_value("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_threads);
    let engine = Engine::new().with_threads(threads);
    println!(
        "# streaming_replay ({scale:?}): {} nodes, {} windows x {} bins, {} threads",
        cfg.nodes,
        cfg.windows,
        cfg.window_bins,
        engine.threads()
    );
    let synth = SynthConfig::geant_like(20060419)
        .with_nodes(cfg.nodes)
        .with_bins(bins);

    // End-to-end warm replay: ingestion + windowing + fits + gravity
    // baseline + forecasting + drift detection. Timed as the minimum over
    // a few repetitions (the replay is deterministic, so only the clock
    // varies) to keep smoke-scale numbers stable for the CI perf gate.
    let reps = match scale {
        Scale::Smoke => 7,
        Scale::Full => 1,
    };
    let options = ReplayOptions::default().with_window_bins(cfg.window_bins);
    let mut replay_secs = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let mut stream = SyntheticStream::new(synth.clone()).expect("valid synth config");
        let start = Instant::now();
        report = Some(replay_fit_with(&mut stream, &options, &engine).expect("replay"));
        replay_secs = replay_secs.min(start.elapsed().as_secs_f64());
    }
    let report = report.expect("at least one replay rep");
    let throughput = report.total_bins() as f64 / replay_secs;
    println!("# replay: {replay_secs:.3}s, {throughput:.0} bins/sec");

    // Head-to-head per-window refits: cold (Eq. 11-12 init) vs warm
    // (previous window's optimum). Window 0 is cold either way and is
    // excluded from the means.
    let mut source = SyntheticStream::new(synth).expect("valid synth config");
    let windows = Windower::tumbling(cfg.window_bins)
        .expect("valid window")
        .take_windows(&mut source, None)
        .expect("windows");
    assert_eq!(windows.len(), cfg.windows);
    let mut previous = None;
    let mut cold_secs = 0.0;
    let mut warm_secs = 0.0;
    let mut cold_sweeps = 0usize;
    let mut warm_sweeps = 0usize;
    let mut measured = 0usize;
    println!("# window\tcold_s\twarm_s\tcold_sweeps\twarm_sweeps\tf");
    for w in &windows {
        let mut cold_t = f64::INFINITY;
        let mut cold = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            cold = Some(fit_stable_fp(&w.series, FitOptions::default()).expect("cold fit"));
            cold_t = cold_t.min(t0.elapsed().as_secs_f64());
        }
        let cold = cold.expect("at least one cold rep");
        if let Some(prev) = &previous {
            let mut warm_t = f64::INFINITY;
            let mut warm = None;
            for _ in 0..reps {
                let t1 = Instant::now();
                warm = Some(
                    fit_stable_fp(&w.series, FitOptions::default().with_initial(prev))
                        .expect("warm fit"),
                );
                warm_t = warm_t.min(t1.elapsed().as_secs_f64());
            }
            let warm = warm.expect("at least one warm rep");
            println!(
                "{}\t{:.4}\t{:.4}\t{}\t{}\t{:.4}",
                w.index,
                cold_t,
                warm_t,
                cold.objective_history.len(),
                warm.objective_history.len(),
                warm.params.f
            );
            cold_secs += cold_t;
            warm_secs += warm_t;
            cold_sweeps += cold.objective_history.len();
            warm_sweeps += warm.objective_history.len();
            measured += 1;
            previous = Some(warm);
        } else {
            println!(
                "{}\t{:.4}\t-\t{}\t-\t{:.4}",
                w.index,
                cold_t,
                cold.objective_history.len(),
                cold.params.f
            );
            previous = Some(cold);
        }
    }
    // Multi-tenant service path: the same per-window work routed through
    // the `ic-serve` batching core — bin-by-bin ingest for two
    // independent tenants, polled once at the end, on the same engine
    // configuration. Throughput counts every ingested bin across all
    // tenants, so the number is directly comparable to the solo replay
    // throughput above.
    let tenant_nodes = cfg.nodes.min(12);
    let tenant_bins = cfg.window_bins * cfg.windows;
    let tenants: Vec<(TenantSpec, TmSeries)> = (0..2)
        .map(|k| {
            let name = format!("bench-{k}");
            let spec = TenantSpec::new(
                &name,
                &ring_topology(&name, tenant_nodes),
                RoutingScheme::Ecmp,
            )
            .with_window_bins(cfg.window_bins);
            let series = generate_synthetic(
                &SynthConfig::geant_like(20060419 + k as u64)
                    .with_nodes(tenant_nodes)
                    .with_bins(tenant_bins),
            )
            .expect("valid synth config")
            .series;
            (spec, series)
        })
        .collect();
    let mut service_secs = f64::INFINITY;
    let mut service_windows = 0usize;
    let mut bin_hist = None;
    for _ in 0..reps {
        // Per-bin latency lands in an `ic-obs` histogram; each bin span
        // covers every tenant's ingest plus a poll, so window completions
        // pay their window's cost at the bin that completes it — the p99
        // is the window-carrying bin, the p50 the pure buffering path.
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("bench.service.bin.seconds");
        let mut service = Service::with_engine(Engine::new().with_threads(threads));
        let ids: Vec<_> = tenants
            .iter()
            .map(|(spec, _)| service.register(spec.clone()).expect("register tenant"))
            .collect();
        let mut windows = 0usize;
        let start = Instant::now();
        for t in 0..tenant_bins {
            let span = Span::start(&hist);
            for (id, (_, series)) in ids.iter().zip(&tenants) {
                service.ingest(*id, series.column(t)).expect("ingest bin");
            }
            windows += service.poll().expect("poll service").len();
            drop(span);
        }
        let secs = start.elapsed().as_secs_f64();
        if secs < service_secs {
            service_secs = secs;
            service_windows = windows;
            bin_hist = Some(hist);
        }
    }
    let bin_hist = bin_hist.expect("at least one service rep");
    let service_bins = 2 * tenant_bins;
    let service_throughput = service_bins as f64 / service_secs;
    println!(
        "# service: 2 tenants x {tenant_nodes} nodes, {service_windows} windows, \
         {service_secs:.3}s, {service_throughput:.0} bins/sec"
    );
    println!(
        "# service per-bin latency: p50 {:.6}s, p95 {:.6}s, p99 {:.6}s, max {:.6}s \
         (power-of-two histogram buckets)",
        bin_hist.p50(),
        bin_hist.p95(),
        bin_hist.p99(),
        bin_hist.max(),
    );

    let cold_mean = cold_secs / measured.max(1) as f64;
    let warm_mean = warm_secs / measured.max(1) as f64;
    let speedup = cold_mean / warm_mean;
    println!(
        "# warm refit {warm_mean:.4}s vs cold {cold_mean:.4}s per window (speedup {speedup:.2}x)"
    );

    let drift: Vec<String> = report
        .drift_windows()
        .iter()
        .map(|w| w.to_string())
        .collect();
    let json = format!(
        "{{\"scale\":\"{scale:?}\",\"threads\":{},\"shard_bins\":{},\"cpus_available\":{},\
         \"nodes\":{},\"window_bins\":{},\"windows\":{},\
         \"bins_total\":{},\"replay_secs\":{},\"throughput_bins_per_sec\":{},\
         \"cold_fit_secs_mean\":{},\"warm_fit_secs_mean\":{},\"warm_speedup\":{},\
         \"cold_sweeps_mean\":{},\"warm_sweeps_mean\":{},\"mean_improvement_pct\":{},\
         \"mean_forecast_f_error\":{},\"drift_windows\":[{}],\
         \"service_tenants\":2,\"service_nodes\":{},\"service_bins\":{},\
         \"service_windows\":{},\"service_secs\":{},\"service_bins_per_sec\":{},\
         \"service_bin_p50_secs\":{},\"service_bin_p95_secs\":{},\
         \"service_bin_p99_secs\":{},\"service_bin_max_secs\":{}}}\n",
        engine.threads(),
        engine.shard_bins(),
        default_threads(),
        cfg.nodes,
        cfg.window_bins,
        cfg.windows,
        report.total_bins(),
        json_f(replay_secs),
        json_f(throughput),
        json_f(cold_mean),
        json_f(warm_mean),
        json_f(speedup),
        json_f(cold_sweeps as f64 / measured.max(1) as f64),
        json_f(warm_sweeps as f64 / measured.max(1) as f64),
        json_f(report.mean_improvement()),
        json_f(report.mean_forecast_f_error()),
        drift.join(","),
        tenant_nodes,
        service_bins,
        service_windows,
        json_f(service_secs),
        json_f(service_throughput),
        json_f(bin_hist.p50()),
        json_f(bin_hist.p95()),
        json_f(bin_hist.p99()),
        json_f(bin_hist.max())
    );
    let path = out_path("BENCH_streaming.json");
    std::fs::write(&path, &json).expect("write BENCH_streaming.json");
    println!("# wrote {path}");
    print!("{json}");
}
