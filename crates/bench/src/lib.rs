//! # ic-bench — experiment harness for the paper's figures
//!
//! One binary per reproducible figure of the paper (`fig02` … `fig13`; see
//! DESIGN.md §4 for the index) plus ablation studies, and Criterion
//! benches for the numerical kernels. This library holds the shared
//! harness: scale selection, dataset caching, series summaries, and the
//! fit/estimation drivers the binaries compose.
//!
//! Every binary accepts `--scale smoke|full` (default `full`); smoke runs
//! finish in seconds and exercise the identical code paths on shorter
//! weeks, which is what the integration tests use.

use ic_core::{fit_stable_fp, improvement_percent, rel_l2_series, FitOptions, FitReport, TmSeries};
use ic_datasets::{build_d1, build_d2, Dataset, GeantConfig, TotemConfig};
use ic_estimation::{
    compare_priors, ComparisonResult, EstimationPipeline, ObservationModel, TmPrior,
};
use ic_topology::{geant22, totem23, RoutingScheme};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized datasets (weeks of 2016/672 bins).
    Full,
    /// Day-long "weeks" for fast runs and CI.
    Smoke,
}

impl Scale {
    /// Parses `--scale smoke|full` from process args; defaults to `Full`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" && w[1] == "smoke" {
                return Scale::Smoke;
            }
        }
        if std::env::var("IC_BENCH_SCALE").as_deref() == Ok("smoke") {
            return Scale::Smoke;
        }
        Scale::Full
    }
}

/// Value of a `--flag value` (or `--flag=value`) pair in the process
/// args, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == flag) {
        return Some(w[1].clone());
    }
    let prefix = format!("{flag}=");
    args.iter()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
}

/// Output path of a bench binary: `--out PATH` if given, `default`
/// otherwise. Every JSON-emitting bench bin routes its artifact through
/// this, so CI can redirect artifacts without touching the CWD.
pub fn out_path(default: &str) -> String {
    arg_value("--out").unwrap_or_else(|| default.to_string())
}

/// Formats a float as a JSON value (`null` for non-finite).
pub fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Tolerance-aware perf-regression comparison over flat JSON metrics —
/// the logic behind the `perf_gate` bin, kept here so it is unit-tested.
pub mod perf {
    /// Whether larger or smaller values of a metric are better.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Direction {
        /// e.g. throughput, speedup.
        HigherIsBetter,
        /// e.g. seconds per bin, allocation counts.
        LowerIsBetter,
    }

    /// Extracts every numeric occurrence of `"key":<number>` from a JSON
    /// document, in order. Handles the flat and array-of-objects layouts
    /// the bench bins emit (no string escapes around numbers to worry
    /// about); `null` values are skipped.
    pub fn metric_values(json: &str, key: &str) -> Vec<f64> {
        let needle = format!("\"{key}\":");
        let mut out = Vec::new();
        let mut rest = json;
        while let Some(pos) = rest.find(&needle) {
            rest = &rest[pos + needle.len()..];
            let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
            let token = rest[..end].trim();
            if let Ok(v) = token.parse::<f64>() {
                out.push(v);
            }
        }
        out
    }

    /// One metric regression, human-readable.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// Metric key that regressed.
        pub key: String,
        /// Position within the document (for array layouts).
        pub index: usize,
        /// Baseline value.
        pub baseline: f64,
        /// Current value.
        pub current: f64,
    }

    /// Compares `current` against `baseline` for each `(key, direction)`
    /// metric, allowing a relative `tolerance` (0.25 = 25% worse is still
    /// accepted). Missing keys on either side are ignored (a new bench
    /// landing without a refreshed baseline must not hard-fail CI); paired
    /// values are compared positionally up to the shorter length. A
    /// lower-is-better metric with a zero baseline (e.g. a 0 allocation
    /// count) regresses on *any* positive current value — the
    /// allocation-free property is exact, not relative.
    pub fn compare(
        baseline: &str,
        current: &str,
        metrics: &[(&str, Direction)],
        tolerance: f64,
    ) -> Vec<Regression> {
        let mut regressions = Vec::new();
        for (key, direction) in metrics {
            let base = metric_values(baseline, key);
            let cur = metric_values(current, key);
            for (index, (&b, &c)) in base.iter().zip(cur.iter()).enumerate() {
                if !(b.is_finite() && c.is_finite()) || b < 0.0 {
                    continue;
                }
                let regressed = match direction {
                    // Ratio/throughput metrics need a positive baseline to
                    // compare against.
                    Direction::HigherIsBetter => b > 0.0 && c < b * (1.0 - tolerance),
                    Direction::LowerIsBetter => c > b * (1.0 + tolerance),
                };
                if regressed {
                    regressions.push(Regression {
                        key: key.to_string(),
                        index,
                        baseline: b,
                        current: c,
                    });
                }
            }
        }
        regressions
    }
}

/// The D1 config at the requested scale with `weeks` weeks (shared by the
/// direct builders below and the `ic-experiment` scenario wrappers).
pub fn d1_config(scale: Scale, weeks: usize, seed: u64) -> GeantConfig {
    let mut cfg = match scale {
        Scale::Full => GeantConfig::default(),
        Scale::Smoke => GeantConfig::smoke(seed),
    };
    cfg.weeks = weeks;
    cfg.seed = seed;
    cfg
}

/// The D2 config at the requested scale with `weeks` weeks.
pub fn d2_config(scale: Scale, weeks: usize, seed: u64) -> TotemConfig {
    let mut cfg = match scale {
        Scale::Full => TotemConfig::default(),
        Scale::Smoke => TotemConfig::smoke(seed),
    };
    cfg.weeks = weeks;
    cfg.seed = seed;
    cfg
}

/// Builds the D1 dataset at the requested scale with `weeks` weeks.
pub fn d1_at(scale: Scale, weeks: usize, seed: u64) -> Dataset {
    build_d1(&d1_config(scale, weeks, seed)).expect("D1 build is infallible for valid configs")
}

/// Builds the D2 dataset at the requested scale with `weeks` weeks.
pub fn d2_at(scale: Scale, weeks: usize, seed: u64) -> Dataset {
    build_d2(&d2_config(scale, weeks, seed)).expect("D2 build is infallible for valid configs")
}

/// Fit options used across figure binaries (paper Section 5.1 settings).
pub fn paper_fit_options() -> FitOptions {
    FitOptions::default()
        .with_max_sweeps(40)
        .with_tolerance(1e-6)
        .with_initial_f(0.3)
}

/// Fits the stable-fP model to every week of a measured series.
pub fn fit_weeks(weeks: &[TmSeries]) -> Vec<FitReport<ic_core::StableFpParams>> {
    weeks
        .iter()
        .map(|w| fit_stable_fp(w, paper_fit_options()).expect("weekly fit"))
        .collect()
}

/// Per-bin percentage improvement of an IC fit over the gravity model on
/// the same observed week (the Figure 3 quantity).
pub fn fit_improvement_series(
    observed: &TmSeries,
    fit: &FitReport<ic_core::StableFpParams>,
) -> Vec<f64> {
    let ic_pred = fit
        .predict(observed.bin_seconds())
        .expect("prediction from valid fit");
    let grav = ic_core::gravity_predict(observed).expect("gravity prediction");
    let e_ic = rel_l2_series(observed, &ic_pred).expect("series error");
    let e_gr = rel_l2_series(observed, &grav).expect("series error");
    e_gr.iter()
        .zip(e_ic.iter())
        .map(|(&g, &c)| improvement_percent(g, c))
        .collect()
}

/// Runs a Figure 11/12/13-style estimation comparison on one week.
pub fn estimation_comparison(
    dataset_name: &str,
    week: &TmSeries,
    prior: &dyn TmPrior,
) -> ComparisonResult {
    let topo = match dataset_name {
        "geant-d1" => geant22(),
        "totem-d2" => totem23(),
        other => panic!("unknown dataset {other}"),
    };
    let om = ObservationModel::new(&topo, RoutingScheme::Ecmp).expect("observation model");
    let obs = om.observe(week).expect("observe week");
    let pipeline = EstimationPipeline::new(om);
    compare_priors(&pipeline, prior, week, &obs).expect("comparison")
}

/// Summary statistics of a series, for compact experiment reports.
#[derive(Debug, Clone, Copy)]
pub struct SeriesSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// Summarizes a series (mean and 5/50/95 percentiles).
pub fn summarize(series: &[f64]) -> SeriesSummary {
    assert!(!series.is_empty(), "summarize of empty series");
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite series"));
    let pct = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    SeriesSummary {
        mean: series.iter().sum::<f64>() / series.len() as f64,
        p5: pct(0.05),
        p50: pct(0.50),
        p95: pct(0.95),
    }
}

/// Prints a decimated series as `bin<TAB>value` rows (at most `max_rows`).
pub fn print_series(label: &str, series: &[f64], max_rows: usize) {
    println!("# series: {label} ({} bins)", series.len());
    let stride = (series.len() / max_rows.max(1)).max(1);
    for (t, v) in series.iter().enumerate().step_by(stride) {
        println!("{t}\t{v:.4}");
    }
}

/// Prints a `SeriesSummary` as a one-line report.
pub fn print_summary(label: &str, s: &SeriesSummary) {
    println!(
        "{label}: mean={:.2} p5={:.2} median={:.2} p95={:.2}",
        s.mean, s.p5, s.p50, s.p95
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_percentiles() {
        let xs: Vec<f64> = (0..=100).map(|v| v as f64).collect();
        let s = summarize(&xs);
        assert!((s.mean - 50.0).abs() < 1e-9);
        assert!((s.p5 - 5.0).abs() < 1.0);
        assert!((s.p50 - 50.0).abs() < 1.0);
        assert!((s.p95 - 95.0).abs() < 1.0);
    }

    #[test]
    fn scale_default_is_full() {
        // No --scale arg in the test harness invocation.
        assert_eq!(Scale::from_args(), Scale::Full);
    }

    #[test]
    fn out_path_defaults_without_flag() {
        assert_eq!(out_path("X.json"), "X.json");
        assert_eq!(arg_value("--no-such-flag"), None);
    }

    #[test]
    fn json_f_maps_non_finite_to_null() {
        assert_eq!(json_f(1.5), "1.5");
        assert_eq!(json_f(f64::NAN), "null");
        assert_eq!(json_f(f64::INFINITY), "null");
    }

    #[test]
    fn perf_metric_extraction_handles_layouts() {
        use crate::perf::metric_values;
        let flat = r#"{"throughput_bins_per_sec":123.5,"other":1}"#;
        assert_eq!(metric_values(flat, "throughput_bins_per_sec"), vec![123.5]);
        let arr = r#"{"results":[{"x":1.0,"y":2},{"x":3.5,"y":4}]}"#;
        assert_eq!(metric_values(arr, "x"), vec![1.0, 3.5]);
        let with_null = r#"{"x":null,"x":2.0}"#;
        assert_eq!(metric_values(with_null, "x"), vec![2.0]);
        assert!(metric_values(flat, "missing").is_empty());
    }

    #[test]
    fn perf_compare_flags_only_true_regressions() {
        use crate::perf::{compare, Direction, Regression};
        let base = r#"{"thr":100.0,"secs":1.0}"#;
        let metrics = [
            ("thr", Direction::HigherIsBetter),
            ("secs", Direction::LowerIsBetter),
        ];
        // Within tolerance: 20% worse on both.
        let ok = r#"{"thr":80.0,"secs":1.2}"#;
        assert!(compare(base, ok, &metrics, 0.25).is_empty());
        // Improvements never flag.
        let better = r#"{"thr":500.0,"secs":0.1}"#;
        assert!(compare(base, better, &metrics, 0.25).is_empty());
        // Beyond tolerance flags with the offending values.
        let bad = r#"{"thr":50.0,"secs":2.0}"#;
        let regs = compare(base, bad, &metrics, 0.25);
        assert_eq!(
            regs,
            vec![
                Regression {
                    key: "thr".to_string(),
                    index: 0,
                    baseline: 100.0,
                    current: 50.0
                },
                Regression {
                    key: "secs".to_string(),
                    index: 0,
                    baseline: 1.0,
                    current: 2.0
                },
            ]
        );
        // Missing keys are ignored rather than failing the gate.
        assert!(compare(base, r#"{}"#, &metrics, 0.25).is_empty());
    }

    #[test]
    fn perf_compare_zero_baseline_allocs_still_gate() {
        use crate::perf::{compare, Direction};
        // The allocation-free property is exact: a 0 baseline must flag
        // ANY positive current count for lower-is-better metrics.
        let metrics = [("allocs_per_bin_warm", Direction::LowerIsBetter)];
        let base = r#"{"allocs_per_bin_warm":0}"#;
        let regs = compare(base, r#"{"allocs_per_bin_warm":5}"#, &metrics, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].current, 5.0);
        assert!(compare(base, base, &metrics, 0.25).is_empty());
        // Higher-is-better metrics still need a positive baseline.
        let thr = [("thr", Direction::HigherIsBetter)];
        assert!(compare(r#"{"thr":0}"#, r#"{"thr":0}"#, &thr, 0.25).is_empty());
    }

    #[test]
    fn smoke_pipeline_end_to_end() {
        // The smallest full pass through the harness: build a smoke D1,
        // fit week 1, compute the Figure 3 improvement.
        let ds = d1_at(Scale::Smoke, 1, 42);
        let weeks = ds.measured_weeks().unwrap();
        let fits = fit_weeks(&weeks);
        assert_eq!(fits.len(), 1);
        let imp = fit_improvement_series(&weeks[0], &fits[0]);
        let s = summarize(&imp);
        assert!(
            s.mean > 0.0,
            "IC should improve on gravity; got mean {}",
            s.mean
        );
    }
}
