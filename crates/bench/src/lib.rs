//! # ic-bench — experiment harness for the paper's figures
//!
//! One binary per reproducible figure of the paper (`fig02` … `fig13`; see
//! DESIGN.md §4 for the index) plus ablation studies, and Criterion
//! benches for the numerical kernels. This library holds the shared
//! harness: scale selection, dataset caching, series summaries, and the
//! fit/estimation drivers the binaries compose.
//!
//! Every binary accepts `--scale smoke|full` (default `full`); smoke runs
//! finish in seconds and exercise the identical code paths on shorter
//! weeks, which is what the integration tests use.

use ic_core::{fit_stable_fp, improvement_percent, rel_l2_series, FitOptions, FitResult, TmSeries};
use ic_datasets::{build_d1, build_d2, Dataset, GeantConfig, TotemConfig};
use ic_estimation::{
    compare_priors, ComparisonResult, EstimationPipeline, ObservationModel, TmPrior,
};
use ic_topology::{geant22, totem23, RoutingScheme};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized datasets (weeks of 2016/672 bins).
    Full,
    /// Day-long "weeks" for fast runs and CI.
    Smoke,
}

impl Scale {
    /// Parses `--scale smoke|full` from process args; defaults to `Full`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" && w[1] == "smoke" {
                return Scale::Smoke;
            }
        }
        if std::env::var("IC_BENCH_SCALE").as_deref() == Ok("smoke") {
            return Scale::Smoke;
        }
        Scale::Full
    }
}

/// The D1 config at the requested scale with `weeks` weeks (shared by the
/// direct builders below and the `ic-experiment` scenario wrappers).
pub fn d1_config(scale: Scale, weeks: usize, seed: u64) -> GeantConfig {
    let mut cfg = match scale {
        Scale::Full => GeantConfig::default(),
        Scale::Smoke => GeantConfig::smoke(seed),
    };
    cfg.weeks = weeks;
    cfg.seed = seed;
    cfg
}

/// The D2 config at the requested scale with `weeks` weeks.
pub fn d2_config(scale: Scale, weeks: usize, seed: u64) -> TotemConfig {
    let mut cfg = match scale {
        Scale::Full => TotemConfig::default(),
        Scale::Smoke => TotemConfig::smoke(seed),
    };
    cfg.weeks = weeks;
    cfg.seed = seed;
    cfg
}

/// Builds the D1 dataset at the requested scale with `weeks` weeks.
pub fn d1_at(scale: Scale, weeks: usize, seed: u64) -> Dataset {
    build_d1(&d1_config(scale, weeks, seed)).expect("D1 build is infallible for valid configs")
}

/// Builds the D2 dataset at the requested scale with `weeks` weeks.
pub fn d2_at(scale: Scale, weeks: usize, seed: u64) -> Dataset {
    build_d2(&d2_config(scale, weeks, seed)).expect("D2 build is infallible for valid configs")
}

/// Fit options used across figure binaries (paper Section 5.1 settings).
pub fn paper_fit_options() -> FitOptions {
    FitOptions::default()
        .with_max_sweeps(40)
        .with_tolerance(1e-6)
        .with_initial_f(0.3)
}

/// Fits the stable-fP model to every week of a measured series.
pub fn fit_weeks(weeks: &[TmSeries]) -> Vec<FitResult> {
    weeks
        .iter()
        .map(|w| fit_stable_fp(w, paper_fit_options()).expect("weekly fit"))
        .collect()
}

/// Per-bin percentage improvement of an IC fit over the gravity model on
/// the same observed week (the Figure 3 quantity).
pub fn fit_improvement_series(observed: &TmSeries, fit: &FitResult) -> Vec<f64> {
    let ic_pred = fit
        .predict(observed.bin_seconds())
        .expect("prediction from valid fit");
    let grav = ic_core::gravity_predict(observed).expect("gravity prediction");
    let e_ic = rel_l2_series(observed, &ic_pred).expect("series error");
    let e_gr = rel_l2_series(observed, &grav).expect("series error");
    e_gr.iter()
        .zip(e_ic.iter())
        .map(|(&g, &c)| improvement_percent(g, c))
        .collect()
}

/// Runs a Figure 11/12/13-style estimation comparison on one week.
pub fn estimation_comparison(
    dataset_name: &str,
    week: &TmSeries,
    prior: &dyn TmPrior,
) -> ComparisonResult {
    let topo = match dataset_name {
        "geant-d1" => geant22(),
        "totem-d2" => totem23(),
        other => panic!("unknown dataset {other}"),
    };
    let om = ObservationModel::new(&topo, RoutingScheme::Ecmp).expect("observation model");
    let obs = om.observe(week).expect("observe week");
    let pipeline = EstimationPipeline::new(om);
    compare_priors(&pipeline, prior, week, &obs).expect("comparison")
}

/// Summary statistics of a series, for compact experiment reports.
#[derive(Debug, Clone, Copy)]
pub struct SeriesSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// Summarizes a series (mean and 5/50/95 percentiles).
pub fn summarize(series: &[f64]) -> SeriesSummary {
    assert!(!series.is_empty(), "summarize of empty series");
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite series"));
    let pct = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    SeriesSummary {
        mean: series.iter().sum::<f64>() / series.len() as f64,
        p5: pct(0.05),
        p50: pct(0.50),
        p95: pct(0.95),
    }
}

/// Prints a decimated series as `bin<TAB>value` rows (at most `max_rows`).
pub fn print_series(label: &str, series: &[f64], max_rows: usize) {
    println!("# series: {label} ({} bins)", series.len());
    let stride = (series.len() / max_rows.max(1)).max(1);
    for (t, v) in series.iter().enumerate().step_by(stride) {
        println!("{t}\t{v:.4}");
    }
}

/// Prints a `SeriesSummary` as a one-line report.
pub fn print_summary(label: &str, s: &SeriesSummary) {
    println!(
        "{label}: mean={:.2} p5={:.2} median={:.2} p95={:.2}",
        s.mean, s.p5, s.p50, s.p95
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_percentiles() {
        let xs: Vec<f64> = (0..=100).map(|v| v as f64).collect();
        let s = summarize(&xs);
        assert!((s.mean - 50.0).abs() < 1e-9);
        assert!((s.p5 - 5.0).abs() < 1.0);
        assert!((s.p50 - 50.0).abs() < 1.0);
        assert!((s.p95 - 95.0).abs() < 1.0);
    }

    #[test]
    fn scale_default_is_full() {
        // No --scale arg in the test harness invocation.
        assert_eq!(Scale::from_args(), Scale::Full);
    }

    #[test]
    fn smoke_pipeline_end_to_end() {
        // The smallest full pass through the harness: build a smoke D1,
        // fit week 1, compute the Figure 3 improvement.
        let ds = d1_at(Scale::Smoke, 1, 42);
        let weeks = ds.measured_weeks().unwrap();
        let fits = fit_weeks(&weeks);
        assert_eq!(fits.len(), 1);
        let imp = fit_improvement_series(&weeks[0], &fits[0]);
        let s = summarize(&imp);
        assert!(
            s.mean > 0.0,
            "IC should improve on gravity; got mean {}",
            s.mean
        );
    }
}
