#![allow(missing_docs)]
//! Criterion benches for the streaming subsystem: warm vs cold window
//! refits (the core `ic-stream` speedup) and windowed ingestion
//! throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ic_core::{fit_stable_fp, generate_synthetic, FitOptions, SynthConfig};
use ic_serve::{Service, TenantSpec};
use ic_stream::{replay_fit, ReplayOptions, SyntheticStream, Windower};
use ic_topology::{RoutingScheme, Topology};

fn synth(nodes: usize, bins: usize) -> SynthConfig {
    SynthConfig::geant_like(4242)
        .with_nodes(nodes)
        .with_bins(bins)
}

fn bench_warm_vs_cold_refit(c: &mut Criterion) {
    let mut stream = SyntheticStream::new(synth(12, 96)).unwrap();
    let windows = Windower::tumbling(48)
        .unwrap()
        .take_windows(&mut stream, None)
        .unwrap();
    let previous = fit_stable_fp(&windows[0].series, FitOptions::default()).unwrap();
    let target = &windows[1].series;
    let mut group = c.benchmark_group("window_refit_12n_48t");
    group.bench_function("cold", |b| {
        b.iter(|| black_box(fit_stable_fp(target, FitOptions::default()).unwrap()))
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            black_box(fit_stable_fp(target, FitOptions::default().with_initial(&previous)).unwrap())
        })
    });
    group.finish();
}

fn bench_windowed_ingestion(c: &mut Criterion) {
    // Generation + windowing only — the ingestion-side cost floor.
    c.bench_function("ingest_576_bins_12n_24t_windows", |b| {
        b.iter(|| {
            let mut stream = SyntheticStream::new(synth(12, 576)).unwrap();
            let windows = Windower::tumbling(24)
                .unwrap()
                .take_windows(&mut stream, None)
                .unwrap();
            black_box(windows.len())
        })
    });
}

fn bench_full_replay(c: &mut Criterion) {
    // The whole online loop: ingest, window, fit warm, gravity baseline,
    // forecast, drift-detect.
    c.bench_function("replay_fit_6n_8x24t", |b| {
        b.iter(|| {
            let mut stream = SyntheticStream::new(synth(6, 192)).unwrap();
            let report =
                replay_fit(&mut stream, &ReplayOptions::default().with_window_bins(24)).unwrap();
            black_box(report.mean_improvement())
        })
    });
}

fn ring_topology(name: &str, n: usize) -> Topology {
    let mut t = Topology::new(name);
    let ids: Vec<usize> = (0..n)
        .map(|k| t.add_node(format!("n{k}")).unwrap())
        .collect();
    for k in 0..n {
        t.add_symmetric_link(ids[k], ids[(k + 1) % n], 1.0, 1e12)
            .unwrap();
    }
    t.add_symmetric_link(ids[0], ids[n / 2], 1.0, 1e12).unwrap();
    t
}

fn bench_service_multi_tenant(c: &mut Criterion) {
    // The ic-serve batching core end to end: bin-by-bin ingest for two
    // tenants plus one final poll that executes every ready window on
    // the shared engine.
    const NODES: usize = 6;
    const BINS: usize = 96;
    let tenants: Vec<_> = (0..2)
        .map(|k| {
            let name = format!("bench-{k}");
            let spec = TenantSpec::new(&name, &ring_topology(&name, NODES), RoutingScheme::Ecmp)
                .with_window_bins(24);
            let series = generate_synthetic(
                &SynthConfig::geant_like(4242 + k as u64)
                    .with_nodes(NODES)
                    .with_bins(BINS),
            )
            .unwrap()
            .series;
            (spec, series)
        })
        .collect();
    c.bench_function("service_2_tenants_6n_96_bins", |b| {
        b.iter(|| {
            let mut service = Service::new();
            let ids: Vec<_> = tenants
                .iter()
                .map(|(spec, _)| service.register(spec.clone()).unwrap())
                .collect();
            for t in 0..BINS {
                for (id, (_, series)) in ids.iter().zip(&tenants) {
                    service.ingest(*id, series.column(t)).unwrap();
                }
            }
            black_box(service.poll().unwrap().len())
        })
    });
}

criterion_group!(
    benches,
    bench_warm_vs_cold_refit,
    bench_windowed_ingestion,
    bench_full_replay,
    bench_service_multi_tenant
);
criterion_main!(benches);
