#![allow(missing_docs)]
//! Criterion benches for the streaming subsystem: warm vs cold window
//! refits (the core `ic-stream` speedup) and windowed ingestion
//! throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ic_core::{fit_stable_fp, FitOptions, SynthConfig};
use ic_stream::{replay_fit, ReplayOptions, SyntheticStream, Windower};

fn synth(nodes: usize, bins: usize) -> SynthConfig {
    SynthConfig::geant_like(4242)
        .with_nodes(nodes)
        .with_bins(bins)
}

fn bench_warm_vs_cold_refit(c: &mut Criterion) {
    let mut stream = SyntheticStream::new(synth(12, 96)).unwrap();
    let windows = Windower::tumbling(48)
        .unwrap()
        .take_windows(&mut stream, None)
        .unwrap();
    let previous = fit_stable_fp(&windows[0].series, FitOptions::default()).unwrap();
    let target = &windows[1].series;
    let mut group = c.benchmark_group("window_refit_12n_48t");
    group.bench_function("cold", |b| {
        b.iter(|| black_box(fit_stable_fp(target, FitOptions::default()).unwrap()))
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            black_box(fit_stable_fp(target, FitOptions::default().with_initial(&previous)).unwrap())
        })
    });
    group.finish();
}

fn bench_windowed_ingestion(c: &mut Criterion) {
    // Generation + windowing only — the ingestion-side cost floor.
    c.bench_function("ingest_576_bins_12n_24t_windows", |b| {
        b.iter(|| {
            let mut stream = SyntheticStream::new(synth(12, 576)).unwrap();
            let windows = Windower::tumbling(24)
                .unwrap()
                .take_windows(&mut stream, None)
                .unwrap();
            black_box(windows.len())
        })
    });
}

fn bench_full_replay(c: &mut Criterion) {
    // The whole online loop: ingest, window, fit warm, gravity baseline,
    // forecast, drift-detect.
    c.bench_function("replay_fit_6n_8x24t", |b| {
        b.iter(|| {
            let mut stream = SyntheticStream::new(synth(6, 192)).unwrap();
            let report =
                replay_fit(&mut stream, &ReplayOptions::default().with_window_bins(24)).unwrap();
            black_box(report.mean_improvement())
        })
    });
}

criterion_group!(
    benches,
    bench_warm_vs_cold_refit,
    bench_windowed_ingestion,
    bench_full_replay
);
criterion_main!(benches);
