#![allow(missing_docs)]
//! Criterion benches for the estimation pipeline: prior construction,
//! tomogravity refinement (sparse vs dense), and IPF on the Géant
//! topology. The scale sweep lives in the `estimation_perf` bin; these
//! benches track the PoP-scale kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ic_core::{generate_synthetic, SynthConfig};
use ic_estimation::{
    ipf_fit, ipf_fit_with, EstimationPipeline, GravityPrior, IpfOptions, IpfWorkspace,
    ObservationModel, StableFPrior, StableFpPrior, TmPrior, Tomogravity, TomogravityOptions,
    TomogravityWorkspace,
};
use ic_topology::{geant22, RoutingScheme};

fn setup() -> (ObservationModel, ic_core::TmSeries) {
    let om = ObservationModel::new(&geant22(), RoutingScheme::Ecmp).unwrap();
    let mut cfg = SynthConfig::geant_like(77);
    cfg.bins = 12;
    let tm = generate_synthetic(&cfg).unwrap().series;
    (om, tm)
}

fn bench_observation(c: &mut Criterion) {
    let (om, tm) = setup();
    c.bench_function("observe_geant_12bins", |b| {
        b.iter(|| black_box(om.observe(&tm).unwrap()))
    });
    c.bench_function("routing_matrix_build_geant_ecmp", |b| {
        b.iter(|| {
            black_box(ic_topology::RoutingMatrix::build(&geant22(), RoutingScheme::Ecmp).unwrap())
        })
    });
}

fn bench_priors(c: &mut Criterion) {
    let (om, tm) = setup();
    let obs = om.observe(&tm).unwrap();
    c.bench_function("gravity_prior_12bins", |b| {
        b.iter(|| black_box(GravityPrior.prior_series(&obs).unwrap()))
    });
    let p: Vec<f64> = (1..=22).map(|k| 1.0 / k as f64).collect();
    let fp = StableFpPrior {
        f: 0.25,
        preference: p,
    };
    c.bench_function("stable_fp_prior_12bins", |b| {
        b.iter(|| black_box(fp.prior_series(&obs).unwrap()))
    });
    let f_only = StableFPrior { f: 0.25 };
    c.bench_function("stable_f_prior_12bins", |b| {
        b.iter(|| black_box(f_only.prior_series(&obs).unwrap()))
    });
}

fn bench_refinement(c: &mut Criterion) {
    let (om, tm) = setup();
    let obs = om.observe(&tm).unwrap();
    let prior = GravityPrior.prior_series(&obs).unwrap();
    let tomo = Tomogravity::new(TomogravityOptions::default());
    c.bench_function("tomogravity_refine_geant_12bins", |b| {
        b.iter(|| black_box(tomo.refine(&om, &obs, &prior).unwrap()))
    });
    // Sparse vs dense single-bin refinement on the same inputs.
    let xp = prior.column(0);
    let bvec = obs.stacked_at(0);
    let a_dense = om.stacked().unwrap();
    let a = om.stacked_sparse();
    let at = om.stacked_transpose();
    let mut ws = TomogravityWorkspace::new();
    c.bench_function("tomogravity_bin_sparse_geant", |b| {
        b.iter(|| {
            tomo.refine_bin_sparse_with(a, at, &xp, &bvec, &mut ws)
                .unwrap();
            black_box(ws.solution()[0])
        })
    });
    c.bench_function("tomogravity_bin_dense_geant", |b| {
        b.iter(|| black_box(tomo.refine_bin(&a_dense, &xp, &bvec).unwrap()))
    });
    let pipeline = EstimationPipeline::new(om);
    c.bench_function("full_pipeline_geant_12bins", |b| {
        b.iter(|| black_box(pipeline.estimate(&GravityPrior, &obs).unwrap()))
    });
}

fn bench_ipf(c: &mut Criterion) {
    let (_, tm) = setup();
    let snap = tm.snapshot(0).unwrap();
    let rows = tm.ingress(0);
    let cols = tm.egress(0);
    c.bench_function("ipf_22x22", |b| {
        b.iter(|| black_box(ipf_fit(&snap, &rows, &cols, IpfOptions::default()).unwrap()))
    });
    let mut ws = IpfWorkspace::new();
    c.bench_function("ipf_22x22_workspace", |b| {
        b.iter(|| {
            ipf_fit_with(&snap, &rows, &cols, IpfOptions::default(), &mut ws).unwrap();
            black_box(ws.fitted()[(0, 0)])
        })
    });
}

criterion_group!(
    benches,
    bench_observation,
    bench_priors,
    bench_refinement,
    bench_ipf
);
criterion_main!(benches);
