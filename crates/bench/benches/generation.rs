#![allow(missing_docs)]
//! Criterion benches for the traffic generators and measurement
//! simulators: dataset build throughput and the packet-trace path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ic_core::{generate_synthetic, SynthConfig};
use ic_flowsim::{analyze_trace, sample_netflow, synthesize_trace, NetflowConfig, TraceConfig};

fn bench_synthetic_generation(c: &mut Criterion) {
    let mut cfg = SynthConfig::geant_like(5);
    cfg.bins = 288; // one day at 5-minute bins
    c.bench_function("generate_synthetic_22n_288t", |b| {
        b.iter(|| black_box(generate_synthetic(&cfg).unwrap()))
    });
}

fn bench_netflow_sampling(c: &mut Criterion) {
    let mut cfg = SynthConfig::geant_like(6);
    cfg.bins = 96;
    let tm = generate_synthetic(&cfg).unwrap().series;
    c.bench_function("netflow_sampling_22n_96t", |b| {
        b.iter(|| black_box(sample_netflow(&tm, NetflowConfig::default()).unwrap()))
    });
}

fn bench_trace_path(c: &mut Criterion) {
    let mut cfg = TraceConfig::abilene_like(7);
    cfg.duration = 300.0;
    cfg.rate_i = 2.0;
    cfg.rate_j = 2.0;
    c.bench_function("synthesize_trace_300s", |b| {
        b.iter(|| black_box(synthesize_trace(&cfg).unwrap()))
    });
    let packets = synthesize_trace(&cfg).unwrap();
    c.bench_function("analyze_trace_300s", |b| {
        b.iter(|| black_box(analyze_trace(&packets, 300.0, 300.0).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_synthetic_generation,
    bench_netflow_sampling,
    bench_trace_path
);
criterion_main!(benches);
