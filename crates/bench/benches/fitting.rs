#![allow(missing_docs)]
//! Criterion benches for the Section 5.1 fitting program — the cost that
//! determines how fast the Figure 3/5/6 experiments run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ic_core::{
    fit_stable_f, fit_stable_fp, fit_time_varying, generate_synthetic, FitOptions, SynthConfig,
};

fn series(nodes: usize, bins: usize) -> ic_core::TmSeries {
    let mut cfg = SynthConfig::geant_like(1234);
    cfg.nodes = nodes;
    cfg.bins = bins;
    generate_synthetic(&cfg).unwrap().series
}

fn bench_stable_fp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_stable_fp");
    for (nodes, bins) in [(12usize, 48usize), (22, 96), (22, 288)] {
        let tm = series(nodes, bins);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{bins}t")),
            &tm,
            |b, tm| b.iter(|| black_box(fit_stable_fp(tm, FitOptions::default()).unwrap())),
        );
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let tm = series(12, 48);
    c.bench_function("fit_stable_f_12n_48t", |b| {
        b.iter(|| black_box(fit_stable_f(&tm, FitOptions::default()).unwrap()))
    });
    c.bench_function("fit_time_varying_12n_48t", |b| {
        b.iter(|| black_box(fit_time_varying(&tm, FitOptions::default()).unwrap()))
    });
}

fn bench_sweep_budget(c: &mut Criterion) {
    // Cost per BCD sweep (fixed 5 sweeps, no early exit).
    let tm = series(22, 96);
    let opts = FitOptions::default().with_max_sweeps(5).with_tolerance(0.0);
    c.bench_function("fit_stable_fp_5_sweeps_22n_96t", |b| {
        b.iter(|| black_box(fit_stable_fp(&tm, opts.clone()).unwrap()))
    });
}

criterion_group!(benches, bench_stable_fp, bench_variants, bench_sweep_budget);
criterion_main!(benches);
