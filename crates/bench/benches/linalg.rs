#![allow(missing_docs)]
//! Criterion benches for the dense linear-algebra kernels at the sizes the
//! traffic-matrix pipelines actually use (n = 22 nodes, n² = 484 OD pairs,
//! ~110 observation rows).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ic_linalg::{nnls, pseudo_inverse, Cholesky, Matrix, NnlsOptions, Qr, Svd};

fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z = z ^ (z >> 31);
        (z as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
}

fn spd(n: usize, seed: u64) -> Matrix {
    let b = deterministic_matrix(n + 4, n, seed);
    let mut g = b.gram();
    for i in 0..n {
        g[(i, i)] += n as f64;
    }
    g
}

fn bench_matmul(c: &mut Criterion) {
    let a = deterministic_matrix(110, 484, 1);
    let b = deterministic_matrix(484, 110, 2);
    c.bench_function("matmul_110x484_484x110", |bench| {
        bench.iter(|| black_box(a.matmul(&b).unwrap()))
    });
}

fn bench_qr(c: &mut Criterion) {
    let a = deterministic_matrix(110, 44, 3);
    c.bench_function("qr_factor_110x44", |bench| {
        bench.iter(|| black_box(Qr::factor(&a).unwrap()))
    });
    let rhs = vec![1.0; 110];
    let qr = Qr::factor(&a).unwrap();
    c.bench_function("qr_solve_110x44", |bench| {
        bench.iter(|| black_box(qr.solve_least_squares(&rhs).unwrap()))
    });
}

fn bench_cholesky(c: &mut Criterion) {
    let a = spd(110, 4);
    c.bench_function("cholesky_factor_110", |bench| {
        bench.iter(|| black_box(Cholesky::factor(&a).unwrap()))
    });
    let chol = Cholesky::factor(&a).unwrap();
    let rhs = vec![1.0; 110];
    c.bench_function("cholesky_solve_110", |bench| {
        bench.iter(|| black_box(chol.solve(&rhs).unwrap()))
    });
}

fn bench_svd_pinv(c: &mut Criterion) {
    // The stable-fP prior pseudo-inverts a (2n x n) = 44x22 operator.
    let a = deterministic_matrix(44, 22, 5);
    c.bench_function("svd_44x22", |bench| {
        bench.iter(|| black_box(Svd::factor(&a).unwrap()))
    });
    c.bench_function("pinv_44x22", |bench| {
        bench.iter(|| black_box(pseudo_inverse(&a, None).unwrap()))
    });
}

fn bench_nnls(c: &mut Criterion) {
    let a = deterministic_matrix(484, 22, 6).map(f64::abs);
    let x = vec![1.0; 22];
    let b = a.matvec(&x).unwrap();
    c.bench_function("nnls_484x22", |bench| {
        bench.iter(|| black_box(nnls(&a, &b, NnlsOptions::default()).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_qr,
    bench_cholesky,
    bench_svd_pinv,
    bench_nnls
);
criterion_main!(benches);
