//! Property tests for the runner's determinism guarantee: a scenario
//! batch produces bit-identical reports regardless of the worker-thread
//! count, and batch seeding is a pure function of (base seed, index).

use ic_core::SynthConfig;
use ic_engine::Engine;
use ic_experiment::{PriorStrategy, Runner, Scenario, Task};
use ic_stream::ReplayOptions;
use proptest::prelude::*;

/// A small mixed-task batch parameterized by seed so the property is
/// exercised across many generated workloads, not one fixture. Includes
/// streaming-replay scenarios: their per-window online state (warm
/// starts, rolling priors, forecaster history) must not leak across the
/// runner's worker threads.
fn mixed_batch(seed: u64, scenarios: usize) -> Vec<Scenario> {
    (0..scenarios)
        .map(|i| {
            let cfg = SynthConfig::geant_like(seed.wrapping_add(i as u64))
                .with_nodes(22)
                .with_bins(4 + (i % 3));
            let b = Scenario::builder(format!("prop-{i}"));
            match i % 4 {
                0 => b
                    .synth(cfg)
                    .geant22()
                    .prior(PriorStrategy::MeasuredIc)
                    .task(Task::Estimation),
                1 => b.synth(cfg.with_nodes(5)).task(Task::FitImprovement),
                2 => b
                    .synth(cfg.with_nodes(5).with_bins(9))
                    .streaming(ReplayOptions::default().with_window_bins(3)),
                _ => b.synth(cfg.with_nodes(5)).task(Task::GravityGap),
            }
            .build()
            .expect("valid scenario")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 1 worker thread and N worker threads produce bit-identical reports
    /// over arbitrary batch shapes and seeds.
    #[test]
    fn one_vs_n_threads_bit_identical(
        seed in 0u64..10_000,
        scenarios in 1usize..6,
        threads in 2usize..8,
    ) {
        let batch = mixed_batch(seed, scenarios);
        let one = Runner::new().with_threads(1).run(&batch).unwrap();
        let many = Runner::new().with_threads(threads).run(&batch).unwrap();
        prop_assert_eq!(one, many);
    }

    /// Batch seeding keeps the 1-vs-N guarantee: per-scenario seeds come
    /// from (base seed, index), never from scheduling.
    #[test]
    fn seeded_batches_are_thread_count_invariant(
        base in 0u64..10_000,
        threads in 2usize..6,
    ) {
        let batch = mixed_batch(3, 4);
        let one = Runner::new().with_threads(1).with_base_seed(base).run(&batch).unwrap();
        let many = Runner::new().with_threads(threads).with_base_seed(base).run(&batch).unwrap();
        prop_assert_eq!(&one, &many);
        // And the CSV/JSON emissions — the artifacts experiments archive —
        // are therefore byte-identical too.
        prop_assert_eq!(one.to_csv(), many.to_csv());
        prop_assert_eq!(one.to_json(), many.to_json());
    }

    /// Repeated runs of the same runner configuration are reproducible.
    #[test]
    fn repeat_runs_reproduce(seed in 0u64..10_000) {
        let batch = mixed_batch(seed, 3);
        let runner = Runner::new().with_threads(3);
        let a = runner.run(&batch).unwrap();
        let b = runner.run(&batch).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Two-level scheduling (scenarios × bins) keeps the guarantee under
    /// thread surpluses and deficits alike: with more threads than
    /// scenarios the spare threads shard bins inside each scenario, and
    /// the shard size is a wall-clock knob only.
    #[test]
    fn two_level_scheduling_bit_identical(
        seed in 0u64..10_000,
        scenarios in 1usize..4,
        threads in 2usize..10,
        shard_bins in 1usize..5,
    ) {
        let batch = mixed_batch(seed, scenarios);
        let serial = Runner::new().with_threads(1).run(&batch).unwrap();
        let wide = Runner::new()
            .with_engine(Engine::new().with_threads(threads).with_shard_bins(shard_bins))
            .run(&batch)
            .unwrap();
        prop_assert_eq!(serial, wide);
    }

    /// Error determinism: when scenarios fail, the first failing scenario
    /// **by batch index** determines the error under every thread count —
    /// mirroring `Runner::run`'s sequential reference behavior.
    #[test]
    fn first_failing_scenario_by_index_wins(
        seed in 0u64..10_000,
        scenarios in 2usize..6,
        fail_a in 0usize..6,
        fail_b in 0usize..6,
        threads in 2usize..8,
    ) {
        let mut batch = mixed_batch(seed, scenarios);
        // Poison one or two indices with a runtime failure (the f = 1/2
        // prior is rejected inside estimation, past build-time checks).
        let poison = |i: usize| {
            Scenario::builder(format!("bad-{i}"))
                .synth(SynthConfig::geant_like(seed).with_nodes(22).with_bins(4))
                .geant22()
                .prior(PriorStrategy::Custom(std::sync::Arc::new(
                    ic_estimation::StableFPrior { f: 0.5 },
                )))
                .build()
                .expect("builds fine; fails at run time")
        };
        let fail_a = fail_a % scenarios;
        let fail_b = fail_b % scenarios;
        batch[fail_a] = poison(fail_a);
        batch[fail_b] = poison(fail_b);
        let one = Runner::new().with_threads(1).run(&batch).unwrap_err();
        let many = Runner::new().with_threads(threads).run(&batch).unwrap_err();
        prop_assert_eq!(one.to_string(), many.to_string());
    }
}
