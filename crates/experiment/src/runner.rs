//! Parallel scenario execution — a thin adapter over [`ic_engine`].
//!
//! [`Runner`] schedules a batch of [`Scenario`]s on the shared
//! deterministic engine at **two levels**: scenarios fan out across the
//! outer worker pool, and each scenario's bin-parallel work (pipeline
//! refinement, prior comparison, streaming windows) runs on an inner
//! engine sized to the threads the outer level leaves idle. A batch of
//! one large scenario therefore still uses every thread — bins pick up
//! the slack that scenario-granularity scheduling used to waste.
//!
//! Determinism is by construction, not by luck:
//!
//! * every scenario is self-contained (its own source build, fit, and
//!   pipeline — no shared mutable state between jobs);
//! * per-scenario RNG seeds are derived from the batch seed by index
//!   ([`Runner::with_base_seed`] via [`ic_engine::shard_seed`]), never
//!   from thread identity or scheduling order;
//! * reports assemble in scenario order, and the first failing scenario
//!   **by batch index** determines the returned error — both properties
//!   the engine provides ([`ic_engine::Engine::run`]).
//!
//! Hence a batch run with 1 worker thread and with N worker threads
//! produces **bit-identical** [`Report`]s (covered by this crate's
//! property tests).

use crate::report::Report;
use crate::scenario::Scenario;
use crate::Result;
use ic_engine::{shard_seed, Engine, WorkspacePool};

/// Executes scenario batches in parallel.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    engine: Engine,
    base_seed: Option<u64>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// A runner sized to the machine's available parallelism (the
    /// engine's [`ic_engine::default_threads`] — the one source of truth
    /// for worker-pool sizing).
    pub fn new() -> Self {
        Runner {
            engine: Engine::new(),
            base_seed: None,
        }
    }

    /// Sets the number of worker threads (clamped to at least 1). The
    /// thread count affects wall-clock time only, never results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.with_threads(threads);
        self
    }

    /// Replaces the execution engine (thread count and shard size) the
    /// runner schedules on.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Derives each scenario's source seed from `seed` and the scenario's
    /// batch index (`shard_seed(seed, index)`), overriding the seeds in
    /// the scenario configs. Use this to re-randomize a whole batch from
    /// one knob while keeping runs reproducible.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = Some(seed);
        self
    }

    /// Number of worker threads the runner will use.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// The engine the runner schedules on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Runs every scenario and assembles the per-scenario reports in
    /// input order. The first failing scenario (by batch index, not by
    /// completion order) determines the returned error, so failures are
    /// deterministic too.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<Report> {
        // Only materialize reseeded copies when a base seed asks for them;
        // Series-backed scenarios can carry large buffers.
        let reseeded: Option<Vec<Scenario>> = self.base_seed.map(|base| {
            scenarios
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let mut job = s.clone();
                    job.reseed(shard_seed(base, i as u64));
                    job
                })
                .collect()
        });
        let jobs: &[Scenario] = reseeded.as_deref().unwrap_or(scenarios);

        // Two-level scheduling: scenarios across the outer pool, bins
        // across whatever threads the outer level cannot occupy. With
        // more scenarios than threads the inner engines are serial; with
        // one big scenario the inner engine gets every thread. A
        // non-dividing thread count hands its remainder to the
        // lowest-indexed scenarios (a pure function of the job index, so
        // the sizing stays schedule-free; thread counts never change
        // results either way).
        let threads = self.engine.threads();
        let outer_workers = threads.min(jobs.len().max(1));
        let outer = self.engine.with_threads(outer_workers);
        let base_inner = threads / outer_workers;
        let spare = threads % outer_workers;
        let pool: WorkspacePool<()> = WorkspacePool::new();
        let reports = outer.run(jobs.len(), &pool, |i, _| {
            let inner = self
                .engine
                .with_threads(base_inner + usize::from(i < spare));
            jobs[i].run_with(&inner)
        })?;
        Ok(Report { scenarios: reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PriorStrategy;
    use ic_core::SynthConfig;

    fn batch(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                Scenario::builder(format!("s{i}"))
                    .synth(
                        SynthConfig::geant_like(40 + i as u64)
                            .with_nodes(22)
                            .with_bins(6),
                    )
                    .geant22()
                    .prior(PriorStrategy::MeasuredIc)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn reports_follow_input_order() {
        let scenarios = batch(3);
        let report = Runner::new().with_threads(3).run(&scenarios).unwrap();
        let names: Vec<&str> = report.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s0", "s1", "s2"]);
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let scenarios = batch(4);
        let one = Runner::new().with_threads(1).run(&scenarios).unwrap();
        let four = Runner::new().with_threads(4).run(&scenarios).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn two_level_scheduling_agrees_with_serial() {
        // Fewer scenarios than threads: the surplus goes to bin-level
        // parallelism inside each scenario, without changing results.
        let scenarios = batch(2);
        let serial = Runner::new().with_threads(1).run(&scenarios).unwrap();
        let wide = Runner::new()
            .with_engine(Engine::new().with_threads(8).with_shard_bins(2))
            .run(&scenarios)
            .unwrap();
        assert_eq!(serial, wide);
    }

    #[test]
    fn runner_exposes_engine_knobs() {
        let r = Runner::new().with_threads(5);
        assert_eq!(r.threads(), 5);
        assert_eq!(r.engine().threads(), 5);
        let r = Runner::new().with_engine(Engine::serial());
        assert_eq!(r.threads(), 1);
    }

    #[test]
    fn base_seed_overrides_scenario_seeds() {
        let scenarios = batch(2);
        let a = Runner::new()
            .with_threads(2)
            .with_base_seed(9)
            .run(&scenarios)
            .unwrap();
        let b = Runner::new()
            .with_threads(1)
            .with_base_seed(9)
            .run(&scenarios)
            .unwrap();
        assert_eq!(a, b);
        let c = Runner::new()
            .with_threads(2)
            .with_base_seed(10)
            .run(&scenarios)
            .unwrap();
        assert_ne!(
            a.scenarios[0].errors_gravity, c.scenarios[0].errors_gravity,
            "different base seeds must produce different data"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = Runner::new().run(&[]).unwrap();
        assert!(report.scenarios.is_empty());
    }

    #[test]
    fn failing_scenario_reports_first_error_by_index() {
        // Week index out of range is caught at build time; construct a
        // runtime failure instead: estimation with f = 1/2 prior.
        let bad = Scenario::builder("bad")
            .synth(SynthConfig::geant_like(1).with_nodes(22).with_bins(4))
            .geant22()
            .prior(PriorStrategy::Custom(std::sync::Arc::new(
                ic_estimation::StableFPrior { f: 0.5 },
            )))
            .build()
            .unwrap();
        let good = batch(1).remove(0);
        let err = Runner::new().with_threads(2).run(&[good, bad]).unwrap_err();
        assert!(err.to_string().contains("f"), "{err}");
    }
}
