//! Parallel scenario execution.
//!
//! [`Runner`] executes a batch of [`Scenario`]s on a pool of scoped
//! threads. Determinism is by construction, not by luck:
//!
//! * every scenario is self-contained (its own source build, fit, and
//!   pipeline — no shared mutable state between jobs);
//! * per-scenario RNG seeds are derived from the batch seed by index
//!   ([`Runner::with_base_seed`]), never from thread identity or
//!   scheduling order;
//! * reports are collected into per-scenario slots and assembled in
//!   scenario order.
//!
//! Hence a batch run with 1 worker thread and with N worker threads
//! produces **bit-identical** [`Report`]s (covered by this crate's
//! property tests).

use crate::report::Report;
use crate::scenario::Scenario;
use crate::Result;
use ic_stats::rng::derive_seed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Executes scenario batches in parallel.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    base_seed: Option<u64>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// A runner sized to the machine's available parallelism.
    pub fn new() -> Self {
        Runner {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            base_seed: None,
        }
    }

    /// Sets the number of worker threads (clamped to at least 1). The
    /// thread count affects wall-clock time only, never results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Derives each scenario's source seed from `seed` and the scenario's
    /// batch index (`derive_seed(seed, index)`), overriding the seeds in
    /// the scenario configs. Use this to re-randomize a whole batch from
    /// one knob while keeping runs reproducible.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = Some(seed);
        self
    }

    /// Number of worker threads the runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every scenario and assembles the per-scenario reports in
    /// input order. The first failing scenario (by batch index, not by
    /// completion order) determines the returned error, so failures are
    /// deterministic too.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<Report> {
        // Only materialize reseeded copies when a base seed asks for them;
        // Series-backed scenarios can carry large buffers.
        let reseeded: Option<Vec<Scenario>> = self.base_seed.map(|base| {
            scenarios
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let mut job = s.clone();
                    job.reseed(derive_seed(base, i as u64));
                    job
                })
                .collect()
        });
        let jobs: &[Scenario] = reseeded.as_deref().unwrap_or(scenarios);

        let slots: Vec<Mutex<Option<Result<crate::ScenarioReport>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(jobs.len().max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let result = jobs[i].run();
                    *slots[i].lock().expect("slot mutex poisoned") = Some(result);
                });
            }
        });

        let mut reports = Vec::with_capacity(jobs.len());
        for slot in slots {
            let result = slot
                .into_inner()
                .expect("slot mutex poisoned")
                .expect("every job index below len is executed exactly once");
            reports.push(result?);
        }
        Ok(Report { scenarios: reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PriorStrategy;
    use ic_core::SynthConfig;

    fn batch(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                Scenario::builder(format!("s{i}"))
                    .synth(
                        SynthConfig::geant_like(40 + i as u64)
                            .with_nodes(22)
                            .with_bins(6),
                    )
                    .geant22()
                    .prior(PriorStrategy::MeasuredIc)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn reports_follow_input_order() {
        let scenarios = batch(3);
        let report = Runner::new().with_threads(3).run(&scenarios).unwrap();
        let names: Vec<&str> = report.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s0", "s1", "s2"]);
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let scenarios = batch(4);
        let one = Runner::new().with_threads(1).run(&scenarios).unwrap();
        let four = Runner::new().with_threads(4).run(&scenarios).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn base_seed_overrides_scenario_seeds() {
        let scenarios = batch(2);
        let a = Runner::new()
            .with_threads(2)
            .with_base_seed(9)
            .run(&scenarios)
            .unwrap();
        let b = Runner::new()
            .with_threads(1)
            .with_base_seed(9)
            .run(&scenarios)
            .unwrap();
        assert_eq!(a, b);
        let c = Runner::new()
            .with_threads(2)
            .with_base_seed(10)
            .run(&scenarios)
            .unwrap();
        assert_ne!(
            a.scenarios[0].errors_gravity, c.scenarios[0].errors_gravity,
            "different base seeds must produce different data"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = Runner::new().run(&[]).unwrap();
        assert!(report.scenarios.is_empty());
    }

    #[test]
    fn failing_scenario_reports_first_error_by_index() {
        // Week index out of range is caught at build time; construct a
        // runtime failure instead: estimation with f = 1/2 prior.
        let bad = Scenario::builder("bad")
            .synth(SynthConfig::geant_like(1).with_nodes(22).with_bins(4))
            .geant22()
            .prior(PriorStrategy::Custom(std::sync::Arc::new(
                ic_estimation::StableFPrior { f: 0.5 },
            )))
            .build()
            .unwrap();
        let good = batch(1).remove(0);
        let err = Runner::new().with_threads(2).run(&[good, bad]).unwrap_err();
        assert!(err.to_string().contains("f"), "{err}");
    }
}
