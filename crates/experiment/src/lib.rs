//! # ic-experiment — declarative scenarios, a parallel runner, reports
//!
//! The paper's evaluation is a *matrix* of experiments: model variants
//! (Eqs. 3–5) × data sources (synthetic, D1, D2) × measurement scenarios
//! (Sections 6.1–6.3) × pipeline options. Historically each cell was a
//! hand-wired binary; this crate turns a cell into a few builder lines:
//!
//! ```
//! use ic_experiment::{PriorStrategy, Runner, Scenario};
//! use ic_core::SynthConfig;
//!
//! let scenario = Scenario::builder("synth-measured")
//!     .synth(SynthConfig::geant_like(7).with_nodes(22).with_bins(12))
//!     .geant22()
//!     .prior(PriorStrategy::MeasuredIc)
//!     .build()
//!     .unwrap();
//! let report = Runner::new().with_threads(2).run(&[scenario]).unwrap();
//! assert_eq!(report.scenarios.len(), 1);
//! assert!(report.scenarios[0].mean_improvement.is_finite());
//! ```
//!
//! Three pieces:
//!
//! * [`Scenario`] / [`Scenario::builder`] — a declarative description of
//!   one experiment: topology × synth/dataset source × routing (the
//!   observation model) × prior strategy × fit/tomogravity/IPF options ×
//!   task kind ([`Task`]).
//! * [`Runner`] — a thin adapter over the shared [`ic_engine::Engine`],
//!   scheduling at two levels: scenarios across the outer worker pool and
//!   each scenario's bins across an inner engine, so a single large
//!   scenario no longer serializes a batch. Results are **bit-identical
//!   regardless of the worker-thread count**: every scenario is
//!   self-contained, per-scenario seeds are derived deterministically from
//!   the batch seed ([`Runner::with_base_seed`]), and reports are
//!   collected in scenario order.
//! * [`Report`] — structured per-scenario results (error series,
//!   improvement %, fitted parameters) with CSV and JSON emitters.

pub mod report;
pub mod runner;
pub mod scenario;

pub use report::{Report, ScenarioReport};
pub use runner::Runner;
pub use scenario::{PriorStrategy, Scenario, ScenarioBuilder, Source, Task, TopologySpec};

/// Errors produced while building or running scenarios.
#[derive(Debug)]
pub enum ExperimentError {
    /// The scenario description itself is inconsistent (missing source,
    /// out-of-range week index, topology/source node mismatch, ...).
    BadScenario(String),
    /// An underlying model call failed.
    Core(ic_core::IcError),
    /// An underlying estimation-pipeline call failed.
    Estimation(ic_estimation::EstimationError),
    /// An underlying dataset build failed.
    Dataset(ic_datasets::DatasetError),
    /// An underlying topology/routing call failed.
    Topology(ic_topology::TopologyError),
    /// An underlying streaming-replay call failed.
    Stream(ic_stream::StreamError),
}

impl core::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExperimentError::BadScenario(msg) => write!(f, "bad scenario: {msg}"),
            ExperimentError::Core(e) => write!(f, "core model failure: {e}"),
            ExperimentError::Estimation(e) => write!(f, "estimation failure: {e}"),
            ExperimentError::Dataset(e) => write!(f, "dataset failure: {e}"),
            ExperimentError::Topology(e) => write!(f, "topology failure: {e}"),
            ExperimentError::Stream(e) => write!(f, "streaming failure: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::BadScenario(_) => None,
            ExperimentError::Core(e) => Some(e),
            ExperimentError::Estimation(e) => Some(e),
            ExperimentError::Dataset(e) => Some(e),
            ExperimentError::Topology(e) => Some(e),
            ExperimentError::Stream(e) => Some(e),
        }
    }
}

impl From<ic_core::IcError> for ExperimentError {
    fn from(e: ic_core::IcError) -> Self {
        ExperimentError::Core(e)
    }
}

impl From<ic_estimation::EstimationError> for ExperimentError {
    fn from(e: ic_estimation::EstimationError) -> Self {
        ExperimentError::Estimation(e)
    }
}

impl From<ic_datasets::DatasetError> for ExperimentError {
    fn from(e: ic_datasets::DatasetError) -> Self {
        ExperimentError::Dataset(e)
    }
}

impl From<ic_topology::TopologyError> for ExperimentError {
    fn from(e: ic_topology::TopologyError) -> Self {
        ExperimentError::Topology(e)
    }
}

impl From<ic_stream::StreamError> for ExperimentError {
    fn from(e: ic_stream::StreamError) -> Self {
        ExperimentError::Stream(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, ExperimentError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        let e = ExperimentError::BadScenario("no source".into());
        assert!(e.to_string().contains("no source"));
        assert!(std::error::Error::source(&e).is_none());
        let e: ExperimentError = ic_core::IcError::BadData("x").into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ExperimentError = ic_estimation::EstimationError::BadData("y").into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ExperimentError = ic_topology::TopologyError::Empty.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ExperimentError = ic_datasets::DatasetError::Format("z".into()).into();
        assert!(e.to_string().contains("z"));
        assert!(std::error::Error::source(&e).is_some());
        let e: ExperimentError = ic_stream::StreamError::BadConfig("w").into();
        assert!(e.to_string().contains("w"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
