//! Structured experiment results with CSV and JSON emitters.
//!
//! A [`Report`] is the runner's output: one [`ScenarioReport`] per
//! scenario, in batch order. The emitters are dependency-free (no serde in
//! this offline workspace): CSV carries the per-scenario summary row,
//! JSON carries everything including the per-bin series.

use ic_stream::{DriftEvent, SolveStats};
use std::io::{self, Write};

/// Results of one executed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the builder).
    pub name: String,
    /// Task kind (`"estimation"`, `"fit-improvement"`, `"gravity-gap"`).
    pub task: String,
    /// Name of the prior used, for estimation tasks.
    pub prior: Option<String>,
    /// Number of time bins in the target week.
    pub bins: usize,
    /// Per-bin percentage improvement over the gravity baseline
    /// (empty for gravity-gap tasks).
    pub improvement: Vec<f64>,
    /// Mean of the improvement series (0 when empty).
    pub mean_improvement: f64,
    /// Per-bin relative L2 errors of the candidate (IC) estimate.
    pub errors_candidate: Vec<f64>,
    /// Per-bin relative L2 errors of the gravity baseline.
    pub errors_gravity: Vec<f64>,
    /// Fitted forward ratio, when the scenario ran a fit.
    pub fitted_f: Option<f64>,
    /// Final fit objective (mean RelL2), when the scenario ran a fit.
    pub fit_objective: Option<f64>,
    /// Change-detection events fired during a streaming task, flattened
    /// across windows in firing order (empty for non-streaming tasks).
    /// Previously these died inside the replay loop; now they are part
    /// of the report and both emitters carry them.
    pub drift_events: Vec<DriftEvent>,
    /// Solver-health counters accumulated over every normal-equations
    /// solve the scenario performed (prior fits, tomogravity refinement,
    /// streaming windows). All-zero for tasks that never solve
    /// (gravity-gap).
    pub solve_stats: SolveStats,
}

impl ScenarioReport {
    /// Mean candidate error over bins (NaN if the task produced none).
    pub fn mean_candidate_error(&self) -> f64 {
        mean(&self.errors_candidate)
    }

    /// Mean gravity error over bins (NaN if the task produced none).
    pub fn mean_gravity_error(&self) -> f64 {
        mean(&self.errors_gravity)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// 5th/50th/95th percentiles by the same nearest-rank rounding the bench
/// harness uses, so report quantiles agree with the printed figure
/// summaries. One sort serves all three.
fn percentiles(xs: &[f64]) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN, f64::NAN);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    (pick(0.05), pick(0.50), pick(0.95))
}

/// The runner's output: per-scenario reports in batch order.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// One report per scenario, in the order the batch was submitted.
    pub scenarios: Vec<ScenarioReport>,
}

impl Report {
    /// Number of scenario reports.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Renders the summary table as CSV (one row per scenario).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "name,task,prior,bins,mean_improvement,p5_improvement,p50_improvement,\
             p95_improvement,mean_error_candidate,mean_error_gravity,fitted_f,fit_objective,\
             drift_events,dense_solves,pcg_solves,pcg_iterations,pcg_stalls,fallbacks\n",
        );
        for s in &self.scenarios {
            let (p5, p50, p95) = percentiles(&s.improvement);
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                csv_field(&s.name),
                csv_field(&s.task),
                csv_field(s.prior.as_deref().unwrap_or("")),
                s.bins,
                csv_num(s.mean_improvement),
                csv_num(p5),
                csv_num(p50),
                csv_num(p95),
                csv_num(s.mean_candidate_error()),
                csv_num(s.mean_gravity_error()),
                s.fitted_f.map(csv_num).unwrap_or_default(),
                s.fit_objective.map(csv_num).unwrap_or_default(),
                s.drift_events.len(),
                s.solve_stats.dense_solves,
                s.solve_stats.pcg_solves,
                s.solve_stats.pcg_iterations,
                s.solve_stats.pcg_stalls,
                s.solve_stats.fallbacks,
            ));
        }
        out
    }

    /// Writes [`Report::to_csv`] to a writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.to_csv().as_bytes())
    }

    /// Renders the full report (including per-bin series) as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"scenarios\":[");
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"task\":{},\"prior\":{},\"bins\":{},\
                 \"mean_improvement\":{},\"improvement\":{},\
                 \"errors_candidate\":{},\"errors_gravity\":{},\
                 \"fitted_f\":{},\"fit_objective\":{},\"drift_events\":{},\
                 \"solve_stats\":{}}}",
                json_string(&s.name),
                json_string(&s.task),
                s.prior
                    .as_deref()
                    .map(json_string)
                    .unwrap_or_else(|| "null".into()),
                s.bins,
                json_num(s.mean_improvement),
                json_array(&s.improvement),
                json_array(&s.errors_candidate),
                json_array(&s.errors_gravity),
                s.fitted_f.map(json_num).unwrap_or_else(|| "null".into()),
                s.fit_objective
                    .map(json_num)
                    .unwrap_or_else(|| "null".into()),
                json_drift_events(&s.drift_events),
                json_solve_stats(&s.solve_stats),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes [`Report::to_json`] to a writer.
    pub fn write_json<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.to_json().as_bytes())
    }
}

/// CSV field escaping: quote when the field contains a comma, quote or
/// newline; double inner quotes.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Numeric CSV cell; non-finite values render as empty cells.
fn csv_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::new()
    }
}

/// Numeric JSON value; JSON has no NaN/inf, so non-finite becomes null.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_array(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, &v) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_num(v));
    }
    out.push(']');
    out
}

fn json_drift_events(events: &[DriftEvent]) -> String {
    let mut out = String::from("[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"window\":{},\"kind\":{},\"statistic\":{}}}",
            ev.window,
            json_string(ev.kind.as_str()),
            json_num(ev.statistic),
        ));
    }
    out.push(']');
    out
}

fn json_solve_stats(s: &SolveStats) -> String {
    format!(
        "{{\"dense_solves\":{},\"pcg_solves\":{},\"pcg_iterations\":{},\
         \"pcg_stalls\":{},\"fallbacks\":{}}}",
        s.dense_solves, s.pcg_solves, s.pcg_iterations, s.pcg_stalls, s.fallbacks,
    )
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_stream::DriftKind;

    fn sample_report() -> Report {
        Report {
            scenarios: vec![
                ScenarioReport {
                    name: "fig11a, geant".into(),
                    task: "estimation".into(),
                    prior: Some("ic-measured".into()),
                    bins: 3,
                    improvement: vec![10.0, 20.0, 30.0],
                    mean_improvement: 20.0,
                    errors_candidate: vec![0.1, 0.2, 0.3],
                    errors_gravity: vec![0.2, 0.3, 0.4],
                    fitted_f: Some(0.25),
                    fit_objective: Some(0.05),
                    drift_events: vec![DriftEvent {
                        window: 2,
                        kind: DriftKind::ForwardRatioJump,
                        statistic: 0.08,
                    }],
                    solve_stats: SolveStats {
                        dense_solves: 3,
                        pcg_solves: 2,
                        pcg_iterations: 40,
                        pcg_stalls: 1,
                        fallbacks: 1,
                    },
                },
                ScenarioReport {
                    name: "gap".into(),
                    task: "gravity-gap".into(),
                    prior: None,
                    bins: 2,
                    improvement: vec![],
                    mean_improvement: 0.0,
                    errors_candidate: vec![],
                    errors_gravity: vec![0.5, 0.7],
                    fitted_f: None,
                    fit_objective: None,
                    drift_events: Vec::new(),
                    solve_stats: SolveStats::default(),
                },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name,task,prior,bins"));
        // Comma-containing name is quoted.
        assert!(lines[1].starts_with("\"fig11a, geant\",estimation,ic-measured,3,20,"));
        // Missing numerics are empty cells; the solver counters close the
        // row after the drift count.
        assert!(lines[0]
            .ends_with("drift_events,dense_solves,pcg_solves,pcg_iterations,pcg_stalls,fallbacks"));
        assert!(lines[2].ends_with(",,0,0,0,0,0,0"));
        assert!(lines[1].ends_with(",1,3,2,40,1,1"));
        let mut buf = Vec::new();
        sample_report().write_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), csv);
    }

    #[test]
    fn csv_percentiles_match_series() {
        let csv = sample_report().to_csv();
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        // name is quoted and contains a comma, so fields shift by one.
        assert_eq!(row[6], "10"); // p5 of [10, 20, 30]
        assert_eq!(row[7], "20"); // p50
        assert_eq!(row[8], "30"); // p95
    }

    #[test]
    fn json_is_well_formed_and_null_safe() {
        let json = sample_report().to_json();
        assert!(json.starts_with("{\"scenarios\":["));
        assert!(json.contains("\"prior\":\"ic-measured\""));
        assert!(json.contains("\"prior\":null"));
        assert!(json.contains("\"improvement\":[10,20,30]"));
        assert!(json.contains("\"fitted_f\":null"));
        assert!(json.contains(
            "\"drift_events\":[{\"window\":2,\"kind\":\"forward-ratio-jump\",\"statistic\":0.08}]"
        ));
        assert!(json.contains("\"drift_events\":[]"));
        assert!(json.contains(
            "\"solve_stats\":{\"dense_solves\":3,\"pcg_solves\":2,\"pcg_iterations\":40,\
             \"pcg_stalls\":1,\"fallbacks\":1}"
        ));
        assert!(json.contains(
            "\"solve_stats\":{\"dense_solves\":0,\"pcg_solves\":0,\"pcg_iterations\":0,\
             \"pcg_stalls\":0,\"fallbacks\":0}"
        ));
        // NaN means render as null, not as invalid JSON.
        let mut r = sample_report();
        r.scenarios[0].mean_improvement = f64::NAN;
        assert!(r.to_json().contains("\"mean_improvement\":null"));
        let mut buf = Vec::new();
        sample_report().write_json(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), json);
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn mean_helpers() {
        let r = &sample_report().scenarios[0];
        assert!((r.mean_candidate_error() - 0.2).abs() < 1e-12);
        assert!((r.mean_gravity_error() - 0.3).abs() < 1e-12);
        assert!(sample_report().scenarios[1].mean_candidate_error().is_nan());
        assert_eq!(sample_report().len(), 2);
        assert!(!sample_report().is_empty());
    }
}
