//! Declarative experiment scenarios.
//!
//! A [`Scenario`] captures everything one experiment needs — where the
//! traffic comes from ([`Source`]), which network observes it
//! ([`TopologySpec`] + [`ic_topology::RoutingScheme`]), how the prior is
//! constructed ([`PriorStrategy`]), the pipeline options, and what is
//! being measured ([`Task`]) — as plain data. Execution
//! ([`Scenario::run`]) is a pure function of that data, which is what
//! makes the parallel [`crate::Runner`] deterministic.

use crate::report::ScenarioReport;
use crate::{ExperimentError, Result};
use ic_core::{
    fit_stable_fp, generate_synthetic, gravity_predict, improvement_percent, rel_l2_series,
    FitOptions, FitReport, StableFpParams, SynthConfig, TmSeries,
};
use ic_datasets::{build_d1, build_d2, GeantConfig, TotemConfig};
use ic_engine::Engine;
use ic_estimation::{
    compare_priors_with, EstimationConfig, EstimationPipeline, GravityPrior, IpfOptions,
    MeasuredIcPrior, ObservationModel, StableFPrior, StableFpPrior, TmPrior, TomogravityOptions,
};
use ic_stream::{
    replay_estimation_with, replay_fit_with, ReplayOptions, ReplayReport, ReplayStream, SolveStats,
};
use ic_topology::{
    geant22, hierarchical, totem23, waxman, HierarchicalConfig, RoutingScheme, Topology,
    WaxmanConfig,
};
use std::sync::Arc;

/// Which network topology observes the traffic.
#[derive(Debug, Clone)]
pub enum TopologySpec {
    /// The paper's 22-PoP Géant network.
    Geant22,
    /// The paper's 23-PoP Totem network (`de` split into `de1`/`de2`).
    Totem23,
    /// A seeded Waxman-style random topology (scale sweeps; see
    /// [`ic_topology::generators`]).
    Waxman(WaxmanConfig),
    /// A seeded hierarchical backbone/PoP topology (scale sweeps).
    Hierarchical(HierarchicalConfig),
    /// Any custom topology.
    Custom(Topology),
}

impl TopologySpec {
    /// Number of access points of the described topology.
    pub fn nodes(&self) -> usize {
        match self {
            TopologySpec::Geant22 => 22,
            TopologySpec::Totem23 => 23,
            TopologySpec::Waxman(cfg) => cfg.nodes,
            TopologySpec::Hierarchical(cfg) => cfg.node_count(),
            TopologySpec::Custom(t) => t.node_count(),
        }
    }

    fn build(&self) -> Result<Topology> {
        Ok(match self {
            TopologySpec::Geant22 => geant22(),
            TopologySpec::Totem23 => totem23(),
            TopologySpec::Waxman(cfg) => waxman(cfg)?,
            TopologySpec::Hierarchical(cfg) => hierarchical(cfg)?,
            TopologySpec::Custom(t) => t.clone(),
        })
    }
}

/// Where the scenario's traffic-matrix weeks come from.
#[derive(Debug, Clone)]
pub enum Source {
    /// Section 5.5 synthetic generation (one week).
    Synth(SynthConfig),
    /// The synthetic Géant D1 dataset (measured weeks).
    GeantD1(GeantConfig),
    /// The synthetic Totem D2 dataset (measured weeks).
    TotemD2(TotemConfig),
    /// A series supplied directly (one week) — externally collected TMs,
    /// or test fixtures.
    Series(TmSeries),
}

impl Source {
    /// Number of weeks the source will produce (known without building).
    pub fn weeks(&self) -> usize {
        match self {
            Source::Synth(_) | Source::Series(_) => 1,
            Source::GeantD1(cfg) => cfg.weeks,
            Source::TotemD2(cfg) => cfg.weeks,
        }
    }

    /// Number of access points the source will produce.
    pub fn nodes(&self) -> usize {
        match self {
            Source::Synth(cfg) => cfg.nodes,
            Source::GeantD1(_) => 22,
            Source::TotemD2(_) => 23,
            Source::Series(s) => s.nodes(),
        }
    }

    /// Overrides the source's RNG seed (no-op for [`Source::Series`]).
    pub fn reseed(&mut self, seed: u64) {
        match self {
            Source::Synth(cfg) => cfg.seed = seed,
            Source::GeantD1(cfg) => cfg.seed = seed,
            Source::TotemD2(cfg) => cfg.seed = seed,
            Source::Series(_) => {}
        }
    }

    fn build_weeks(&self) -> Result<Vec<TmSeries>> {
        match self {
            Source::Synth(cfg) => Ok(vec![generate_synthetic(cfg)?.series]),
            Source::GeantD1(cfg) => Ok(build_d1(cfg)?.measured_weeks()?),
            Source::TotemD2(cfg) => Ok(build_d2(cfg)?.measured_weeks()?),
            Source::Series(s) => Ok(vec![s.clone()]),
        }
    }
}

/// How the estimation prior is constructed (paper Sections 6.1–6.3).
#[derive(Clone)]
pub enum PriorStrategy {
    /// The gravity baseline.
    Gravity,
    /// Section 6.1: fit all IC parameters on the target week itself (the
    /// paper's "all parameters measured" thought experiment).
    MeasuredIc,
    /// Section 6.2: fit `f` and `{P_i}` on a calibration week, estimate
    /// activities from marginals via Eq. 7–9.
    StableFpFromWeek {
        /// Index of the calibration week within the source's weeks.
        calibration_week: usize,
    },
    /// Section 6.3: carry only `f` from a calibration week; invert the
    /// marginals per bin via Eq. 11–12.
    StableFFromWeek {
        /// Index of the calibration week within the source's weeks.
        calibration_week: usize,
    },
    /// Any dynamically constructed prior (shared across runner threads).
    Custom(Arc<dyn TmPrior>),
}

impl core::fmt::Debug for PriorStrategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PriorStrategy::Gravity => write!(f, "Gravity"),
            PriorStrategy::MeasuredIc => write!(f, "MeasuredIc"),
            PriorStrategy::StableFpFromWeek { calibration_week } => {
                write!(f, "StableFpFromWeek({calibration_week})")
            }
            PriorStrategy::StableFFromWeek { calibration_week } => {
                write!(f, "StableFFromWeek({calibration_week})")
            }
            PriorStrategy::Custom(p) => write!(f, "Custom({})", p.name()),
        }
    }
}

impl PriorStrategy {
    fn calibration_week(&self) -> Option<usize> {
        match self {
            PriorStrategy::StableFpFromWeek { calibration_week }
            | PriorStrategy::StableFFromWeek { calibration_week } => Some(*calibration_week),
            _ => None,
        }
    }
}

/// What the scenario measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Full Section 6 TM estimation: prior → tomogravity → IPF, compared
    /// against the gravity prior on the same observations (the Figure
    /// 11–13 quantity).
    Estimation,
    /// Section 5 direct-fit comparison: stable-fP fit vs the gravity model
    /// on the observed week itself (the Figure 3 quantity).
    FitImprovement,
    /// Gravity structural error alone on the source data (the
    /// model-parameter ablation quantity; no fit is run).
    GravityGap,
    /// Online replay of the target week through `ic-stream`: tumbling or
    /// sliding windows, warm-started incremental IC fits, parameter
    /// forecasting, and drift detection. With a topology configured the
    /// windows run through the streaming tomogravity/IPF pipeline with a
    /// rolling IC prior; without one they run the direct fit-vs-gravity
    /// comparison. Per-window results land in the report's error series
    /// (one entry per window instead of per bin).
    Streaming,
}

impl Task {
    /// Stable identifier used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Estimation => "estimation",
            Task::FitImprovement => "fit-improvement",
            Task::GravityGap => "gravity-gap",
            Task::Streaming => "streaming",
        }
    }
}

/// A fully specified experiment, ready to [`run`](Scenario::run).
///
/// Build with [`Scenario::builder`]; the builder validates week indices
/// and topology/source shape agreement at `build()` time so a batch fails
/// fast rather than deep inside a worker thread.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    source: Source,
    topology: Option<TopologySpec>,
    routing: RoutingScheme,
    prior: PriorStrategy,
    task: Task,
    target_week: usize,
    config: EstimationConfig,
    stream: ReplayOptions,
}

impl Scenario {
    /// Starts building a scenario with the given report name.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            source: None,
            topology: None,
            routing: RoutingScheme::Ecmp,
            prior: PriorStrategy::Gravity,
            task: None,
            target_week: 0,
            config: EstimationConfig::default(),
            stream: ReplayOptions::default(),
        }
    }

    /// The scenario's report name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's task kind.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Overrides the source's RNG seed (used by the runner's batch
    /// seeding; no-op for [`Source::Series`] sources).
    pub fn reseed(&mut self, seed: u64) {
        self.source.reseed(seed);
    }

    /// Executes the scenario serially. Deterministic: equal scenarios
    /// produce bit-identical reports, on any thread. Identical to
    /// [`Scenario::run_with`] on a single-worker engine.
    pub fn run(&self) -> Result<ScenarioReport> {
        self.run_with(&Engine::serial())
    }

    /// Executes the scenario with its bin-parallel work (pipeline
    /// refinement, prior comparison, streaming windows) sharded across
    /// `engine`'s worker pool — the inner level of the
    /// [`Runner`](crate::Runner)'s two-level scheduling. Bit-identical to
    /// [`Scenario::run`] for every thread count and shard size.
    pub fn run_with(&self, engine: &Engine) -> Result<ScenarioReport> {
        let weeks = self.source.build_weeks()?;
        let target = weeks.get(self.target_week).ok_or_else(|| {
            ExperimentError::BadScenario(format!(
                "scenario '{}': target week {} out of range ({} weeks)",
                self.name,
                self.target_week,
                weeks.len()
            ))
        })?;
        match self.task {
            Task::Estimation => self.run_estimation(&weeks, target, engine),
            Task::FitImprovement => self.run_fit_improvement(target),
            Task::GravityGap => self.run_gravity_gap(target),
            Task::Streaming => self.run_streaming(target, engine),
        }
    }

    fn fit_week(&self, week: &TmSeries) -> Result<FitReport<StableFpParams>> {
        Ok(fit_stable_fp(week, self.config.fit.clone())?)
    }

    fn run_estimation(
        &self,
        weeks: &[TmSeries],
        target: &TmSeries,
        engine: &Engine,
    ) -> Result<ScenarioReport> {
        // Step 1: construct the prior per the measurement scenario.
        let mut fitted_f = None;
        let mut fit_objective = None;
        let mut solve_stats = SolveStats::default();
        let mut record_fit = |fit: &FitReport<StableFpParams>| {
            fitted_f = Some(fit.params.f);
            fit_objective = Some(fit.final_objective());
            solve_stats.merge(&fit.solve_stats);
        };
        let prior: Box<dyn TmPrior> = match &self.prior {
            PriorStrategy::Gravity => Box::new(GravityPrior),
            PriorStrategy::MeasuredIc => {
                let fit = self.fit_week(target)?;
                record_fit(&fit);
                Box::new(MeasuredIcPrior { params: fit.params })
            }
            PriorStrategy::StableFpFromWeek { calibration_week } => {
                let fit = self.fit_week(&weeks[*calibration_week])?;
                record_fit(&fit);
                Box::new(StableFpPrior {
                    f: fit.params.f,
                    preference: fit.params.preference,
                })
            }
            PriorStrategy::StableFFromWeek { calibration_week } => {
                let fit = self.fit_week(&weeks[*calibration_week])?;
                record_fit(&fit);
                Box::new(StableFPrior { f: fit.params.f })
            }
            PriorStrategy::Custom(p) => Box::new(SharedPrior(Arc::clone(p))),
        };

        // Steps 2–3: observe the target week, run both pipelines, compare.
        let topo = self
            .topology
            .as_ref()
            .expect("builder enforces a topology for estimation scenarios")
            .build()?;
        let om = ObservationModel::new(&topo, self.routing)?;
        let obs = om.observe(target)?;
        let pipeline = EstimationPipeline::new(om).config(self.config.clone());
        let cmp = compare_priors_with(&pipeline, prior.as_ref(), target, &obs, engine)?;
        solve_stats.merge(&cmp.solve_stats);

        Ok(ScenarioReport {
            name: self.name.clone(),
            task: self.task.name().to_string(),
            prior: Some(prior.name().to_string()),
            bins: target.bins(),
            improvement: cmp.improvement,
            mean_improvement: cmp.mean_improvement,
            errors_candidate: cmp.errors_candidate,
            errors_gravity: cmp.errors_gravity,
            fitted_f,
            fit_objective,
            drift_events: Vec::new(),
            solve_stats,
        })
    }

    fn run_fit_improvement(&self, target: &TmSeries) -> Result<ScenarioReport> {
        let fit = self.fit_week(target)?;
        let ic_pred = fit.predict(target.bin_seconds())?;
        let grav = gravity_predict(target)?;
        let errors_candidate = rel_l2_series(target, &ic_pred)?;
        let errors_gravity = rel_l2_series(target, &grav)?;
        let improvement: Vec<f64> = errors_gravity
            .iter()
            .zip(errors_candidate.iter())
            .map(|(&g, &c)| improvement_percent(g, c))
            .collect();
        let mean_improvement = improvement.iter().sum::<f64>() / improvement.len().max(1) as f64;
        Ok(ScenarioReport {
            name: self.name.clone(),
            task: self.task.name().to_string(),
            prior: None,
            bins: target.bins(),
            improvement,
            mean_improvement,
            errors_candidate,
            errors_gravity,
            fitted_f: Some(fit.params.f),
            fit_objective: Some(fit.final_objective()),
            drift_events: Vec::new(),
            solve_stats: fit.solve_stats,
        })
    }

    fn run_streaming(&self, target: &TmSeries, engine: &Engine) -> Result<ScenarioReport> {
        // The scenario-level fit options drive the per-window refits, the
        // same single source of truth the other tasks use.
        let options = self
            .stream
            .clone()
            .with_fit_options(self.config.fit.clone());
        let mut stream = ReplayStream::new(target.clone());
        let (replay, prior): (ReplayReport, Option<String>) = match &self.topology {
            Some(spec) => {
                let om = ObservationModel::new(&spec.build()?, self.routing)?;
                let pipeline = EstimationPipeline::new(om).config(self.config.clone());
                let replay = replay_estimation_with(&mut stream, pipeline, &options, engine)?;
                (replay, Some("ic-rolling-fit".to_string()))
            }
            None => (replay_fit_with(&mut stream, &options, engine)?, None),
        };
        let improvement: Vec<f64> = replay.windows.iter().map(|w| w.improvement).collect();
        let errors_candidate: Vec<f64> = replay.windows.iter().map(|w| w.error_candidate).collect();
        let errors_gravity: Vec<f64> = replay.windows.iter().map(|w| w.error_gravity).collect();
        // Surface every fired change-detection event instead of dropping
        // them inside the replay loop.
        let drift_events: Vec<_> = replay
            .windows
            .iter()
            .flat_map(|w| w.drift_events.iter().cloned())
            .collect();
        let last = replay.windows.last().expect("replay yields >= 1 window");
        Ok(ScenarioReport {
            name: self.name.clone(),
            task: self.task.name().to_string(),
            prior,
            bins: replay.total_bins(),
            improvement,
            mean_improvement: replay.mean_improvement(),
            errors_candidate,
            errors_gravity,
            fitted_f: Some(last.fitted_f),
            fit_objective: Some(last.fit_objective),
            drift_events,
            solve_stats: replay.total_solve_stats(),
        })
    }

    fn run_gravity_gap(&self, target: &TmSeries) -> Result<ScenarioReport> {
        let grav = gravity_predict(target)?;
        let errors_gravity = rel_l2_series(target, &grav)?;
        Ok(ScenarioReport {
            name: self.name.clone(),
            task: self.task.name().to_string(),
            prior: None,
            bins: target.bins(),
            improvement: Vec::new(),
            mean_improvement: 0.0,
            errors_candidate: Vec::new(),
            errors_gravity,
            fitted_f: None,
            fit_objective: None,
            drift_events: Vec::new(),
            solve_stats: SolveStats::default(),
        })
    }
}

/// Adapter so an `Arc<dyn TmPrior>` can travel as a `Box<dyn TmPrior>`
/// without cloning the underlying prior.
struct SharedPrior(Arc<dyn TmPrior>);

impl TmPrior for SharedPrior {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn prior_series(&self, obs: &ic_estimation::Observations) -> ic_estimation::Result<TmSeries> {
        self.0.prior_series(obs)
    }
}

/// Builder for [`Scenario`] — see [`Scenario::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    source: Option<Source>,
    topology: Option<TopologySpec>,
    routing: RoutingScheme,
    prior: PriorStrategy,
    task: Option<Task>,
    target_week: usize,
    config: EstimationConfig,
    stream: ReplayOptions,
}

impl ScenarioBuilder {
    /// Sets the traffic source.
    pub fn source(mut self, source: Source) -> Self {
        self.source = Some(source);
        self
    }

    /// Shorthand for a Section 5.5 synthetic source.
    pub fn synth(self, config: SynthConfig) -> Self {
        self.source(Source::Synth(config))
    }

    /// Shorthand for the Géant D1 dataset source.
    pub fn dataset_d1(self, config: GeantConfig) -> Self {
        self.source(Source::GeantD1(config))
    }

    /// Shorthand for the Totem D2 dataset source.
    pub fn dataset_d2(self, config: TotemConfig) -> Self {
        self.source(Source::TotemD2(config))
    }

    /// Shorthand for a directly supplied series source.
    pub fn series(self, series: TmSeries) -> Self {
        self.source(Source::Series(series))
    }

    /// Sets the observing topology.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = Some(spec);
        self
    }

    /// Shorthand for the 22-PoP Géant topology.
    pub fn geant22(self) -> Self {
        self.topology(TopologySpec::Geant22)
    }

    /// Shorthand for the 23-PoP Totem topology.
    pub fn totem23(self) -> Self {
        self.topology(TopologySpec::Totem23)
    }

    /// Shorthand for a seeded Waxman random topology of `nodes` nodes —
    /// the scale-sweep workhorse.
    pub fn waxman(self, nodes: usize, seed: u64) -> Self {
        self.topology(TopologySpec::Waxman(WaxmanConfig::new(nodes, seed)))
    }

    /// Shorthand for a seeded hierarchical backbone/PoP topology.
    pub fn hierarchical(self, backbones: usize, pops_per_backbone: usize, seed: u64) -> Self {
        self.topology(TopologySpec::Hierarchical(HierarchicalConfig::new(
            backbones,
            pops_per_backbone,
            seed,
        )))
    }

    /// Sets the routing scheme of the observation model (default ECMP).
    pub fn routing(mut self, scheme: RoutingScheme) -> Self {
        self.routing = scheme;
        self
    }

    /// Sets the prior strategy used by [`Task::Estimation`] scenarios
    /// (default gravity). Non-estimation tasks ignore the prior.
    pub fn prior(mut self, prior: PriorStrategy) -> Self {
        self.prior = prior;
        self
    }

    /// Sets the task kind explicitly (default [`Task::Estimation`]).
    pub fn task(mut self, task: Task) -> Self {
        self.task = Some(task);
        self
    }

    /// Shorthand for [`Task::FitImprovement`].
    pub fn fit_improvement(self) -> Self {
        self.task(Task::FitImprovement)
    }

    /// Shorthand for [`Task::GravityGap`].
    pub fn gravity_gap(self) -> Self {
        self.task(Task::GravityGap)
    }

    /// Shorthand for [`Task::Streaming`] with the given replay options
    /// (window size/stride, warm start, forecast and drift settings). The
    /// per-window fit uses the scenario's configured fit options
    /// ([`EstimationConfig::with_fit`] via [`config`]; the replay
    /// options' own `fit` field is overridden).
    ///
    /// [`config`]: ScenarioBuilder::config
    pub fn streaming(mut self, options: ReplayOptions) -> Self {
        self.stream = options;
        self.task(Task::Streaming)
    }

    /// Selects which week of the source is the estimation/fit target
    /// (default 0).
    pub fn target_week(mut self, week: usize) -> Self {
        self.target_week = week;
        self
    }

    /// Replaces the scenario's whole estimation configuration — fit,
    /// tomogravity, IPF, solver policy, and batched execution — in one
    /// call. The single configuration entry point; the setters below are
    /// deprecated forwarders onto it.
    pub fn config(mut self, config: EstimationConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the Section 5.1 fit options used wherever the scenario fits.
    #[deprecated(note = "use `config` with `EstimationConfig::with_fit`")]
    pub fn fit_options(mut self, options: FitOptions) -> Self {
        self.config.fit = options;
        self
    }

    /// Sets the tomogravity refinement options.
    #[deprecated(note = "use `config` with `EstimationConfig::with_tomogravity`")]
    pub fn tomogravity(mut self, options: TomogravityOptions) -> Self {
        self.config.tomogravity = options;
        self
    }

    /// Sets the IPF options.
    #[deprecated(note = "use `config` with `EstimationConfig::with_ipf`")]
    pub fn ipf(mut self, options: IpfOptions) -> Self {
        self.config.ipf = options;
        self
    }

    /// Selects the normal-equations solver for every solve the scenario
    /// performs: the tomogravity refinement of the estimation/streaming
    /// tasks and the activity subproblems of the BCD fits.
    #[deprecated(note = "use `config` with `EstimationConfig::with_solver`")]
    pub fn solver(mut self, policy: ic_core::SolverPolicy) -> Self {
        self.config = self.config.with_solver(policy);
        self
    }

    /// Validates the description and produces the immutable [`Scenario`].
    pub fn build(self) -> Result<Scenario> {
        let bad = |msg: String| Err(ExperimentError::BadScenario(msg));
        let Some(source) = self.source else {
            return bad(format!("scenario '{}': no source configured", self.name));
        };
        let task = self.task.unwrap_or(Task::Estimation);
        if self.target_week >= source.weeks() {
            return bad(format!(
                "scenario '{}': target week {} out of range ({} weeks)",
                self.name,
                self.target_week,
                source.weeks()
            ));
        }
        if let Some(cal) = self.prior.calibration_week() {
            if cal >= source.weeks() {
                return bad(format!(
                    "scenario '{}': calibration week {cal} out of range ({} weeks)",
                    self.name,
                    source.weeks()
                ));
            }
        }
        if task == Task::Estimation {
            let Some(topology) = &self.topology else {
                return bad(format!(
                    "scenario '{}': estimation requires a topology",
                    self.name
                ));
            };
            let n = source.nodes();
            if n != topology.nodes() {
                return bad(format!(
                    "scenario '{}': source has {n} nodes but topology has {}",
                    self.name,
                    topology.nodes()
                ));
            }
        }
        if task == Task::Streaming {
            if self.stream.window_bins == 0 {
                return bad(format!(
                    "scenario '{}': streaming window must be positive",
                    self.name
                ));
            }
            // A topology is optional for streaming (it selects the
            // pipeline flavor), but when present it must match the source.
            if let Some(topology) = &self.topology {
                let n = source.nodes();
                if n != topology.nodes() {
                    return bad(format!(
                        "scenario '{}': source has {n} nodes but topology has {}",
                        self.name,
                        topology.nodes()
                    ));
                }
            }
        }
        Ok(Scenario {
            name: self.name,
            source,
            topology: self.topology,
            routing: self.routing,
            prior: self.prior,
            task,
            target_week: self.target_week,
            config: self.config,
            stream: self.stream,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_estimation::compare_priors;

    fn tiny_synth() -> SynthConfig {
        SynthConfig::geant_like(3).with_nodes(22).with_bins(8)
    }

    #[test]
    fn builder_rejects_missing_source() {
        let err = Scenario::builder("s").geant22().build().unwrap_err();
        assert!(err.to_string().contains("no source"), "{err}");
    }

    #[test]
    fn builder_rejects_missing_topology_for_estimation() {
        let err = Scenario::builder("s")
            .synth(tiny_synth())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("requires a topology"), "{err}");
    }

    #[test]
    fn builder_rejects_out_of_range_weeks() {
        let err = Scenario::builder("s")
            .synth(tiny_synth())
            .geant22()
            .target_week(1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("target week"), "{err}");
        let err = Scenario::builder("s")
            .synth(tiny_synth())
            .geant22()
            .prior(PriorStrategy::StableFpFromWeek {
                calibration_week: 3,
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("calibration week"), "{err}");
    }

    #[test]
    fn builder_rejects_node_mismatch() {
        let err = Scenario::builder("s")
            .synth(tiny_synth().with_nodes(5))
            .geant22()
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nodes"), "{err}");
    }

    #[test]
    fn fit_improvement_needs_no_topology() {
        let sc = Scenario::builder("fit")
            .synth(tiny_synth().with_nodes(4))
            .fit_improvement()
            .build()
            .unwrap();
        let report = sc.run().unwrap();
        assert_eq!(report.task, "fit-improvement");
        assert_eq!(report.bins, 8);
        assert_eq!(report.improvement.len(), 8);
        assert!(report.fitted_f.is_some());
        // Synthetic data is exactly IC, so the fit dominates gravity.
        assert!(report.mean_improvement > 0.0);
        // The fit's activity subproblems surface as solver-health counters.
        assert!(report.solve_stats.solves() > 0);
    }

    #[test]
    fn gravity_gap_reports_gravity_errors_only() {
        let sc = Scenario::builder("gap")
            .synth(tiny_synth().with_nodes(4).with_noise_cv(0.0))
            .gravity_gap()
            .build()
            .unwrap();
        let report = sc.run().unwrap();
        assert_eq!(report.task, "gravity-gap");
        assert!(report.improvement.is_empty());
        assert!(report.errors_candidate.is_empty());
        assert_eq!(report.errors_gravity.len(), 8);
        assert!(report.mean_gravity_error() > 0.0);
        // Gravity-gap never solves normal equations.
        assert_eq!(report.solve_stats, Default::default());
    }

    #[test]
    fn estimation_scenario_matches_hand_wired_pipeline() {
        // The scenario must reproduce the manual wiring bit-for-bit.
        let cfg = tiny_synth();
        let sc = Scenario::builder("est")
            .synth(cfg.clone())
            .geant22()
            .prior(PriorStrategy::MeasuredIc)
            .build()
            .unwrap();
        let report = sc.run().unwrap();

        let truth = generate_synthetic(&cfg).unwrap().series;
        let fit = fit_stable_fp(&truth, FitOptions::default()).unwrap();
        let om = ObservationModel::new(&geant22(), RoutingScheme::Ecmp).unwrap();
        let obs = om.observe(&truth).unwrap();
        let pipeline = EstimationPipeline::new(om);
        let cmp = compare_priors(
            &pipeline,
            &MeasuredIcPrior {
                params: fit.params.clone(),
            },
            &truth,
            &obs,
        )
        .unwrap();
        assert_eq!(report.improvement, cmp.improvement);
        assert_eq!(report.errors_candidate, cmp.errors_candidate);
        assert_eq!(report.errors_gravity, cmp.errors_gravity);
        assert_eq!(report.fitted_f, Some(fit.params.f));
        assert_eq!(report.prior.as_deref(), Some("ic-measured"));
    }

    #[test]
    fn solver_builder_applies_to_fit_and_tomogravity() {
        use ic_core::SolverPolicy;

        // The deprecated `solver` forwarder and the unified config route
        // must produce the same scenario.
        #[allow(deprecated)]
        let sc = Scenario::builder("pcg")
            .synth(tiny_synth())
            .geant22()
            .solver(SolverPolicy::Pcg)
            .build()
            .unwrap();
        assert_eq!(sc.config.fit.solver, SolverPolicy::Pcg);
        assert_eq!(sc.config.tomogravity.solver, SolverPolicy::Pcg);
        let pcg = sc.run().unwrap();
        let dense = Scenario::builder("dense")
            .synth(tiny_synth())
            .geant22()
            .config(EstimationConfig::new().with_solver(SolverPolicy::Dense))
            .build()
            .unwrap()
            .run()
            .unwrap();
        // Same scenario, both solvers: estimates agree to estimation
        // tolerance, well inside the improvement metric's resolution.
        for (a, b) in pcg.improvement.iter().zip(dense.improvement.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_scenario_is_bit_identical_to_per_bin() {
        // Same scenario with and without a SoA batch width, estimation
        // and streaming tasks: reports are bitwise equal.
        let estimation = |config: EstimationConfig| {
            Scenario::builder("batch-est")
                .synth(tiny_synth())
                .geant22()
                .config(config)
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        assert_eq!(
            estimation(EstimationConfig::new()),
            estimation(EstimationConfig::new().with_batch_width(3))
        );
        let streaming = |config: EstimationConfig| {
            Scenario::builder("batch-stream")
                .synth(tiny_synth().with_nodes(22).with_bins(12))
                .geant22()
                .streaming(ReplayOptions::default().with_window_bins(4))
                .config(config)
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        assert_eq!(
            streaming(EstimationConfig::new()),
            streaming(EstimationConfig::new().with_batch_width(4))
        );
    }

    #[test]
    fn custom_prior_strategy_runs() {
        let sc = Scenario::builder("custom")
            .synth(tiny_synth())
            .geant22()
            .prior(PriorStrategy::Custom(Arc::new(StableFPrior { f: 0.25 })))
            .build()
            .unwrap();
        let report = sc.run().unwrap();
        assert_eq!(report.prior.as_deref(), Some("ic-stable-f"));
        assert_eq!(report.improvement.len(), 8);
        assert!(format!("{:?}", PriorStrategy::Custom(Arc::new(GravityPrior))).contains("gravity"));
    }

    #[test]
    fn streaming_fit_scenario_reports_per_window() {
        let sc = Scenario::builder("stream-fit")
            .synth(tiny_synth().with_nodes(4).with_bins(12))
            .streaming(ReplayOptions::default().with_window_bins(4))
            .build()
            .unwrap();
        assert_eq!(sc.task(), Task::Streaming);
        let report = sc.run().unwrap();
        assert_eq!(report.task, "streaming");
        assert_eq!(report.prior, None);
        assert_eq!(report.bins, 12);
        assert_eq!(report.improvement.len(), 3); // one entry per window
        assert!(report.fitted_f.is_some());
        // Synthetic data is exactly IC: every window's fit beats gravity.
        assert!(report.mean_improvement > 0.0);
    }

    #[test]
    fn streaming_estimation_scenario_uses_rolling_prior() {
        let sc = Scenario::builder("stream-est")
            .synth(tiny_synth())
            .geant22()
            .streaming(ReplayOptions::default().with_window_bins(4))
            .build()
            .unwrap();
        let report = sc.run().unwrap();
        assert_eq!(report.prior.as_deref(), Some("ic-rolling-fit"));
        assert_eq!(report.improvement.len(), 2);
        assert_eq!(report.errors_candidate.len(), 2);
        // The per-window tomogravity refits land in the solver counters.
        assert!(report.solve_stats.dense_solves > 0);
        // Window 1 estimates from observations with window 0's fit as
        // its prior; on IC data that beats the gravity prior.
        assert!(report.improvement[1] > 0.0, "{:?}", report.improvement);
    }

    #[test]
    fn streaming_builder_validation() {
        let err = Scenario::builder("s")
            .synth(tiny_synth().with_nodes(5))
            .geant22()
            .streaming(ReplayOptions::default().with_window_bins(4))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nodes"), "{err}");
        let err = Scenario::builder("s")
            .synth(tiny_synth())
            .streaming(ReplayOptions::default().with_window_bins(0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("window"), "{err}");
        // A stream shorter than one window fails at run time.
        let sc = Scenario::builder("s")
            .synth(tiny_synth().with_nodes(4))
            .streaming(ReplayOptions::default().with_window_bins(99))
            .build()
            .unwrap();
        assert!(sc.run().is_err());
    }

    #[test]
    fn scaled_topology_scenarios_run() {
        // Waxman topology at a size beyond any hand-built network.
        let sc = Scenario::builder("wax")
            .synth(SynthConfig::geant_like(5).with_nodes(30).with_bins(2))
            .waxman(30, 11)
            .build()
            .unwrap();
        let report = sc.run().unwrap();
        assert_eq!(report.bins, 2);
        assert_eq!(sc.run().unwrap(), report, "scenario must be deterministic");
        // Hierarchical backbone/PoP topology.
        let sc = Scenario::builder("hier")
            .synth(SynthConfig::geant_like(6).with_nodes(12).with_bins(2))
            .hierarchical(3, 3, 9)
            .build()
            .unwrap();
        assert!(sc.run().is_ok());
        // Node-count mismatch is still caught at build time.
        let err = Scenario::builder("bad")
            .synth(tiny_synth())
            .waxman(9, 1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nodes"), "{err}");
    }

    #[test]
    fn reseed_changes_synthetic_outcome_deterministically() {
        let mut a = Scenario::builder("a")
            .synth(tiny_synth().with_nodes(4))
            .fit_improvement()
            .build()
            .unwrap();
        let mut b = a.clone();
        a.reseed(100);
        b.reseed(100);
        assert_eq!(a.run().unwrap(), b.run().unwrap());
        let mut c = Scenario::builder("a")
            .synth(tiny_synth().with_nodes(4))
            .fit_improvement()
            .build()
            .unwrap();
        c.reseed(101);
        assert_ne!(
            a.run().unwrap().errors_gravity,
            c.run().unwrap().errors_gravity
        );
    }
}
