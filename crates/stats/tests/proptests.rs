//! Property-based tests for the statistics substrate.

use ic_stats::dist::{Exponential, LogNormal, Normal, Pareto, Poisson, Sample};
use ic_stats::summary::quantile;
use ic_stats::{empirical_ccdf, ks_distance, pearson, seeded_rng, spearman, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantile_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..40)) {
        let s = Summary::of(&xs).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let q = quantile(&xs, k as f64 / 10.0).unwrap();
            prop_assert!(q >= prev);
            prop_assert!(q >= s.min - 1e-9 && q <= s.max + 1e-9);
            prev = q;
        }
    }

    /// The empirical CCDF is a non-increasing step function from 1 to 0.
    #[test]
    fn ccdf_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let c = empirical_ccdf(&xs).unwrap();
        let pts = c.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        prop_assert_eq!(c.eval(f64::NEG_INFINITY + 1.0), 1.0);
        prop_assert_eq!(c.eval(pts.last().unwrap().0), 0.0);
    }

    /// KS distance lies in [0, 1] for any model function.
    #[test]
    fn ks_bounded(xs in proptest::collection::vec(0.1f64..1e3, 1..40), rate in 0.01f64..10.0) {
        let d = Exponential::new(rate).unwrap();
        let ks = ks_distance(&xs, |x| d.ccdf(x)).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ks));
    }

    /// Correlation coefficients live in [-1, 1] and are symmetric.
    #[test]
    fn correlation_bounds(
        xs in proptest::collection::vec(-100.0f64..100.0, 3..30),
        seed in any::<u64>(),
    ) {
        // Derive a second sample with nonzero variance deterministically.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 0.5 + ((i as u64 ^ seed) % 97) as f64)
            .collect();
        if let (Ok(r), Ok(rho)) = (pearson(&xs, &ys), spearman(&xs, &ys)) {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&rho));
            let r2 = pearson(&ys, &xs).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    /// Samplers respect their supports for arbitrary valid parameters.
    #[test]
    fn samplers_respect_support(
        mu in -5.0f64..5.0,
        sigma in 0.1f64..3.0,
        rate in 0.01f64..10.0,
        xm in 0.1f64..100.0,
        alpha in 0.5f64..4.0,
        lambda in 0.0f64..200.0,
        seed in any::<u64>(),
    ) {
        let mut rng = seeded_rng(seed);
        let ln = LogNormal::new(mu, sigma).unwrap();
        let ex = Exponential::new(rate).unwrap();
        let pa = Pareto::new(xm, alpha).unwrap();
        let po = Poisson::new(lambda).unwrap();
        for _ in 0..32 {
            prop_assert!(ln.sample(&mut rng) > 0.0);
            prop_assert!(ex.sample(&mut rng) >= 0.0);
            prop_assert!(pa.sample(&mut rng) >= xm);
            let k = po.sample(&mut rng);
            prop_assert!(k >= 0.0 && k.fract() == 0.0);
        }
        // Normal samples are finite.
        let n = Normal::new(mu, sigma).unwrap();
        prop_assert!(n.sample(&mut rng).is_finite());
    }

    /// Summary invariants: min <= median <= max, std >= 0.
    #[test]
    fn summary_invariants(xs in proptest::collection::vec(-1e9f64..1e9, 1..60)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, xs.len());
    }
}
