//! Cyclostationary diurnal activity model.
//!
//! Section 5.4 of the paper observes that activity levels `A_i(t)` show
//! "strong periodic patterns ... corresponding to daily variation as well as
//! to reduced activity on the weekend", and that nodes with higher activity
//! show a *more pronounced* (less noisy) pattern, "consistent with the
//! aggregation of a higher number of users". Section 5.5 recommends a
//! cyclostationary model (superposition of a limited number of periodic
//! waveforms, Soule et al. \[20\]) for generating activity inputs.
//!
//! [`DiurnalModel`] implements exactly that: a base level modulated by one
//! or two daily harmonics, attenuated on weekends, with multiplicative
//! lognormal noise whose coefficient of variation shrinks as the base level
//! grows (the aggregation effect).

use crate::dist::{LogNormal, Sample};
use crate::{Result, StatsError};
use rand::Rng;

/// Shape of the daily/weekly cycle, shared by all nodes of a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalProfile {
    /// Number of time bins per day (e.g. 288 for 5-minute bins).
    pub bins_per_day: usize,
    /// Fraction of the day at which activity peaks (0.58 ≈ 14:00).
    pub peak_time: f64,
    /// Relative amplitude of the fundamental daily harmonic, in `[0, 1)`.
    pub daily_amplitude: f64,
    /// Relative amplitude of the second harmonic (morning/evening double
    /// hump); usually much smaller than `daily_amplitude`.
    pub second_harmonic: f64,
    /// Multiplier applied on Saturdays and Sundays (e.g. 0.6 for a 40%
    /// weekend dip).
    pub weekend_factor: f64,
    /// Day of week of bin 0, with 0 = Monday … 6 = Sunday.
    pub start_weekday: usize,
}

impl DiurnalProfile {
    /// A profile resembling European research-network traffic: 5-minute
    /// bins, mid-afternoon peak, pronounced diurnal swing, weekend dip.
    pub fn european_5min() -> Self {
        DiurnalProfile {
            bins_per_day: 288,
            peak_time: 0.58,
            daily_amplitude: 0.55,
            second_harmonic: 0.12,
            weekend_factor: 0.60,
            start_weekday: 0,
        }
    }

    /// The same shape at 15-minute resolution (96 bins/day).
    pub fn european_15min() -> Self {
        DiurnalProfile {
            bins_per_day: 96,
            ..Self::european_5min()
        }
    }

    /// Validates the profile parameters.
    pub fn validate(&self) -> Result<()> {
        if self.bins_per_day == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins_per_day",
                value: 0.0,
                constraint: "must be positive",
            });
        }
        if !(0.0..1.0).contains(&self.peak_time) {
            return Err(StatsError::InvalidParameter {
                name: "peak_time",
                value: self.peak_time,
                constraint: "must lie in [0, 1)",
            });
        }
        if !(0.0..1.0).contains(&self.daily_amplitude) {
            return Err(StatsError::InvalidParameter {
                name: "daily_amplitude",
                value: self.daily_amplitude,
                constraint: "must lie in [0, 1)",
            });
        }
        if self.second_harmonic < 0.0 || self.second_harmonic + self.daily_amplitude >= 1.0 {
            return Err(StatsError::InvalidParameter {
                name: "second_harmonic",
                value: self.second_harmonic,
                constraint: "must be >= 0 with daily_amplitude + second_harmonic < 1",
            });
        }
        if !(self.weekend_factor > 0.0) || self.weekend_factor > 1.5 {
            return Err(StatsError::InvalidParameter {
                name: "weekend_factor",
                value: self.weekend_factor,
                constraint: "must lie in (0, 1.5]",
            });
        }
        if self.start_weekday > 6 {
            return Err(StatsError::InvalidParameter {
                name: "start_weekday",
                value: self.start_weekday as f64,
                constraint: "must lie in 0..=6 (0 = Monday)",
            });
        }
        Ok(())
    }

    /// The deterministic (noise-free) modulation factor at bin `t`.
    ///
    /// Always strictly positive for a validated profile.
    pub fn modulation(&self, t: usize) -> f64 {
        let day = t / self.bins_per_day;
        let frac = (t % self.bins_per_day) as f64 / self.bins_per_day as f64;
        let phase = 2.0 * core::f64::consts::PI * (frac - self.peak_time);
        let cycle =
            1.0 + self.daily_amplitude * phase.cos() + self.second_harmonic * (2.0 * phase).cos();
        let weekday = (self.start_weekday + day) % 7;
        let weekend = if weekday >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        cycle * weekend
    }
}

/// Per-node activity generator: base level × diurnal modulation × noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalModel {
    profile: DiurnalProfile,
    base: f64,
    noise_cv: f64,
}

impl DiurnalModel {
    /// Creates a model for one node.
    ///
    /// * `base` — mean activity level in bytes per bin; must be positive.
    /// * `noise_cv` — coefficient of variation of the multiplicative
    ///   lognormal noise; must be in `[0, 2]`.
    pub fn new(profile: DiurnalProfile, base: f64, noise_cv: f64) -> Result<Self> {
        profile.validate()?;
        if !(base > 0.0) || !base.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "base",
                value: base,
                constraint: "must be positive and finite",
            });
        }
        if !(0.0..=2.0).contains(&noise_cv) {
            return Err(StatsError::InvalidParameter {
                name: "noise_cv",
                value: noise_cv,
                constraint: "must lie in [0, 2]",
            });
        }
        Ok(DiurnalModel {
            profile,
            base,
            noise_cv,
        })
    }

    /// Creates a model whose noise shrinks with aggregation level, the
    /// Section 5.4 effect: `cv = cv_ref * sqrt(base_ref / base)`, clamped
    /// to `[0.02, 0.8]`.
    pub fn with_aggregation_noise(
        profile: DiurnalProfile,
        base: f64,
        cv_ref: f64,
        base_ref: f64,
    ) -> Result<Self> {
        if !(base_ref > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "base_ref",
                value: base_ref,
                constraint: "must be positive",
            });
        }
        let cv = (cv_ref * (base_ref / base).sqrt()).clamp(0.02, 0.8);
        DiurnalModel::new(profile, base, cv)
    }

    /// Base (mean) activity level.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Noise coefficient of variation.
    pub fn noise_cv(&self) -> f64 {
        self.noise_cv
    }

    /// The profile shared with other nodes.
    pub fn profile(&self) -> &DiurnalProfile {
        &self.profile
    }

    /// Deterministic expected value at bin `t` (no noise).
    pub fn expected(&self, t: usize) -> f64 {
        self.base * self.profile.modulation(t)
    }

    /// Samples the activity level at bin `t`.
    pub fn sample_at<R: Rng + ?Sized>(&self, t: usize, rng: &mut R) -> f64 {
        let expected = self.expected(t);
        if self.noise_cv == 0.0 {
            return expected;
        }
        // Lognormal multiplicative noise with unit mean and the requested
        // coefficient of variation: sigma² = ln(1 + cv²), mu = −sigma²/2.
        let sigma2 = (1.0 + self.noise_cv * self.noise_cv).ln();
        let noise = LogNormal::new(-sigma2 / 2.0, sigma2.sqrt())
            .expect("validated parameters")
            .sample(rng);
        expected * noise
    }

    /// Generates a full activity time series of `bins` values.
    pub fn generate<R: Rng + ?Sized>(&self, bins: usize, rng: &mut R) -> Vec<f64> {
        (0..bins).map(|t| self.sample_at(t, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::summary::Summary;

    fn profile() -> DiurnalProfile {
        DiurnalProfile::european_5min()
    }

    #[test]
    fn builtin_profiles_validate() {
        assert!(DiurnalProfile::european_5min().validate().is_ok());
        assert!(DiurnalProfile::european_15min().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = profile();
        p.bins_per_day = 0;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.peak_time = 1.5;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.daily_amplitude = 1.0;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.second_harmonic = 0.6;
        p.daily_amplitude = 0.5;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.weekend_factor = 0.0;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.start_weekday = 7;
        assert!(p.validate().is_err());
    }

    #[test]
    fn modulation_is_positive_and_periodic() {
        let p = profile();
        for t in 0..(7 * p.bins_per_day) {
            assert!(p.modulation(t) > 0.0, "bin {t}");
        }
        // Same time of day on two weekdays match.
        assert!((p.modulation(10) - p.modulation(10 + p.bins_per_day)).abs() < 1e-12);
    }

    #[test]
    fn modulation_peaks_near_peak_time() {
        let p = profile();
        let peak_bin = (p.peak_time * p.bins_per_day as f64) as usize;
        let peak = p.modulation(peak_bin);
        let trough_bin = (peak_bin + p.bins_per_day / 2) % p.bins_per_day;
        let trough = p.modulation(trough_bin);
        assert!(peak > 1.3 && trough < 0.7, "peak {peak}, trough {trough}");
    }

    #[test]
    fn weekend_attenuation_applies() {
        let p = profile(); // starts Monday
        let sat_bin = 5 * p.bins_per_day + 10;
        let mon_bin = 10;
        let ratio = p.modulation(sat_bin) / p.modulation(mon_bin);
        assert!((ratio - p.weekend_factor).abs() < 1e-12);
    }

    #[test]
    fn start_weekday_shifts_weekend() {
        let mut p = profile();
        p.start_weekday = 5; // starts Saturday
        assert!((p.modulation(10) / profile().modulation(10) - p.weekend_factor).abs() < 1e-12);
    }

    #[test]
    fn model_validates_params() {
        assert!(DiurnalModel::new(profile(), 0.0, 0.1).is_err());
        assert!(DiurnalModel::new(profile(), -1.0, 0.1).is_err());
        assert!(DiurnalModel::new(profile(), 1.0, -0.1).is_err());
        assert!(DiurnalModel::new(profile(), 1.0, 3.0).is_err());
        assert!(DiurnalModel::new(profile(), 1e6, 0.2).is_ok());
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let m = DiurnalModel::new(profile(), 100.0, 0.0).unwrap();
        let mut rng = seeded_rng(1);
        for t in 0..10 {
            assert_eq!(m.sample_at(t, &mut rng), m.expected(t));
        }
    }

    #[test]
    fn noise_has_unit_mean() {
        let m = DiurnalModel::new(profile(), 1000.0, 0.3).unwrap();
        let mut rng = seeded_rng(2);
        // Sample one fixed bin many times; the mean must approach expected.
        let xs: Vec<f64> = (0..40_000).map(|_| m.sample_at(0, &mut rng)).collect();
        let s = Summary::of(&xs).unwrap();
        let expected = m.expected(0);
        assert!(
            (s.mean - expected).abs() / expected < 0.02,
            "mean {} vs expected {}",
            s.mean,
            expected
        );
        let cv = s.std / s.mean;
        assert!((cv - 0.3).abs() < 0.02, "cv {cv}");
    }

    #[test]
    fn aggregation_reduces_noise() {
        let small = DiurnalModel::with_aggregation_noise(profile(), 1e5, 0.3, 1e7).unwrap();
        let large = DiurnalModel::with_aggregation_noise(profile(), 1e9, 0.3, 1e7).unwrap();
        assert!(small.noise_cv() > large.noise_cv());
        assert!(large.noise_cv() >= 0.02);
        assert!(small.noise_cv() <= 0.8);
        assert!(DiurnalModel::with_aggregation_noise(profile(), 1.0, 0.3, 0.0).is_err());
    }

    #[test]
    fn generate_produces_weeklong_series() {
        let p = profile();
        let m = DiurnalModel::new(p, 500.0, 0.1).unwrap();
        let mut rng = seeded_rng(3);
        let week = m.generate(7 * p.bins_per_day, &mut rng);
        assert_eq!(week.len(), 2016);
        assert!(week.iter().all(|&x| x > 0.0));
        // Weekday daytime mean exceeds weekend daytime mean.
        let weekday_slice = &week[0..p.bins_per_day];
        let weekend_slice = &week[5 * p.bins_per_day..6 * p.bins_per_day];
        let wd = Summary::of(weekday_slice).unwrap().mean;
        let we = Summary::of(weekend_slice).unwrap().mean;
        assert!(wd > we, "weekday {wd} vs weekend {we}");
    }

    #[test]
    fn accessors() {
        let m = DiurnalModel::new(profile(), 5.0, 0.2).unwrap();
        assert_eq!(m.base(), 5.0);
        assert_eq!(m.noise_cv(), 0.2);
        assert_eq!(m.profile().bins_per_day, 288);
    }
}
