//! Probability distributions with deterministic samplers.
//!
//! Implemented from scratch on top of `rand`'s uniform source (the offline
//! crate set does not include `rand_distr`): Box–Muller normals, lognormal,
//! inverse-CDF exponential and Pareto, Knuth/normal-approximation Poisson,
//! and rejection-sampled truncated normals.
//!
//! Each distribution also exposes its density/CCDF where the toolkit needs
//! it (the Figure 7 tail comparison evaluates analytic CCDFs).

use crate::{Result, StatsError};
use rand::Rng;

/// Common sampling interface for the distributions in this module.
pub trait Sample {
    /// Draws one value using the supplied RNG.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `n` values into a fresh vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution; `std` must be positive and finite.
    pub fn new(mean: f64, std: f64) -> Result<Self> {
        if !(std > 0.0) || !std.is_finite() || !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "std",
                value: std,
                constraint: "must be positive and finite (mean must be finite)",
            });
        }
        Ok(Normal { mean, std })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        standard_normal_cdf((x - self.mean) / self.std)
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one value per call keeps the implementation simple
        // and the stream deterministic.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.mean + self.std * r * theta.cos()
    }
}

/// Lognormal distribution: `ln X ~ N(mu, sigma²)`.
///
/// This is the paper's model for the tail of the preference values `{P_i}`
/// (Figure 7; the reported MLE was `mu ≈ −4.3, sigma ≈ 1.7`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal distribution; `sigma` must be positive/finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !(sigma > 0.0) || !sigma.is_finite() || !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be positive and finite (mu must be finite)",
            });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Location parameter (mean of `ln X`).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter (std of `ln X`).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Distribution mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Complementary CDF `P(X > x)`.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        1.0 - standard_normal_cdf((x.ln() - self.mu) / self.sigma)
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = Normal::standard().sample(rng);
        (self.mu + self.sigma * z).exp()
    }
}

/// Exponential distribution with the given rate `λ` (mean `1/λ`).
///
/// Roughan \[17\] suggested exponentially distributed node totals as gravity
/// model inputs; Figure 7 compares this tail against the lognormal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution; `rate` must be positive/finite.
    pub fn new(rate: f64) -> Result<Self> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be positive and finite",
            });
        }
        Ok(Exponential { rate })
    }

    /// Rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Distribution mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Complementary CDF `exp(−λx)`.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Used for heavy-tailed connection sizes in the flow simulator — the
/// elephants-and-mice structure of Internet flows is what makes sampled
/// NetFlow noisy, and the simulator must reproduce that noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution; both parameters must be positive.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self> {
        if !(x_min > 0.0) || !x_min.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "x_min",
                value: x_min,
                constraint: "must be positive and finite",
            });
        }
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "must be positive and finite",
            });
        }
        Ok(Pareto { x_min, alpha })
    }

    /// Scale parameter (minimum value).
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Shape (tail index); smaller is heavier-tailed.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Distribution mean (infinite when `alpha <= 1`).
    pub fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }

    /// Complementary CDF `(x_min/x)^alpha` for `x >= x_min`.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= self.x_min {
            1.0
        } else {
            (self.x_min / x).powf(self.alpha)
        }
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Models the number of sampled packets under 1-in-N NetFlow thinning and
/// per-bin connection arrival counts. Uses Knuth's product method for
/// small `lambda` and a normal approximation (continuity-corrected,
/// clamped at zero) for large `lambda`, which is accurate far beyond the
/// needs of the thinning model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

/// Threshold above which the normal approximation to Poisson is used.
const POISSON_NORMAL_THRESHOLD: f64 = 64.0;

impl Poisson {
    /// Creates a Poisson distribution; `lambda` must be non-negative/finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda >= 0.0) || !lambda.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "lambda",
                value: lambda,
                constraint: "must be non-negative and finite",
            });
        }
        Ok(Poisson { lambda })
    }

    /// Mean (= variance) of the distribution.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws an integer count.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < POISSON_NORMAL_THRESHOLD {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= limit {
                    return k;
                }
                k += 1;
                // Defensive cap: probability of reaching this is ~0 for
                // lambda < 64, but a cap keeps the loop total.
                if k > 10_000 {
                    return k;
                }
            }
        } else {
            let z = Normal::standard().sample(rng);
            let x = self.lambda + self.lambda.sqrt() * z + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }
}

impl Sample for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_count(rng) as f64
    }
}

/// Normal distribution truncated to `[lo, hi]`, sampled by rejection.
///
/// Used for bounded multiplicative noise (e.g. per-pair forward-ratio
/// jitter must stay inside `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    inner: Normal,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal; requires `lo < hi` and a valid base
    /// normal. Rejection sampling is efficient as long as `[lo, hi]` has
    /// non-negligible mass; a deterministic fallback (clamping) kicks in
    /// after a bounded number of rejections so sampling always terminates.
    pub fn new(mean: f64, std: f64, lo: f64, hi: f64) -> Result<Self> {
        if !(lo < hi) {
            return Err(StatsError::InvalidParameter {
                name: "lo/hi",
                value: lo,
                constraint: "requires lo < hi",
            });
        }
        Ok(TruncatedNormal {
            inner: Normal::new(mean, std)?,
            lo,
            hi,
        })
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Sample for TruncatedNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        for _ in 0..256 {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        // Pathological truncation window: fall back to clamping.
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

/// Standard normal CDF via an Abramowitz–Stegun style erf approximation.
///
/// Absolute error is below 1.5e-7, far tighter than any tolerance used in
/// the toolkit's statistical comparisons.
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / core::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::summary::Summary;

    #[test]
    fn normal_moments() {
        let mut rng = seeded_rng(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let xs = d.sample_n(&mut rng, 50_000);
        let s = Summary::of(&xs).unwrap();
        assert!((s.mean - 3.0).abs() < 0.05, "mean {}", s.mean);
        assert!((s.std - 2.0).abs() < 0.05, "std {}", s.std);
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_cdf_symmetry() {
        let d = Normal::standard();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((d.cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((d.cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn lognormal_moments() {
        let mut rng = seeded_rng(2);
        let d = LogNormal::new(-4.3, 1.7).unwrap();
        let xs = d.sample_n(&mut rng, 100_000);
        // Compare mean of logs, which is the MLE and robust to tail noise.
        let logs: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
        let s = Summary::of(&logs).unwrap();
        assert!((s.mean + 4.3).abs() < 0.03, "mu-hat {}", s.mean);
        assert!((s.std - 1.7).abs() < 0.03, "sigma-hat {}", s.std);
    }

    #[test]
    fn lognormal_all_positive() {
        let mut rng = seeded_rng(3);
        let d = LogNormal::new(0.0, 3.0).unwrap();
        assert!(d.sample_n(&mut rng, 1000).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_ccdf_bounds() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.ccdf(-1.0), 1.0);
        assert!((d.ccdf(1.0) - 0.5).abs() < 1e-7); // median of LN(0,1) is 1
        assert!(d.ccdf(1e9) < 1e-6);
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        assert!((d.mean() - (1.0 + 0.125_f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn exponential_moments_and_ccdf() {
        let mut rng = seeded_rng(4);
        let d = Exponential::new(0.5).unwrap();
        assert_eq!(d.mean(), 2.0);
        let xs = d.sample_n(&mut rng, 50_000);
        let s = Summary::of(&xs).unwrap();
        assert!((s.mean - 2.0).abs() < 0.05);
        assert!((d.ccdf(2.0) - (-1.0_f64).exp()).abs() < 1e-12);
        assert_eq!(d.ccdf(0.0), 1.0);
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-2.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn pareto_tail_and_support() {
        let mut rng = seeded_rng(5);
        let d = Pareto::new(10.0, 1.5).unwrap();
        let xs = d.sample_n(&mut rng, 20_000);
        assert!(xs.iter().all(|&x| x >= 10.0));
        // Empirical CCDF at 2*x_min should match (1/2)^1.5 ≈ 0.3536.
        let frac = xs.iter().filter(|&&x| x > 20.0).count() as f64 / xs.len() as f64;
        assert!((frac - 0.3536).abs() < 0.02, "tail fraction {frac}");
        assert!((d.mean() - 30.0).abs() < 1e-12);
        assert!(Pareto::new(1.0, 0.9).unwrap().mean().is_infinite());
    }

    #[test]
    fn pareto_rejects_bad_params() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = seeded_rng(6);
        let d = Poisson::new(3.5).unwrap();
        let xs = d.sample_n(&mut rng, 50_000);
        let s = Summary::of(&xs).unwrap();
        assert!((s.mean - 3.5).abs() < 0.05, "mean {}", s.mean);
        assert!((s.std * s.std - 3.5).abs() < 0.15, "var {}", s.std * s.std);
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = seeded_rng(7);
        let d = Poisson::new(500.0).unwrap();
        let xs = d.sample_n(&mut rng, 20_000);
        let s = Summary::of(&xs).unwrap();
        assert!((s.mean - 500.0).abs() < 1.0, "mean {}", s.mean);
        assert!((s.std - 500.0_f64.sqrt()).abs() < 0.5, "std {}", s.std);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = seeded_rng(8);
        let d = Poisson::new(0.0).unwrap();
        assert_eq!(d.sample_count(&mut rng), 0);
    }

    #[test]
    fn poisson_rejects_negative() {
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = seeded_rng(9);
        let d = TruncatedNormal::new(0.25, 0.2, 0.0, 1.0).unwrap();
        let xs = d.sample_n(&mut rng, 5_000);
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let s = Summary::of(&xs).unwrap();
        assert!((s.mean - 0.25).abs() < 0.05);
    }

    #[test]
    fn truncated_normal_pathological_window_terminates() {
        let mut rng = seeded_rng(10);
        // Window 40 sigma away from the mean: rejection always fails, the
        // clamp fallback must kick in.
        let d = TruncatedNormal::new(0.0, 1.0, 40.0, 41.0).unwrap();
        let x = d.sample(&mut rng);
        assert!((40.0..=41.0).contains(&x));
    }

    #[test]
    fn truncated_normal_rejects_inverted_bounds() {
        assert!(TruncatedNormal::new(0.0, 1.0, 1.0, 0.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from tables; the A&S 7.1.26 approximation is
        // accurate to ~1.5e-7, including a ~1e-9 residual at 0.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn sample_n_length() {
        let mut rng = seeded_rng(11);
        assert_eq!(Normal::standard().sample_n(&mut rng, 17).len(), 17);
    }
}
