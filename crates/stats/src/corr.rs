//! Correlation measures.
//!
//! Used by the characterization study: Figure 8 examines whether node
//! preference correlates with egress traffic volume, and Section 5.4 checks
//! preference against mean activity (the paper finds no evidence of
//! correlation in either case).

use crate::{Result, StatsError};

/// Pearson product-moment correlation of two equal-length samples.
///
/// Errors on mismatched lengths, fewer than two observations, or zero
/// variance in either sample.
///
/// # Examples
///
/// ```
/// use ic_stats::pearson;
///
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::InsufficientData(
            "pearson: samples differ in length",
        ));
    }
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData(
            "pearson: need at least 2 observations",
        ));
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::InsufficientData(
            "pearson: zero variance in a sample",
        ));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson correlation of mid-ranks).
///
/// Robust to monotone transformations; appropriate for the long-tailed
/// preference values where Pearson is dominated by the largest nodes.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::InsufficientData(
            "spearman: samples differ in length",
        ));
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Mid-ranks (ties get the average of their rank range), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(core::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the same value: assign the mid-rank.
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mid;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_correlation_orthogonal() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pearson_validates_input() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err()); // zero variance
    }

    #[test]
    fn spearman_invariant_to_monotone_transform() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x| x * x * x).collect(); // monotone
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // Pearson of the same data is below 1 (nonlinear).
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_midrank_for_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_of_sorted_input() {
        let r = ranks(&[5.0, 6.0, 7.0]);
        assert_eq!(r, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spearman_detects_inverse_relation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [100.0, 10.0, 1.0, 0.1];
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }
}
