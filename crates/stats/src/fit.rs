//! Maximum-likelihood distribution fitting.
//!
//! Figure 7 of the paper fits exponential and lognormal models to the
//! preference values `{P_i}` by maximum likelihood and compares their
//! CCDFs; the paper reports lognormal MLE `mu ≈ −4.3, sigma ≈ 1.7` on both
//! datasets.

use crate::dist::{Exponential, LogNormal};
use crate::{Result, StatsError};

/// Result of a lognormal maximum-likelihood fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalFit {
    /// Fitted location parameter (mean of `ln x`).
    pub mu: f64,
    /// Fitted scale parameter (population std of `ln x`; the MLE uses the
    /// `n` denominator).
    pub sigma: f64,
    /// Number of observations used.
    pub n: usize,
}

impl LogNormalFit {
    /// Converts the fit into a sampleable distribution.
    pub fn distribution(&self) -> Result<LogNormal> {
        LogNormal::new(self.mu, self.sigma)
    }
}

/// Result of an exponential maximum-likelihood fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Fitted rate parameter `λ = 1 / mean`.
    pub rate: f64,
    /// Number of observations used.
    pub n: usize,
}

impl ExponentialFit {
    /// Converts the fit into a sampleable distribution.
    pub fn distribution(&self) -> Result<Exponential> {
        Exponential::new(self.rate)
    }
}

/// Fits a lognormal by maximum likelihood.
///
/// Requires at least two strictly positive observations (non-positive
/// values have zero lognormal density, making the likelihood degenerate).
///
/// # Examples
///
/// ```
/// use ic_stats::fit_lognormal_mle;
///
/// let xs = [1.0, core::f64::consts::E, 1.0 / core::f64::consts::E];
/// let fit = fit_lognormal_mle(&xs).unwrap();
/// assert!(fit.mu.abs() < 1e-12);
/// ```
pub fn fit_lognormal_mle(xs: &[f64]) -> Result<LogNormalFit> {
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData(
            "lognormal MLE needs at least 2 observations",
        ));
    }
    if xs.iter().any(|&x| !(x > 0.0) || !x.is_finite()) {
        return Err(StatsError::InsufficientData(
            "lognormal MLE requires strictly positive finite observations",
        ));
    }
    let logs: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let n = logs.len() as f64;
    let mu = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|&l| (l - mu) * (l - mu)).sum::<f64>() / n;
    let sigma = var.sqrt();
    if sigma == 0.0 {
        return Err(StatsError::InsufficientData(
            "lognormal MLE degenerate: all observations equal",
        ));
    }
    Ok(LogNormalFit {
        mu,
        sigma,
        n: xs.len(),
    })
}

/// Fits an exponential by maximum likelihood (`λ = 1 / sample mean`).
pub fn fit_exponential_mle(xs: &[f64]) -> Result<ExponentialFit> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData(
            "exponential MLE needs at least 1 observation",
        ));
    }
    if xs.iter().any(|&x| !(x >= 0.0) || !x.is_finite()) {
        return Err(StatsError::InsufficientData(
            "exponential MLE requires non-negative finite observations",
        ));
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean <= 0.0 {
        return Err(StatsError::InsufficientData(
            "exponential MLE degenerate: zero mean",
        ));
    }
    Ok(ExponentialFit {
        rate: 1.0 / mean,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Sample;
    use crate::rng::seeded_rng;

    #[test]
    fn lognormal_recovers_parameters() {
        let mut rng = seeded_rng(21);
        let d = LogNormal::new(-4.3, 1.7).unwrap();
        let xs = d.sample_n(&mut rng, 50_000);
        let fit = fit_lognormal_mle(&xs).unwrap();
        assert!((fit.mu + 4.3).abs() < 0.05, "mu {}", fit.mu);
        assert!((fit.sigma - 1.7).abs() < 0.05, "sigma {}", fit.sigma);
        assert_eq!(fit.n, 50_000);
        assert!(fit.distribution().is_ok());
    }

    #[test]
    fn exponential_recovers_rate() {
        let mut rng = seeded_rng(22);
        let d = Exponential::new(3.0).unwrap();
        let xs = d.sample_n(&mut rng, 50_000);
        let fit = fit_exponential_mle(&xs).unwrap();
        assert!((fit.rate - 3.0).abs() < 0.1, "rate {}", fit.rate);
        assert!(fit.distribution().is_ok());
    }

    #[test]
    fn lognormal_rejects_nonpositive() {
        assert!(fit_lognormal_mle(&[1.0, 0.0]).is_err());
        assert!(fit_lognormal_mle(&[1.0, -2.0]).is_err());
        assert!(fit_lognormal_mle(&[1.0]).is_err());
        assert!(fit_lognormal_mle(&[]).is_err());
    }

    #[test]
    fn lognormal_rejects_degenerate() {
        assert!(fit_lognormal_mle(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn exponential_rejects_bad_input() {
        assert!(fit_exponential_mle(&[]).is_err());
        assert!(fit_exponential_mle(&[-1.0]).is_err());
        assert!(fit_exponential_mle(&[0.0, 0.0]).is_err());
        assert!(fit_exponential_mle(&[f64::NAN]).is_err());
    }

    #[test]
    fn exponential_exact_small_sample() {
        let fit = fit_exponential_mle(&[2.0, 4.0]).unwrap();
        assert!((fit.rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fit.n, 2);
    }
}
