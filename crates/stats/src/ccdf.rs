//! Empirical complementary CDFs and Kolmogorov–Smirnov distances.
//!
//! Figure 7 of the paper plots the log-log CCDF of the fitted preference
//! values against the best-fit exponential and lognormal curves, arguing
//! that the long-tailed lognormal matches the tail better. This module
//! provides the empirical CCDF and a KS distance for quantifying "better".

use crate::{Result, StatsError};

/// An empirical complementary CDF: for each sorted sample value `x`,
/// `P(X > x)` estimated as the fraction of strictly greater observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Ccdf {
    points: Vec<(f64, f64)>,
}

impl Ccdf {
    /// The `(value, P(X > value))` pairs, sorted by value.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the empirical CCDF at `x` (step function, right limits).
    pub fn eval(&self, x: f64) -> f64 {
        // Number of observations strictly greater than x, via binary search.
        let n = self.points.len() as f64;
        let idx = self.points.partition_point(|&(v, _)| v <= x);
        (self.points.len() - idx) as f64 / n
    }
}

/// Builds the empirical CCDF of `xs`; errors on empty input.
///
/// # Examples
///
/// ```
/// use ic_stats::empirical_ccdf;
///
/// let ccdf = empirical_ccdf(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(ccdf.eval(2.5), 0.5);
/// assert_eq!(ccdf.eval(0.0), 1.0);
/// assert_eq!(ccdf.eval(4.0), 0.0);
/// ```
pub fn empirical_ccdf(xs: &[f64]) -> Result<Ccdf> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData("ccdf of empty sample"));
    }
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::InsufficientData(
            "ccdf requires finite observations",
        ));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    let points = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (sorted.len() - i - 1) as f64 / n))
        .collect();
    Ok(Ccdf { points })
}

/// Kolmogorov–Smirnov distance between a sample and an analytic CCDF.
///
/// `model_ccdf(x)` must return `P(X > x)` under the model. The statistic is
/// `sup_x |F_n(x) − F(x)|`, evaluated at the sample points (where the
/// supremum of the difference with a continuous model is attained).
pub fn ks_distance(xs: &[f64], model_ccdf: impl Fn(f64) -> f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData("ks distance of empty sample"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut d = 0.0_f64;
    for (i, &x) in sorted.iter().enumerate() {
        let model_cdf = 1.0 - model_ccdf(x);
        // Empirical CDF just below and at x.
        let below = i as f64 / n;
        let at = (i + 1) as f64 / n;
        d = d.max((model_cdf - below).abs()).max((at - model_cdf).abs());
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, LogNormal, Sample};
    use crate::rng::seeded_rng;

    #[test]
    fn ccdf_step_function() {
        let c = empirical_ccdf(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(c.eval(0.5), 1.0);
        assert!((c.eval(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.eval(1.5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.eval(2.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.eval(3.0), 0.0);
    }

    #[test]
    fn ccdf_points_sorted() {
        let c = empirical_ccdf(&[5.0, 1.0, 3.0]).unwrap();
        let vals: Vec<f64> = c.points().iter().map(|&(v, _)| v).collect();
        assert_eq!(vals, vec![1.0, 3.0, 5.0]);
        // Probabilities decrease.
        let probs: Vec<f64> = c.points().iter().map(|&(_, p)| p).collect();
        assert!(probs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn ccdf_rejects_bad_input() {
        assert!(empirical_ccdf(&[]).is_err());
        assert!(empirical_ccdf(&[f64::NAN]).is_err());
    }

    #[test]
    fn ks_distance_zero_for_own_quantiles() {
        // Sample = exact quantiles of Exp(1): KS should be small (1/(2n)).
        let d = Exponential::new(1.0).unwrap();
        let n = 100;
        let xs: Vec<f64> = (1..=n)
            .map(|i| {
                let u = (i as f64 - 0.5) / n as f64;
                -(1.0 - u).ln()
            })
            .collect();
        let ks = ks_distance(&xs, |x| d.ccdf(x)).unwrap();
        assert!(ks <= 0.5 / n as f64 + 1e-9, "ks = {ks}");
    }

    #[test]
    fn ks_separates_exponential_from_lognormal() {
        // This is the statistical heart of Figure 7: a lognormal sample is
        // fitted far better by the lognormal CCDF than the exponential.
        let mut rng = seeded_rng(77);
        let ln = LogNormal::new(-4.3, 1.7).unwrap();
        let xs = ln.sample_n(&mut rng, 400);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let exp_fit = Exponential::new(1.0 / mean).unwrap();
        let ks_ln = ks_distance(&xs, |x| ln.ccdf(x)).unwrap();
        let ks_exp = ks_distance(&xs, |x| exp_fit.ccdf(x)).unwrap();
        assert!(
            ks_ln < ks_exp,
            "lognormal should fit better: {ks_ln} vs {ks_exp}"
        );
        assert!(ks_exp > 0.2, "exponential badly misfits the tail: {ks_exp}");
    }

    #[test]
    fn ks_empty_errors() {
        assert!(ks_distance(&[], |_| 0.5).is_err());
    }

    #[test]
    fn ks_is_bounded_by_one() {
        let xs = [1.0, 2.0, 3.0];
        let ks = ks_distance(&xs, |_| 0.0).unwrap(); // model says everything tiny
        assert!(ks <= 1.0 + 1e-12);
    }
}
