//! Descriptive statistics.

use crate::{Result, StatsError};

/// Summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use ic_stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (average of middle two for even n).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics; errors on an empty sample.
    pub fn of(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::InsufficientData("summary of empty sample"));
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = if xs.len() > 1 {
            xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Ok(Summary {
            count: xs.len(),
            mean,
            std: var.sqrt(),
            min,
            max,
            median: quantile(xs, 0.5)?,
        })
    }
}

/// Empirical quantile with linear interpolation between order statistics.
///
/// `q` must lie in `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData("quantile of empty sample"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            value: q,
            constraint: "must lie in [0, 1]",
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Mean of a slice; errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData("mean of empty sample"));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Coefficient of variation `std / mean`; errors when the mean is zero or
/// the sample is empty.
pub fn coefficient_of_variation(xs: &[f64]) -> Result<f64> {
    let s = Summary::of(xs)?;
    if s.mean == 0.0 {
        return Err(StatsError::InsufficientData(
            "coefficient of variation undefined for zero mean",
        ));
    }
    Ok(s.std / s.mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std with n-1 denominator: sqrt(32/7).
        assert!((s.std - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 42.0);
    }

    #[test]
    fn summary_empty_errors() {
        assert!(Summary::of(&[]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_validates_q() {
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn mean_and_cv() {
        assert_eq!(mean(&[1.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
        let cv = coefficient_of_variation(&[1.0, 3.0]).unwrap();
        assert!((cv - core::f64::consts::SQRT_2 / 2.0).abs() < 1e-12);
        assert!(coefficient_of_variation(&[-1.0, 1.0]).is_err());
    }
}
