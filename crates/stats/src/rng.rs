//! Deterministic random-number seeding.
//!
//! Every experiment in the repository derives its randomness from an
//! explicit 64-bit seed so that figures, tests, and benchmarks are
//! reproducible bit-for-bit across runs and machines.

use rand::SeedableRng;
// Re-exported so downstream crates can name the type `seeded_rng`
// returns without depending on `rand` directly.
pub use rand::rngs::StdRng;

/// Creates a [`StdRng`] from a 64-bit seed.
///
/// `StdRng` is a cryptographically strong, portable PRNG whose stream for a
/// fixed seed is stable across platforms for a fixed `rand` version — which
/// is exactly the reproducibility contract the experiment harness needs.
///
/// # Examples
///
/// ```
/// use ic_stats::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to give independent random streams to each node / week / component
/// of a generator without manual seed bookkeeping. The mixing function is
/// splitmix64 applied to `parent ^ label`, which decorrelates nearby labels.
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_decorrelates_labels() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        assert_ne!(s0, s1);
        // Hamming distance between consecutive labels should be substantial.
        let diff = (s0 ^ s1).count_ones();
        assert!(diff > 10, "only {diff} differing bits");
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(5, 10), derive_seed(5, 10));
    }
}
