//! Time-series analysis utilities.
//!
//! Used to *verify* the temporal structure the paper describes rather than
//! just eyeball it: Figure 9's "strong periodic patterns ... corresponding
//! to daily variation" becomes a measurable statement (autocorrelation
//! peak at the one-day lag), and weekend attenuation becomes a ratio test.

use crate::{Result, StatsError};

/// Sample autocorrelation at lag `k` (biased estimator, as standard).
///
/// Errors on an empty series, a lag outside the series, or zero variance.
///
/// # Examples
///
/// ```
/// use ic_stats::timeseries::autocorrelation;
///
/// let period4: Vec<f64> = (0..64).map(|t| (t % 4) as f64).collect();
/// assert!(autocorrelation(&period4, 4).unwrap() > 0.9);
/// assert!(autocorrelation(&period4, 2).unwrap() < 0.0);
/// ```
pub fn autocorrelation(xs: &[f64], lag: usize) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData(
            "autocorrelation of empty series",
        ));
    }
    if lag >= xs.len() {
        return Err(StatsError::InvalidParameter {
            name: "lag",
            value: lag as f64,
            constraint: "must be smaller than the series length",
        });
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var: f64 = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var == 0.0 {
        return Err(StatsError::InsufficientData(
            "autocorrelation undefined for constant series",
        ));
    }
    let cov: f64 = xs
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum::<f64>()
        / n;
    Ok(cov / var)
}

/// Strength of a periodic component with the given period: the
/// autocorrelation at that lag, clamped below at 0.
///
/// A value near 1 means the series repeats almost exactly with that
/// period; near 0 means no such structure.
pub fn periodicity_strength(xs: &[f64], period: usize) -> Result<f64> {
    Ok(autocorrelation(xs, period)?.max(0.0))
}

/// Detects the dominant period among candidates by autocorrelation.
///
/// Returns `(period, strength)` for the strongest candidate, or an error
/// if no candidate fits inside the series.
pub fn dominant_period(xs: &[f64], candidates: &[usize]) -> Result<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for &p in candidates {
        if p == 0 || p >= xs.len() {
            continue;
        }
        let s = autocorrelation(xs, p)?;
        match best {
            Some((_, bs)) if bs >= s => {}
            _ => best = Some((p, s)),
        }
    }
    best.ok_or(StatsError::InvalidParameter {
        name: "candidates",
        value: 0.0,
        constraint: "need at least one candidate period shorter than the series",
    })
}

/// Centered moving average with the given (odd) window; endpoints use the
/// available partial window.
pub fn moving_average(xs: &[f64], window: usize) -> Result<Vec<f64>> {
    if window == 0 || window.is_multiple_of(2) {
        return Err(StatsError::InvalidParameter {
            name: "window",
            value: window as f64,
            constraint: "must be odd and positive",
        });
    }
    if xs.is_empty() {
        return Err(StatsError::InsufficientData(
            "moving average of empty series",
        ));
    }
    let half = window / 2;
    let out = (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    Ok(out)
}

/// Ratio of the mean over one span of bins to the mean over another —
/// e.g. weekend days vs weekdays for the Figure 9 attenuation check.
pub fn span_mean_ratio(
    xs: &[f64],
    numerator: core::ops::Range<usize>,
    denominator: core::ops::Range<usize>,
) -> Result<f64> {
    if numerator.end > xs.len() || denominator.end > xs.len() {
        return Err(StatsError::InvalidParameter {
            name: "range",
            value: xs.len() as f64,
            constraint: "ranges must lie inside the series",
        });
    }
    if numerator.is_empty() || denominator.is_empty() {
        return Err(StatsError::InsufficientData("empty span"));
    }
    let num: f64 = xs[numerator.clone()].iter().sum::<f64>() / numerator.len() as f64;
    let den: f64 = xs[denominator.clone()].iter().sum::<f64>() / denominator.len() as f64;
    if den == 0.0 {
        return Err(StatsError::InsufficientData("zero denominator span"));
    }
    Ok(num / den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::{DiurnalModel, DiurnalProfile};
    use crate::rng::seeded_rng;

    #[test]
    fn autocorrelation_of_sine_peaks_at_period() {
        // Long series: the biased estimator shrinks by (n - lag)/n, so use
        // n >> lag for a tight threshold.
        let period = 24;
        let xs: Vec<f64> = (0..period * 40)
            .map(|t| (2.0 * core::f64::consts::PI * t as f64 / period as f64).sin())
            .collect();
        assert!(autocorrelation(&xs, period).unwrap() > 0.95);
        assert!(autocorrelation(&xs, period / 2).unwrap() < -0.9);
        assert!((autocorrelation(&xs, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_validates() {
        assert!(autocorrelation(&[], 0).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 2).is_err());
        assert!(autocorrelation(&[5.0; 10], 1).is_err());
    }

    #[test]
    fn white_noise_has_weak_periodicity() {
        let mut rng = seeded_rng(8);
        use rand::Rng;
        let xs: Vec<f64> = (0..512).map(|_| rng.gen::<f64>()).collect();
        let s = periodicity_strength(&xs, 24).unwrap();
        assert!(s < 0.15, "strength {s}");
    }

    #[test]
    fn dominant_period_finds_daily_cycle_in_diurnal_model() {
        // The Figure 9 claim, quantified: a diurnal activity series has a
        // dominant period of one day.
        let profile = DiurnalProfile::european_5min();
        let model = DiurnalModel::new(profile, 1000.0, 0.1).unwrap();
        let mut rng = seeded_rng(9);
        let series = model.generate(288 * 5, &mut rng); // five weekdays
        let (period, strength) = dominant_period(&series, &[96, 144, 288, 432]).unwrap();
        assert_eq!(period, 288, "daily period should dominate");
        assert!(strength > 0.5, "strength {strength}");
    }

    #[test]
    fn dominant_period_needs_valid_candidates() {
        assert!(dominant_period(&[1.0, 2.0, 3.0], &[0, 10]).is_err());
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let sm = moving_average(&xs, 3).unwrap();
        assert_eq!(sm.len(), xs.len());
        // Interior points average to ~(0+10+0)/3.
        assert!((sm[2] - 20.0 / 3.0).abs() < 1e-12);
        // Variance decreases.
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&sm) < var(&xs));
    }

    #[test]
    fn moving_average_validates() {
        assert!(moving_average(&[1.0], 0).is_err());
        assert!(moving_average(&[1.0], 2).is_err());
        assert!(moving_average(&[], 3).is_err());
    }

    #[test]
    fn span_ratio_detects_weekend_dip() {
        let profile = DiurnalProfile::european_5min(); // starts Monday
        let model = DiurnalModel::new(profile, 1000.0, 0.0).unwrap();
        let mut rng = seeded_rng(10);
        let week = model.generate(288 * 7, &mut rng);
        // Saturday (day 5) vs Monday (day 0).
        let ratio = span_mean_ratio(&week, 5 * 288..6 * 288, 0..288).unwrap();
        assert!((ratio - profile.weekend_factor).abs() < 1e-9);
    }

    #[test]
    fn span_ratio_validates() {
        let xs = [1.0, 2.0, 3.0];
        assert!(span_mean_ratio(&xs, 0..9, 0..1).is_err());
        assert!(span_mean_ratio(&xs, 1..1, 0..1).is_err());
        assert!(span_mean_ratio(&[0.0, 1.0], 1..2, 0..1).is_err());
    }
}
