//! # ic-stats — statistics substrate
//!
//! Probability distributions, estimators, and time-series models used across
//! the independent-connection traffic-matrix toolkit. The paper's
//! characterization study (Section 5) needs:
//!
//! * samplers for the long-tailed **lognormal** preference distribution, the
//!   **exponential** strawman it is compared against (Figure 7), heavy-tailed
//!   **Pareto** connection sizes, and **Poisson** packet counts for the
//!   NetFlow 1/1000 thinning model ([`dist`]),
//! * maximum-likelihood fitters and empirical CCDFs with Kolmogorov–Smirnov
//!   distances for the Figure 7 comparison ([`fit`], [`ccdf`]),
//! * Pearson/Spearman correlation for the "preference is uncorrelated with
//!   egress volume / activity" analyses of Figure 8 and Section 5.4
//!   ([`corr`]),
//! * descriptive statistics ([`summary`]),
//! * the **cyclostationary diurnal activity model** (daily/weekly harmonics
//!   with weekend attenuation, in the spirit of Soule et al. \[20\]) that
//!   generates the `A_i(t)` inputs for synthetic traffic matrices
//!   ([`diurnal`]),
//! * deterministic seeding helpers so every experiment in the repository is
//!   reproducible bit-for-bit ([`rng`]).
//!
//! The `repro` note for this paper flags the thin Rust stats ecosystem; this
//! crate is therefore self-contained on top of `rand` (no `rand_distr`,
//! no `statrs`).

pub mod ccdf;
pub mod corr;
pub mod dist;
pub mod diurnal;
pub mod fit;
pub mod rng;
pub mod summary;
pub mod timeseries;

pub use ccdf::{empirical_ccdf, ks_distance, Ccdf};
pub use corr::{pearson, spearman};
pub use dist::{Exponential, LogNormal, Normal, Pareto, Poisson, Sample, TruncatedNormal};
pub use diurnal::{DiurnalModel, DiurnalProfile};
pub use fit::{fit_exponential_mle, fit_lognormal_mle, ExponentialFit, LogNormalFit};
pub use rng::seeded_rng;
pub use summary::Summary;
pub use timeseries::{autocorrelation, dominant_period, moving_average, periodicity_strength};

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter is out of its domain.
    InvalidParameter {
        /// Parameter name, e.g. `"sigma"`.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be positive"`.
        constraint: &'static str,
    },
    /// The input sample is empty or otherwise unusable for estimation.
    InsufficientData(&'static str),
}

impl core::fmt::Display for StatsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            StatsError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = StatsError::InvalidParameter {
            name: "sigma",
            value: -1.0,
            constraint: "must be positive",
        };
        assert!(e.to_string().contains("sigma"));
        assert!(StatsError::InsufficientData("empty sample")
            .to_string()
            .contains("empty sample"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&StatsError::InsufficientData("x"));
    }
}
