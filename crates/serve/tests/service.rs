//! Determinism contracts of the transport-free service core.
//!
//! The load-bearing invariant: a tenant's report stream through the
//! multi-tenant batching service is bit-identical to feeding the same
//! bins through [`ic_stream::replay_estimation`] alone — for any engine
//! worker count, any poll cadence, any co-tenant interleaving, and across
//! a snapshot/restore restart or a journal replay.

use ic_core::{generate_synthetic, SynthConfig, TmSeries};
use ic_engine::Engine;
use ic_estimation::{EstimationPipeline, ObservationModel};
use ic_serve::{Service, StatsFormat, TenantSpec};
use ic_stream::{replay_estimation, ReplayStream, WindowReport};
use ic_topology::{RoutingScheme, Topology};
use proptest::prelude::*;

const WINDOW_BINS: usize = 4;

fn ring_topology(name: &str, n: usize) -> Topology {
    let mut t = Topology::new(name);
    let ids: Vec<usize> = (0..n)
        .map(|k| t.add_node(format!("n{k}")).unwrap())
        .collect();
    for k in 0..n {
        t.add_symmetric_link(ids[k], ids[(k + 1) % n], 1.0, 1e12)
            .unwrap();
    }
    t.add_symmetric_link(ids[0], ids[n / 2], 1.0, 1e12).unwrap();
    t
}

fn spec_for(name: &str, nodes: usize) -> TenantSpec {
    TenantSpec::new(name, &ring_topology(name, nodes), RoutingScheme::Ecmp)
        .with_window_bins(WINDOW_BINS)
}

fn series_for(seed: u64, nodes: usize, bins: usize) -> TmSeries {
    generate_synthetic(
        &SynthConfig::geant_like(seed)
            .with_nodes(nodes)
            .with_bins(bins),
    )
    .unwrap()
    .series
}

/// The solo offline reference for a tenant: `replay_estimation` over the
/// same bins, configured exactly as the service configures the tenant.
fn offline_windows(spec: &TenantSpec, series: &TmSeries) -> Vec<WindowReport> {
    let topo = spec.build_topology().unwrap();
    let model = ObservationModel::new(&topo, spec.routing).unwrap();
    let pipeline = EstimationPipeline::new(model).config(spec.estimation_config());
    let mut stream = ReplayStream::new(series.clone());
    replay_estimation(&mut stream, pipeline, &spec.replay_options())
        .unwrap()
        .windows
}

#[test]
fn multi_tenant_batched_service_matches_solo_offline_replay() {
    let tenants = [
        (spec_for("west", 4), series_for(5, 4, 8)),
        (spec_for("east", 5), series_for(7, 5, 8)),
    ];
    let mut service = Service::new();
    let ids: Vec<_> = tenants
        .iter()
        .map(|(spec, _)| service.register(spec.clone()).unwrap())
        .collect();

    // Interleave the two tenants bin by bin, with a mid-stream poll.
    let mut events = Vec::new();
    for t in 0..8 {
        for (id, (_, series)) in ids.iter().zip(&tenants) {
            service.ingest(*id, series.column(t)).unwrap();
        }
        if t == 5 {
            events.extend(service.poll().unwrap());
        }
    }
    events.extend(service.poll().unwrap());
    assert_eq!(service.pending(), 0);

    for (id, (spec, series)) in ids.iter().zip(&tenants) {
        let got: Vec<WindowReport> = events
            .iter()
            .filter(|ev| ev.tenant == *id)
            .map(|ev| ev.report.clone())
            .collect();
        assert_eq!(got, offline_windows(spec, series), "tenant {}", spec.name);
        // The accessors surface the final window.
        assert_eq!(
            service.last_report(*id).unwrap(),
            got.last(),
            "tenant {}",
            spec.name
        );
        assert!(service.forecast(*id).unwrap().is_some());
        let est = service.last_estimate(*id).unwrap().unwrap();
        assert_eq!(est.window, got.last().unwrap().window);
        assert_eq!(
            est.error.to_bits(),
            got.last().unwrap().error_candidate.to_bits()
        );
    }
}

#[test]
fn batched_tenant_is_bit_identical_to_per_bin_tenant_and_offline_replay() {
    // Two tenants over the same topology and trace, one per-bin and one
    // with a SoA batch width wider than the window: every report is
    // bit-identical across the two tenants and to the batched offline
    // replay (the batched kernel accumulates in per-bin order).
    let series = series_for(43, 5, 8);
    let per_bin = spec_for("per-bin", 5);
    let batched = spec_for("batched", 5).with_batch_width(3);
    let mut service = Service::new();
    let id_p = service.register(per_bin.clone()).unwrap();
    let id_b = service.register(batched.clone()).unwrap();
    let mut events = Vec::new();
    for t in 0..8 {
        service.ingest(id_p, series.column(t)).unwrap();
        service.ingest(id_b, series.column(t)).unwrap();
        events.extend(service.poll().unwrap());
    }
    let reports = |id| {
        events
            .iter()
            .filter(|ev| ev.tenant == id)
            .map(|ev| ev.report.clone())
            .collect::<Vec<WindowReport>>()
    };
    let (got_p, got_b) = (reports(id_p), reports(id_b));
    assert!(!got_p.is_empty());
    assert_eq!(got_p, got_b);
    assert_eq!(got_b, offline_windows(&batched, &series));
}

#[test]
fn kill_and_restore_mid_stream_is_bit_identical() {
    let spec = spec_for("resume", 5);
    let series = series_for(9, 5, 16);

    // The uninterrupted run.
    let mut live = Service::with_engine(Engine::new().with_threads(3));
    let id = live.register(spec.clone()).unwrap();
    for t in 0..16 {
        live.ingest(id, series.column(t)).unwrap();
    }
    let uninterrupted: Vec<WindowReport> = live
        .poll()
        .unwrap()
        .into_iter()
        .map(|ev| ev.report)
        .collect();
    assert_eq!(uninterrupted.len(), 4);

    // The interrupted run: stop after 10 bins — two polled windows plus
    // two bins buffered inside a half-built window.
    let mut first = Service::with_engine(Engine::serial());
    let id1 = first.register(spec.clone()).unwrap();
    for t in 0..10 {
        first.ingest(id1, series.column(t)).unwrap();
    }
    let mut reports: Vec<WindowReport> = first
        .poll()
        .unwrap()
        .into_iter()
        .map(|ev| ev.report)
        .collect();
    let snapshot = first.snapshot_tenant(id1).unwrap();
    drop(first);

    // A brand-new service (different worker count) picks up mid-window.
    let mut second = Service::with_engine(Engine::new().with_threads(2));
    let id2 = second.restore_tenant(&snapshot).unwrap();
    assert_eq!(second.tenant_name(id2).unwrap(), "resume");
    for t in 10..16 {
        second.ingest(id2, series.column(t)).unwrap();
    }
    reports.extend(second.poll().unwrap().into_iter().map(|ev| ev.report));

    assert_eq!(reports, uninterrupted);
    assert_eq!(reports, offline_windows(&spec, &series));
}

#[test]
fn snapshot_refuses_while_ready_windows_are_unpolled() {
    let spec = spec_for("pending", 4);
    let series = series_for(3, 4, 8);
    let mut service = Service::with_engine(Engine::serial());
    let id = service.register(spec).unwrap();
    for t in 0..4 {
        service.ingest(id, series.column(t)).unwrap();
    }
    assert_eq!(service.pending(), 1);
    let err = service.snapshot_tenant(id).unwrap_err().to_string();
    assert!(err.contains("poll() before snapshotting"), "{err}");
    service.poll().unwrap();
    assert!(service.snapshot_tenant(id).is_ok());
}

#[test]
fn journal_replay_reproduces_every_tenants_reports() {
    let tenants = [
        (spec_for("north", 4), series_for(21, 4, 8)),
        (spec_for("south", 5), series_for(22, 5, 8)),
    ];
    let mut service = Service::new();
    service.enable_journal();
    let ids: Vec<_> = tenants
        .iter()
        .map(|(spec, _)| service.register(spec.clone()).unwrap())
        .collect();
    let mut events = Vec::new();
    for t in 0..8 {
        for (id, (_, series)) in ids.iter().zip(&tenants) {
            service.ingest(*id, series.column(t)).unwrap();
        }
        // An uneven poll cadence the replay does not repeat.
        if t == 3 {
            events.extend(service.poll().unwrap());
        }
    }
    events.extend(service.poll().unwrap());

    let journal = service.journal_bytes().unwrap().to_vec();
    let (replayed_service, replayed) = Service::replay_journal(&journal).unwrap();
    assert_eq!(replayed_service.tenant_count(), 2);
    for (id, (spec, _)) in ids.iter().zip(&tenants) {
        let original: Vec<&WindowReport> = events
            .iter()
            .filter(|ev| ev.tenant == *id)
            .map(|ev| &ev.report)
            .collect();
        let from_journal: Vec<&WindowReport> = replayed
            .iter()
            .filter(|ev| ev.tenant == *id)
            .map(|ev| &ev.report)
            .collect();
        assert_eq!(original, from_journal, "tenant {}", spec.name);
    }
}

#[test]
fn journal_records_restores_too() {
    let spec = spec_for("journaled-restore", 4);
    let series = series_for(31, 4, 12);

    // First life: no journal, snapshot after one window.
    let mut first = Service::with_engine(Engine::serial());
    let id = first.register(spec.clone()).unwrap();
    for t in 0..4 {
        first.ingest(id, series.column(t)).unwrap();
    }
    first.poll().unwrap();
    let snapshot = first.snapshot_tenant(id).unwrap();

    // Second life: journaled from the restore on.
    let mut second = Service::with_engine(Engine::serial());
    second.enable_journal();
    let id2 = second.restore_tenant(&snapshot).unwrap();
    for t in 4..12 {
        second.ingest(id2, series.column(t)).unwrap();
    }
    let events: Vec<WindowReport> = second
        .poll()
        .unwrap()
        .into_iter()
        .map(|ev| ev.report)
        .collect();
    assert_eq!(events.len(), 2);

    let journal = second.journal_bytes().unwrap().to_vec();
    let (_, replayed) = Service::replay_journal(&journal).unwrap();
    let replayed: Vec<WindowReport> = replayed.into_iter().map(|ev| ev.report).collect();
    assert_eq!(replayed, events);
    // And the tail matches the uninterrupted offline reference.
    assert_eq!(events, offline_windows(&spec, &series)[1..]);
}

#[test]
fn service_rejects_bad_requests() {
    let spec = spec_for("strict", 4);
    let series = series_for(2, 4, 4);
    let mut service = Service::with_engine(Engine::serial());
    let id = service.register(spec.clone()).unwrap();

    // Duplicate name.
    assert!(matches!(
        service.register(spec.clone()),
        Err(ic_serve::ServeError::NameTaken(_))
    ));
    // Wrong column length.
    assert!(service.ingest(id, vec![1.0; 3]).is_err());
    // Unknown tenant.
    assert!(service.ingest(99, series.column(0)).is_err());
    assert!(service.last_report(99).is_err());
    assert!(service.snapshot_tenant(99).is_err());
    // Restoring over an existing name collides.
    let snap = service.snapshot_tenant(id).unwrap();
    assert!(matches!(
        service.restore_tenant(&snap),
        Err(ic_serve::ServeError::NameTaken(_))
    ));
    // Garbage snapshot bytes are rejected.
    assert!(service.restore_tenant(b"not a snapshot").is_err());
}

#[test]
fn multilevel_metrics_are_pre_registered_and_surfaced_in_stats() {
    let mut service = Service::with_engine(Engine::serial());
    assert!(service.multilevel_metrics().is_none());

    service.enable_metrics();
    let handles = service
        .multilevel_metrics()
        .expect("enable_metrics pre-registers the multilevel family");

    // An embedder running a MultilevelPipeline records through the shared
    // handles; the numbers show up in both stats renderings without any
    // extra wiring.
    handles.clusters.set(6.0);
    handles.boundary_link_fraction.set(0.125);
    handles.coarse.record(0.5);
    handles.cluster.record(0.1);
    handles.cluster.record(0.2);
    handles.reconcile.record(0.05);

    let prom = service.render_stats(StatsFormat::Prometheus).unwrap();
    assert!(prom.contains("multilevel_clusters 6"), "{prom}");
    assert!(
        prom.contains("multilevel_boundary_link_fraction 0.125"),
        "{prom}"
    );
    assert!(prom.contains("multilevel_coarse_seconds_count 1"), "{prom}");
    assert!(
        prom.contains("multilevel_cluster_seconds_count 2"),
        "{prom}"
    );
    assert!(
        prom.contains("multilevel_reconcile_seconds_count 1"),
        "{prom}"
    );

    let json = service.render_stats(StatsFormat::Json).unwrap();
    assert!(json.contains("multilevel.clusters"), "{json}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The 1-vs-N contract, service edition: two co-tenant streams
    /// through engines with different worker counts produce bit-identical
    /// events, equal to each tenant's solo offline replay — whatever the
    /// poll cadence.
    #[test]
    fn worker_count_and_poll_cadence_never_change_results(
        threads in 2usize..5,
        seed_a in 1u64..500,
        seed_b in 500u64..1000,
        poll_after in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let tenants = [
            (spec_for("a", 4), series_for(seed_a, 4, 8)),
            (spec_for("b", 5), series_for(seed_b, 5, 8)),
        ];
        let mut serial = Service::with_engine(Engine::serial());
        let mut parallel = Service::with_engine(Engine::new().with_threads(threads));
        let ids: Vec<_> = tenants
            .iter()
            .map(|(spec, _)| {
                let id = serial.register(spec.clone()).unwrap();
                assert_eq!(id, parallel.register(spec.clone()).unwrap());
                id
            })
            .collect();

        let mut serial_events = Vec::new();
        let mut parallel_events = Vec::new();
        for (t, poll) in poll_after.iter().enumerate() {
            for (id, (_, series)) in ids.iter().zip(&tenants) {
                serial.ingest(*id, series.column(t)).unwrap();
                parallel.ingest(*id, series.column(t)).unwrap();
            }
            if *poll {
                serial_events.extend(serial.poll().unwrap());
                // The parallel side polls only at the end: grouping must
                // not matter either.
            }
        }
        serial_events.extend(serial.poll().unwrap());
        parallel_events.extend(parallel.poll().unwrap());

        for (id, (spec, series)) in ids.iter().zip(&tenants) {
            let off = offline_windows(spec, series);
            for events in [&serial_events, &parallel_events] {
                let got: Vec<WindowReport> = events
                    .iter()
                    .filter(|ev| ev.tenant == *id)
                    .map(|ev| ev.report.clone())
                    .collect();
                prop_assert_eq!(&got, &off);
            }
        }
    }

    /// Observability is result-neutral: a metrics-enabled service emits
    /// bit-identical events, snapshot bytes, and journal bytes to a bare
    /// one over the same stream — while its counters actually count.
    #[test]
    fn instrumented_service_is_bit_identical_to_bare(
        threads in 1usize..4,
        seed in 1u64..1000,
        poll_after in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let spec = spec_for("obs", 4);
        let series = series_for(seed, 4, 12);
        let mut bare = Service::with_engine(Engine::new().with_threads(threads));
        let mut instrumented = Service::with_engine(Engine::new().with_threads(threads));
        bare.enable_journal();
        instrumented.enable_journal();
        instrumented.enable_metrics();
        let id = bare.register(spec.clone()).unwrap();
        prop_assert_eq!(id, instrumented.register(spec).unwrap());

        let mut bare_events = Vec::new();
        let mut inst_events = Vec::new();
        let mut polls = 1u64; // the final poll below
        for (t, poll) in poll_after.iter().enumerate() {
            bare.ingest(id, series.column(t)).unwrap();
            instrumented.ingest(id, series.column(t)).unwrap();
            if *poll {
                bare_events.extend(bare.poll().unwrap());
                inst_events.extend(instrumented.poll().unwrap());
                polls += 1;
            }
        }
        bare_events.extend(bare.poll().unwrap());
        inst_events.extend(instrumented.poll().unwrap());

        prop_assert_eq!(&bare_events, &inst_events);
        prop_assert_eq!(
            bare.snapshot_tenant(id).unwrap(),
            instrumented.snapshot_tenant(id).unwrap()
        );
        prop_assert_eq!(
            bare.journal_bytes().unwrap(),
            instrumented.journal_bytes().unwrap()
        );

        // The bare side has no registry; the instrumented side counted
        // every poll and every ingested bin.
        prop_assert!(bare.metrics_registry().is_none());
        prop_assert!(bare.render_stats(StatsFormat::Prometheus).is_err());
        let prom = instrumented.render_stats(StatsFormat::Prometheus).unwrap();
        prop_assert!(prom.contains(&format!("serve_polls_total {polls}")), "{}", prom);
        prop_assert!(
            prom.contains("serve_ingest_bins_total{tenant=\"obs\"} 12"),
            "{}", prom
        );
        prop_assert!(
            prom.contains(&format!(
                "serve_poll_windows_total{{tenant=\"obs\"}} {}",
                inst_events.len()
            )),
            "{}", prom
        );
    }
}
