//! End-to-end tests over real TCP sockets: an in-process [`Server`] on an
//! ephemeral localhost port, driven by [`Client`]. The wire adds no
//! numeric surface, so everything asserted bit-identical in
//! `tests/service.rs` must survive the socket round-trip too — including
//! a snapshot carried across a full server restart.

use ic_core::{generate_synthetic, SynthConfig, TmSeries};
use ic_engine::Engine;
use ic_estimation::{EstimationPipeline, ObservationModel};
use ic_serve::{Client, Server, Service, TenantSpec};
use ic_stream::{replay_estimation, ReplayStream, WindowReport};
use ic_topology::{RoutingScheme, Topology};
use std::time::Duration;

const WINDOW_BINS: usize = 4;

fn ring_topology(name: &str, n: usize) -> Topology {
    let mut t = Topology::new(name);
    let ids: Vec<usize> = (0..n)
        .map(|k| t.add_node(format!("n{k}")).unwrap())
        .collect();
    for k in 0..n {
        t.add_symmetric_link(ids[k], ids[(k + 1) % n], 1.0, 1e12)
            .unwrap();
    }
    t.add_symmetric_link(ids[0], ids[n / 2], 1.0, 1e12).unwrap();
    t
}

fn spec_for(name: &str, nodes: usize) -> TenantSpec {
    TenantSpec::new(name, &ring_topology(name, nodes), RoutingScheme::Ecmp)
        .with_window_bins(WINDOW_BINS)
}

fn series_for(seed: u64, nodes: usize, bins: usize) -> TmSeries {
    generate_synthetic(
        &SynthConfig::geant_like(seed)
            .with_nodes(nodes)
            .with_bins(bins),
    )
    .unwrap()
    .series
}

fn offline_windows(spec: &TenantSpec, series: &TmSeries) -> Vec<WindowReport> {
    let topo = spec.build_topology().unwrap();
    let model = ObservationModel::new(&topo, spec.routing).unwrap();
    let pipeline = EstimationPipeline::new(model).config(spec.estimation_config());
    let mut stream = ReplayStream::new(series.clone());
    replay_estimation(&mut stream, pipeline, &spec.replay_options())
        .unwrap()
        .windows
}

#[test]
fn two_tenants_over_tcp_match_offline_replay() {
    let handle = Server::bind("127.0.0.1:0", Service::new()).unwrap();
    let addr = handle.addr();
    let tenants = [
        (spec_for("tcp-west", 4), series_for(41, 4, 8)),
        (spec_for("tcp-east", 5), series_for(42, 5, 8)),
    ];

    // A second connection subscribes and must receive the pushed events.
    let subscriber = Client::connect(addr).unwrap();
    let mut subscription = subscriber.subscribe().unwrap();

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.hello().unwrap(), 0);
    let ids: Vec<_> = tenants
        .iter()
        .map(|(spec, _)| client.register(spec.clone()).unwrap())
        .collect();
    assert_eq!(client.hello().unwrap(), 2);

    for t in 0..8 {
        for (id, (_, series)) in ids.iter().zip(&tenants) {
            client.ingest(*id, series.column(t)).unwrap();
        }
    }
    let events = client.poll().unwrap();
    assert_eq!(events.len(), 4); // 2 tenants × 2 windows

    for (id, (spec, series)) in ids.iter().zip(&tenants) {
        let got: Vec<WindowReport> = events
            .iter()
            .filter(|ev| ev.tenant == *id)
            .map(|ev| ev.report.clone())
            .collect();
        assert_eq!(got, offline_windows(spec, series), "tenant {}", spec.name);

        // Per-tenant accessors over the wire.
        let report = client.report(*id).unwrap().unwrap();
        assert_eq!(&report, got.last().unwrap());
        let frame = client.estimate(*id).unwrap().unwrap();
        assert_eq!(frame.nodes as usize, spec.nodes());
        assert_eq!(frame.bins as usize, WINDOW_BINS);
        assert_eq!(
            frame.error.to_bits(),
            got.last().unwrap().error_candidate.to_bits()
        );
        frame.to_series().unwrap();
        assert!(client.forecast(*id).unwrap().is_some());
    }

    // The subscriber saw the same events, pushed.
    let pushed = subscription
        .next_events(Duration::from_secs(10))
        .unwrap()
        .expect("subscription closed early");
    assert_eq!(pushed, events);

    // Server-side errors surface as Remote, connection stays usable.
    let err = client.ingest(99, vec![0.0]).unwrap_err();
    assert!(matches!(err, ic_serve::ServeError::Remote(_)), "{err}");
    assert_eq!(client.hello().unwrap(), 2);

    client.shutdown().unwrap();
    let service = handle.join();
    assert_eq!(service.tenant_count(), 2);
}

#[test]
fn snapshot_survives_a_full_server_restart_bit_identically() {
    let spec = spec_for("tcp-resume", 5);
    let series = series_for(43, 5, 16);
    let offline = offline_windows(&spec, &series);
    assert_eq!(offline.len(), 4);

    // First server: half the trace (plus two buffered bins), snapshot.
    let first = Server::bind("127.0.0.1:0", Service::new()).unwrap();
    let mut client = Client::connect_with_retry(first.addr(), Duration::from_secs(5)).unwrap();
    let id = client.register(spec.clone()).unwrap();
    let mut reports = Vec::new();
    for t in 0..10 {
        client.ingest(id, series.column(t)).unwrap();
    }
    reports.extend(client.poll().unwrap().into_iter().map(|ev| ev.report));
    let snapshot = client.snapshot(id).unwrap();
    client.shutdown().unwrap();
    drop(client);
    first.join();

    // Second server, different engine: restore and finish the trace.
    let second = Server::bind(
        "127.0.0.1:0",
        Service::with_engine(Engine::new().with_threads(2)),
    )
    .unwrap();
    let mut client = Client::connect_with_retry(second.addr(), Duration::from_secs(5)).unwrap();
    let id = client.restore(&snapshot).unwrap();
    for t in 10..16 {
        client.ingest(id, series.column(t)).unwrap();
    }
    reports.extend(client.poll().unwrap().into_iter().map(|ev| ev.report));
    client.shutdown().unwrap();
    second.join();

    // The stitched run over two server lifetimes equals the
    // uninterrupted offline replay, bit for bit.
    assert_eq!(reports, offline);
}
