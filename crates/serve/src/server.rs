//! The TCP front-end: a thread-per-connection server over `std::net`.
//!
//! The server owns a [`Service`] behind a mutex and speaks the
//! [`crate::wire`] protocol. It adds no numeric behaviour of its own —
//! every request is decoded, executed against the shared core, and the
//! reply re-encoded — so socket-level tests only need to establish that
//! bytes survive the trip; bit-identity is the core's property.
//!
//! Drift alerts are first-class here: a connection that sends
//! [`Request::Subscribe`] is switched to push mode and receives every
//! [`Response::Events`] frame produced by subsequent polls (from any
//! connection), so drift events fire to listeners instead of dying inside
//! a replay loop.

use crate::service::Service;
use crate::wire::{read_frame, write_frame, EstimateFrame, Request, Response, PROTOCOL_VERSION};
use crate::Result;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct Shared {
    addr: SocketAddr,
    service: Mutex<Service>,
    subscribers: Mutex<Vec<Sender<Vec<u8>>>>,
    shutdown: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Sets the shutdown flag and pokes the listener so the accept loop
    /// observes it.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server (listener plus per-connection worker threads).
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), moves the
    /// service behind the listener, and starts accepting connections.
    pub fn bind(addr: impl ToSocketAddrs, service: Service) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            addr: local,
            service: Mutex::new(service),
            subscribers: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                let worker = std::thread::spawn(move || {
                    // A broken connection only ends that connection.
                    let _ = handle_connection(stream, &conn_shared);
                });
                accept_shared.workers.lock().unwrap().push(worker);
            }
        });
        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }
}

/// Handle to a running [`Server`]: address, shutdown, join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and unblocks the accept loop.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until the server shuts down (e.g. a client sends
    /// [`Request::Shutdown`]), joins every thread, and returns the
    /// service so its final state (journal, tenants) can be inspected.
    pub fn wait(mut self) -> Service {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().unwrap());
        for worker in workers {
            let _ = worker.join();
        }
        std::mem::take(&mut *self.shared.service.lock().unwrap())
    }

    /// Shuts down and joins every thread ([`ServerHandle::shutdown`] +
    /// [`ServerHandle::wait`]).
    pub fn join(self) -> Service {
        self.shutdown();
        self.wait()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) -> Result<()> {
    loop {
        let Some(payload) = read_frame(&mut stream)? else {
            return Ok(()); // peer closed cleanly
        };
        let request = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                // Undecodable frame: report and drop the connection — the
                // stream offset can no longer be trusted.
                let _ = write_frame(
                    &mut stream,
                    &Response::Error(format!("[{}] {e}", e.kind())).encode(),
                );
                return Ok(());
            }
        };
        match request {
            Request::Subscribe => {
                let (tx, rx) = channel::<Vec<u8>>();
                shared.subscribers.lock().unwrap().push(tx);
                write_frame(&mut stream, &Response::Subscribed.encode())?;
                // Push mode: forward event frames until shutdown or the
                // peer goes away.
                loop {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(frame) => write_frame(&mut stream, &frame)?,
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
                    }
                }
            }
            Request::Shutdown => {
                write_frame(&mut stream, &Response::ShutdownOk.encode())?;
                shared.request_shutdown();
                return Ok(());
            }
            other => {
                let response = execute(other, shared);
                write_frame(&mut stream, &response.encode())?;
            }
        }
    }
}

/// Executes one non-connection-control request against the shared core.
fn execute(request: Request, shared: &Shared) -> Response {
    let mut service = shared.service.lock().unwrap();
    let result = match request {
        Request::Hello => Ok(Response::HelloOk {
            protocol: PROTOCOL_VERSION,
            tenants: service.tenant_count() as u32,
        }),
        Request::Register(spec) => service
            .register(*spec)
            .map(|tenant| Response::Registered { tenant }),
        Request::Ingest { tenant, column } => {
            service
                .ingest(tenant, column)
                .map(|ready| Response::Ingested {
                    ready: ready as u64,
                })
        }
        Request::Poll => service.poll().map(|events| {
            if !events.is_empty() {
                publish(shared, &Response::Events(events.clone()).encode());
            }
            Response::Events(events)
        }),
        Request::Report { tenant } => service
            .last_report(tenant)
            .map(|report| Response::Report(report.cloned())),
        Request::Estimate { tenant } => service.last_estimate(tenant).map(|estimate| {
            Response::Estimate(estimate.map(|est| Box::new(EstimateFrame::from_estimate(est))))
        }),
        Request::Forecast { tenant } => service.forecast(tenant).map(Response::Forecast),
        Request::Stats { format } => service.render_stats(format).map(Response::Stats),
        Request::Snapshot { tenant } => service.snapshot_tenant(tenant).map(Response::Snapshot),
        Request::Restore(bytes) => service
            .restore_tenant(&bytes)
            .map(|tenant| Response::Restored { tenant }),
        // Subscribe/Shutdown are handled at the connection level.
        Request::Subscribe | Request::Shutdown => {
            Ok(Response::Error("unreachable control request".into()))
        }
    };
    // Wire errors lead with the stable kind slug so clients can match on
    // the class without parsing prose (`ServeError::kind`).
    result.unwrap_or_else(|e| Response::Error(format!("[{}] {e}", e.kind())))
}

/// Sends an encoded frame to every live subscriber, dropping dead ones.
fn publish(shared: &Shared, frame: &[u8]) {
    let mut subs = shared.subscribers.lock().unwrap();
    subs.retain(|tx| tx.send(frame.to_vec()).is_ok());
}
