//! A blocking client for the `ic-serve` wire protocol.
//!
//! [`Client`] wraps one request/response TCP connection;
//! [`Client::subscribe`] converts a second connection into a
//! [`Subscription`] that receives pushed [`TenantEvent`] frames as the
//! server completes windows.

use crate::service::{TenantEvent, TenantId};
use crate::snapshot::TenantSnapshot;
use crate::spec::TenantSpec;
use crate::wire::{read_frame, write_frame, EstimateFrame, Request, Response, StatsFormat};
use crate::{Result, ServeError};
use ic_stream::{ParamForecast, WindowReport};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking request/response connection to a server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Connects, retrying for up to `timeout` while the server starts.
    pub fn connect_with_retry(addr: impl ToSocketAddrs + Clone, timeout: Duration) -> Result<Self> {
        let mut waited = Duration::ZERO;
        let step = Duration::from_millis(25);
        loop {
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if waited >= timeout => return Err(e),
                Err(_) => {
                    std::thread::sleep(step);
                    waited += step;
                }
            }
        }
    }

    /// Sends one request and reads one response, surfacing
    /// [`Response::Error`] as [`ServeError::Remote`].
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let Some(payload) = read_frame(&mut self.stream)? else {
            return Err(ServeError::Remote("server closed the connection".into()));
        };
        match Response::decode(&payload)? {
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            resp => Ok(resp),
        }
    }

    fn unexpected(resp: Response) -> ServeError {
        ServeError::Remote(format!("unexpected response {resp:?}"))
    }

    /// Handshakes; returns the server's registered tenant count.
    pub fn hello(&mut self) -> Result<u32> {
        match self.call(&Request::Hello)? {
            Response::HelloOk { tenants, .. } => Ok(tenants),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Registers a tenant; returns its id.
    pub fn register(&mut self, spec: TenantSpec) -> Result<TenantId> {
        match self.call(&Request::Register(Box::new(spec)))? {
            Response::Registered { tenant } => Ok(tenant),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Ingests one link-load column; returns the tenant's ready-window
    /// count.
    pub fn ingest(&mut self, tenant: TenantId, column: Vec<f64>) -> Result<u64> {
        match self.call(&Request::Ingest { tenant, column })? {
            Response::Ingested { ready } => Ok(ready),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Runs every ready window; returns the completed-window events.
    pub fn poll(&mut self) -> Result<Vec<TenantEvent>> {
        match self.call(&Request::Poll)? {
            Response::Events(events) => Ok(events),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// The tenant's most recent window report, when one exists.
    pub fn report(&mut self, tenant: TenantId) -> Result<Option<WindowReport>> {
        match self.call(&Request::Report { tenant })? {
            Response::Report(report) => Ok(report),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// The tenant's most recent window estimate, when one exists.
    pub fn estimate(&mut self, tenant: TenantId) -> Result<Option<EstimateFrame>> {
        match self.call(&Request::Estimate { tenant })? {
            Response::Estimate(frame) => Ok(frame.map(|b| *b)),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// The tenant's next-window parameter forecast, when history exists.
    pub fn forecast(&mut self, tenant: TenantId) -> Result<Option<ParamForecast>> {
        match self.call(&Request::Forecast { tenant })? {
            Response::Forecast(forecast) => Ok(forecast),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Snapshots the tenant's warm state into portable bytes.
    pub fn snapshot(&mut self, tenant: TenantId) -> Result<Vec<u8>> {
        match self.call(&Request::Snapshot { tenant })? {
            Response::Snapshot(bytes) => Ok(bytes),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Decoded convenience form of [`Client::snapshot`].
    pub fn snapshot_decoded(&mut self, tenant: TenantId) -> Result<TenantSnapshot> {
        TenantSnapshot::from_bytes(&self.snapshot(tenant)?)
    }

    /// Restores a tenant from snapshot bytes; returns its (new) id.
    pub fn restore(&mut self, snapshot: &[u8]) -> Result<TenantId> {
        match self.call(&Request::Restore(snapshot.to_vec()))? {
            Response::Restored { tenant } => Ok(tenant),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// The server's metrics rendered as Prometheus text or JSON. Requires
    /// the server to have metrics enabled.
    pub fn stats(&mut self, format: StatsFormat) -> Result<String> {
        match self.call(&Request::Stats { format })? {
            Response::Stats(text) => Ok(text),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            resp => Err(Self::unexpected(resp)),
        }
    }

    /// Switches this connection to push mode: the server streams every
    /// poll's completed-window events (drift alerts included) to it.
    pub fn subscribe(mut self) -> Result<Subscription> {
        match self.call(&Request::Subscribe)? {
            Response::Subscribed => Ok(Subscription {
                stream: self.stream,
            }),
            resp => Err(Self::unexpected(resp)),
        }
    }
}

/// A push-mode connection receiving completed-window event frames.
#[derive(Debug)]
pub struct Subscription {
    stream: TcpStream,
}

impl Subscription {
    /// Blocks until the next pushed event batch, for up to `timeout`.
    /// Returns `None` when the server closed the subscription.
    pub fn next_events(&mut self, timeout: Duration) -> Result<Option<Vec<TenantEvent>>> {
        self.stream.set_read_timeout(Some(timeout))?;
        let Some(payload) = read_frame(&mut self.stream)? else {
            return Ok(None);
        };
        match Response::decode(&payload)? {
            Response::Events(events) => Ok(Some(events)),
            resp => Err(ServeError::Remote(format!(
                "unexpected push frame {resp:?}"
            ))),
        }
    }
}
