//! Tenant specifications: everything needed to (re)build one tenant's
//! estimation stack from scratch.
//!
//! A [`TenantSpec`] is self-contained — topology, routing, windowing,
//! and all estimator/forecaster/detector options — so it can cross the
//! wire at registration time, be journaled, and be embedded whole in a
//! snapshot: restoring a snapshot needs no out-of-band re-registration.

use crate::codec::{Dec, Enc};
use crate::{Result, ServeError};
use ic_core::{FitOptions, Objective};
use ic_estimation::EstimationConfig;
use ic_linalg::{Precision, SolverPolicy};
use ic_stream::{DriftOptions, ForecastOptions, ReplayOptions};
use ic_topology::{RoutingScheme, Topology};

/// One directed link of a tenant's topology.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Source node index (into the spec's node-name list).
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// IGP weight used for shortest-path routing.
    pub igp_weight: f64,
    /// Nominal link capacity.
    pub capacity: f64,
}

/// A tenant's full configuration.
///
/// Build with [`TenantSpec::new`] (which captures an existing
/// [`Topology`]) plus the `with_*` setters. The fit options' warm start
/// must be empty — carried fits are runtime *state*, owned by the service
/// and persisted via snapshots, never part of the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Unique tenant name.
    pub name: String,
    /// Node names, in id order.
    pub node_names: Vec<String>,
    /// Directed links between node indices.
    pub links: Vec<LinkSpec>,
    /// Routing scheme for the observation model.
    pub routing: RoutingScheme,
    /// Seconds per ingested bin.
    pub bin_seconds: f64,
    /// Bins per estimation window.
    pub window_bins: usize,
    /// Window stride; `None` means tumbling.
    pub stride: Option<usize>,
    /// Rolling per-window fit options. The `solver` field also selects
    /// the estimation pipeline's normal-equations solver (applied through
    /// [`ic_estimation::EstimationConfig::with_solver`]).
    pub fit: FitOptions,
    /// Parameter-forecasting options.
    pub forecast: ForecastOptions,
    /// Change-detection options.
    pub drift: DriftOptions,
    /// Bins per SoA batch on the estimation hot path (1 = the per-bin
    /// kernels; >1 routes ready windows through the batched multi-bin
    /// path, bit-identical at [`Precision::F64`]).
    pub batch_width: usize,
    /// Compute precision of the batched kernels (ignored at width 1).
    pub precision: Precision,
}

impl TenantSpec {
    /// Captures a topology into a spec with default windowing (one-day
    /// windows of 5-minute bins) and default estimator options.
    pub fn new(name: impl Into<String>, topology: &Topology, routing: RoutingScheme) -> Self {
        TenantSpec {
            name: name.into(),
            node_names: topology.node_names().to_vec(),
            links: topology
                .links()
                .iter()
                .map(|l| LinkSpec {
                    from: l.from,
                    to: l.to,
                    igp_weight: l.igp_weight,
                    capacity: l.capacity,
                })
                .collect(),
            routing,
            bin_seconds: 300.0,
            window_bins: 288,
            stride: None,
            fit: FitOptions::default(),
            forecast: ForecastOptions::default(),
            drift: DriftOptions::default(),
            batch_width: 1,
            precision: Precision::F64,
        }
    }

    /// Sets the seconds per bin.
    pub fn with_bin_seconds(mut self, bin_seconds: f64) -> Self {
        self.bin_seconds = bin_seconds;
        self
    }

    /// Sets the bins per window.
    pub fn with_window_bins(mut self, bins: usize) -> Self {
        self.window_bins = bins;
        self
    }

    /// Sets a sliding stride (tumbling when unset).
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = Some(stride);
        self
    }

    /// Sets the rolling fit options.
    pub fn with_fit_options(mut self, fit: FitOptions) -> Self {
        self.fit = fit;
        self
    }

    /// Sets the forecasting options.
    pub fn with_forecast(mut self, forecast: ForecastOptions) -> Self {
        self.forecast = forecast;
        self
    }

    /// Sets the change-detection options.
    pub fn with_drift(mut self, drift: DriftOptions) -> Self {
        self.drift = drift;
        self
    }

    /// Sets the estimation batch width (must be ≥ 1).
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width;
        self
    }

    /// Sets the batched-kernel compute precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Entries per ingested column (`nodes²`).
    pub fn column_len(&self) -> usize {
        self.nodes() * self.nodes()
    }

    /// Structural validation (cheap; full validation happens when the
    /// topology is built).
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(ServeError::BadRequest(
                "tenant name must be non-empty".into(),
            ));
        }
        if self.node_names.is_empty() {
            return Err(ServeError::BadRequest(format!(
                "tenant {}: topology has no nodes",
                self.name
            )));
        }
        if self.window_bins == 0 {
            return Err(ServeError::BadRequest(format!(
                "tenant {}: window_bins must be positive",
                self.name
            )));
        }
        if !(self.bin_seconds > 0.0) {
            return Err(ServeError::BadRequest(format!(
                "tenant {}: bin_seconds must be positive",
                self.name
            )));
        }
        if self.batch_width == 0 {
            return Err(ServeError::BadRequest(format!(
                "tenant {}: batch_width must be positive",
                self.name
            )));
        }
        if self.fit.initial.is_some() {
            return Err(ServeError::BadRequest(format!(
                "tenant {}: spec fit options must not carry a warm start (carried fits are \
                 runtime state, restored from snapshots)",
                self.name
            )));
        }
        for (k, l) in self.links.iter().enumerate() {
            if l.from >= self.nodes() || l.to >= self.nodes() {
                return Err(ServeError::BadRequest(format!(
                    "tenant {}: link {k} references node out of range",
                    self.name
                )));
            }
        }
        Ok(())
    }

    /// Rebuilds the tenant's topology.
    pub fn build_topology(&self) -> Result<Topology> {
        let mut topo = Topology::new(self.name.clone());
        for name in &self.node_names {
            topo.add_node(name.clone())?;
        }
        for l in &self.links {
            topo.add_link(l.from, l.to, l.igp_weight, l.capacity)?;
        }
        Ok(topo)
    }

    /// The unified estimation configuration this spec induces — what the
    /// service applies to the tenant's pipeline and streaming estimator,
    /// and what an offline replay must apply to reproduce the tenant's
    /// reports bit-identically.
    pub fn estimation_config(&self) -> EstimationConfig {
        EstimationConfig::new()
            .with_fit(self.fit.clone())
            .with_solver(self.fit.solver)
            .with_batch_width(self.batch_width)
            .with_precision(self.precision)
    }

    /// The equivalent offline replay options: feeding a tenant's journal
    /// through [`ic_stream::replay_estimation`] with these options and
    /// the same pipeline reproduces the service's per-window reports
    /// bit-identically.
    pub fn replay_options(&self) -> ReplayOptions {
        let mut opts = ReplayOptions::default()
            .with_window_bins(self.window_bins)
            .with_fit_options(self.fit.clone())
            .with_forecast(self.forecast.clone())
            .with_drift(self.drift.clone());
        if let Some(stride) = self.stride {
            opts = opts.with_stride(stride);
        }
        opts
    }

    /// Encodes the spec.
    pub fn encode(&self, e: &mut Enc) {
        e.put_str(&self.name);
        e.put_usize(self.node_names.len());
        for n in &self.node_names {
            e.put_str(n);
        }
        e.put_usize(self.links.len());
        for l in &self.links {
            e.put_usize(l.from);
            e.put_usize(l.to);
            e.put_f64(l.igp_weight);
            e.put_f64(l.capacity);
        }
        e.put_u8(match self.routing {
            RoutingScheme::SinglePath => 0,
            RoutingScheme::Ecmp => 1,
        });
        e.put_f64(self.bin_seconds);
        e.put_usize(self.window_bins);
        match self.stride {
            Some(s) => {
                e.put_bool(true);
                e.put_usize(s);
            }
            None => e.put_bool(false),
        }
        // FitOptions subset: every field except the warm start (always
        // empty in a spec; enforced by validate()).
        e.put_usize(self.fit.max_sweeps);
        e.put_f64(self.fit.tolerance);
        e.put_f64(self.fit.initial_f);
        e.put_u8(match self.fit.objective {
            Objective::WeightedSse => 0,
            Objective::SumRelL2 => 1,
        });
        e.put_bool(self.fit.fix_f);
        e.put_u8(match self.fit.solver {
            SolverPolicy::Auto => 0,
            SolverPolicy::Dense => 1,
            SolverPolicy::Pcg => 2,
        });
        e.put_f64(self.forecast.ewma_alpha);
        e.put_usize(self.forecast.season_length);
        e.put_f64(self.forecast.seasonal_weight);
        e.put_f64(self.drift.cusum_slack);
        e.put_f64(self.drift.cusum_threshold);
        e.put_f64(self.drift.max_f_jump);
        e.put_f64(self.drift.min_preference_corr);
        e.put_usize(self.batch_width);
        e.put_u8(match self.precision {
            Precision::F64 => 0,
            Precision::F32 => 1,
        });
    }

    /// Decodes a spec.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self> {
        let name = d.take_str()?;
        let node_count = d.take_usize()?;
        let mut node_names = Vec::with_capacity(node_count.min(1 << 20));
        for _ in 0..node_count {
            node_names.push(d.take_str()?);
        }
        let link_count = d.take_usize()?;
        let mut links = Vec::with_capacity(link_count.min(1 << 20));
        for _ in 0..link_count {
            links.push(LinkSpec {
                from: d.take_usize()?,
                to: d.take_usize()?,
                igp_weight: d.take_f64()?,
                capacity: d.take_f64()?,
            });
        }
        let routing = match d.take_u8()? {
            0 => RoutingScheme::SinglePath,
            1 => RoutingScheme::Ecmp,
            b => return Err(ServeError::Codec(format!("unknown routing byte {b}"))),
        };
        let bin_seconds = d.take_f64()?;
        let window_bins = d.take_usize()?;
        let stride = if d.take_bool()? {
            Some(d.take_usize()?)
        } else {
            None
        };
        let max_sweeps = d.take_usize()?;
        let tolerance = d.take_f64()?;
        let initial_f = d.take_f64()?;
        let objective = match d.take_u8()? {
            0 => Objective::WeightedSse,
            1 => Objective::SumRelL2,
            b => return Err(ServeError::Codec(format!("unknown objective byte {b}"))),
        };
        let fix_f = d.take_bool()?;
        let solver = match d.take_u8()? {
            0 => SolverPolicy::Auto,
            1 => SolverPolicy::Dense,
            2 => SolverPolicy::Pcg,
            b => return Err(ServeError::Codec(format!("unknown solver byte {b}"))),
        };
        let fit = FitOptions::default()
            .with_max_sweeps(max_sweeps)
            .with_tolerance(tolerance)
            .with_initial_f(initial_f)
            .with_objective(objective)
            .with_fix_f(fix_f)
            .with_solver(solver);
        let forecast = ForecastOptions::default()
            .with_ewma_alpha(d.take_f64()?)
            .with_season_length(d.take_usize()?)
            .with_seasonal_weight(d.take_f64()?);
        let drift = DriftOptions::default()
            .with_cusum_slack(d.take_f64()?)
            .with_cusum_threshold(d.take_f64()?)
            .with_max_f_jump(d.take_f64()?)
            .with_min_preference_corr(d.take_f64()?);
        let batch_width = d.take_usize()?;
        let precision = match d.take_u8()? {
            0 => Precision::F64,
            1 => Precision::F32,
            b => return Err(ServeError::Codec(format!("unknown precision byte {b}"))),
        };
        Ok(TenantSpec {
            name,
            node_names,
            links,
            routing,
            bin_seconds,
            window_bins,
            stride,
            fit,
            forecast,
            drift,
            batch_width,
            precision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Topology {
        let mut t = Topology::new("ring");
        let ids: Vec<usize> = (0..n)
            .map(|k| t.add_node(format!("n{k}")).unwrap())
            .collect();
        for k in 0..n {
            t.add_symmetric_link(ids[k], ids[(k + 1) % n], 1.0, 1e12)
                .unwrap();
        }
        t
    }

    #[test]
    fn spec_round_trips_and_rebuilds_the_topology() {
        let topo = ring(5);
        let spec = TenantSpec::new("backbone-a", &topo, RoutingScheme::Ecmp)
            .with_bin_seconds(60.0)
            .with_window_bins(12)
            .with_stride(6)
            .with_fit_options(
                FitOptions::default()
                    .with_max_sweeps(17)
                    .with_objective(Objective::SumRelL2)
                    .with_solver(SolverPolicy::Pcg),
            )
            .with_forecast(ForecastOptions::default().with_season_length(7))
            .with_drift(DriftOptions::default().with_max_f_jump(0.2))
            .with_batch_width(4)
            .with_precision(Precision::F32);
        spec.validate().unwrap();
        assert_eq!(spec.nodes(), 5);
        assert_eq!(spec.column_len(), 25);
        let mut e = Enc::new();
        spec.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = TenantSpec::decode(&mut d).unwrap();
        d.expect_end().unwrap();
        assert_eq!(back, spec);
        let rebuilt = back.build_topology().unwrap();
        assert_eq!(rebuilt.node_count(), topo.node_count());
        assert_eq!(rebuilt.link_count(), topo.link_count());
        assert_eq!(rebuilt.node_names(), topo.node_names());
        assert_eq!(back.replay_options().window_bins, 12);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let topo = ring(3);
        let ok = TenantSpec::new("t", &topo, RoutingScheme::SinglePath);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.name.clear();
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.window_bins = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.bin_seconds = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.links[0].to = 99;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.batch_width = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.fit = FitOptions::default().with_warm_start(ic_core::WarmStart {
            f: 0.3,
            preference: vec![0.5, 0.3, 0.2],
        });
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.node_names.clear();
        bad.links.clear();
        assert!(bad.validate().is_err());
    }
}
