//! `tm-ic-serve`: the multi-tenant streaming estimation server.
//!
//! Modes:
//!
//! - `serve --addr HOST:PORT [--threads N]` — run the TCP server until a
//!   client sends `Shutdown`. Prints `listening on <addr>` once bound
//!   (port 0 picks an ephemeral port).
//! - `smoke --addr HOST:PORT --snapshot-dir DIR` — scripted client for CI:
//!   registers two ring tenants, streams the first half of a synthetic
//!   trace, polls, asserts every window report is bit-identical to the
//!   offline [`ic_stream::replay_estimation`] reference, saves one warm
//!   snapshot per tenant into DIR, and shuts the server down.
//! - `resume --addr HOST:PORT --snapshot-dir DIR` — against a *fresh*
//!   server: restores the smoke snapshots, streams the second half,
//!   and asserts the resumed reports are bit-identical to an
//!   uninterrupted offline replay of the full trace. Proves the
//!   kill-and-restore story end to end over real sockets.
//! - `stats --addr HOST:PORT [--format prometheus|json]` — scrape the
//!   server's metrics registry (counters, latency histograms, events)
//!   and print it. `prometheus` output is scrape-endpoint-shaped.

use ic_core::{generate_synthetic, SynthConfig, TmSeries};
use ic_estimation::{EstimationPipeline, ObservationModel};
use ic_serve::wire::encode_window_report;
use ic_serve::{codec::Enc, Client, Server, Service, StatsFormat, TenantEvent, TenantSpec};
use ic_stream::{replay_estimation, ReplayStream, WindowReport};
use ic_topology::{RoutingScheme, Topology};
use std::time::Duration;

const TRACE_BINS: usize = 16;
const WINDOW_BINS: usize = 4;
const HALF_BINS: usize = TRACE_BINS / 2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("tm-ic-serve: error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(mode) = args.first() else {
        return Err(usage());
    };
    let addr = flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".to_string());
    match mode.as_str() {
        "serve" => {
            let threads = match flag(args, "--threads")? {
                Some(t) => Some(t.parse::<usize>()?),
                None => None,
            };
            let mut service = match threads {
                Some(t) => Service::with_engine(ic_engine::Engine::new().with_threads(t)),
                None => Service::new(),
            };
            // Metrics are result-neutral and near-free; the served stack
            // is always scrapable via the `Stats` request.
            service.enable_metrics();
            let handle = Server::bind(addr.as_str(), service)?;
            println!("listening on {}", handle.addr());
            handle.wait();
            println!("shut down");
            Ok(())
        }
        "smoke" => smoke(&addr, &required_flag(args, "--snapshot-dir")?),
        "resume" => resume(&addr, &required_flag(args, "--snapshot-dir")?),
        "stats" => stats(&addr, flag(args, "--format")?.as_deref()),
        _ => Err(usage()),
    }
}

fn usage() -> Box<dyn std::error::Error> {
    "usage: tm-ic-serve serve --addr HOST:PORT [--threads N]\n\
     \x20      tm-ic-serve smoke  --addr HOST:PORT --snapshot-dir DIR\n\
     \x20      tm-ic-serve resume --addr HOST:PORT --snapshot-dir DIR\n\
     \x20      tm-ic-serve stats  --addr HOST:PORT [--format prometheus|json]"
        .into()
}

fn stats(addr: &str, format: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    let format = match format.unwrap_or("prometheus") {
        "prometheus" => StatsFormat::Prometheus,
        "json" => StatsFormat::Json,
        other => return Err(format!("unknown stats format {other:?}").into()),
    };
    let mut client = Client::connect_with_retry(addr, Duration::from_secs(10))?;
    print!("{}", client.stats(format)?);
    Ok(())
}

/// The reports `poll()` produced for one tenant, in stream order (shared
/// by the smoke and resume assertions).
fn tenant_reports(events: &[TenantEvent], tenant: u32) -> Vec<WindowReport> {
    events
        .iter()
        .filter(|ev| ev.tenant == tenant)
        .map(|ev| ev.report.clone())
        .collect()
}

fn flag(args: &[String], name: &str) -> Result<Option<String>, Box<dyn std::error::Error>> {
    match args.iter().position(|a| a == name) {
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("{name} requires a value").into()),
        },
        None => Ok(None),
    }
}

fn required_flag(args: &[String], name: &str) -> Result<String, Box<dyn std::error::Error>> {
    flag(args, name)?.ok_or_else(|| format!("{name} is required").into())
}

/// A ring topology with one chord for path diversity.
fn ring_topology(name: &str, n: usize) -> Topology {
    let mut t = Topology::new(name);
    let ids: Vec<usize> = (0..n)
        .map(|k| t.add_node(format!("n{k}")).unwrap())
        .collect();
    for k in 0..n {
        t.add_symmetric_link(ids[k], ids[(k + 1) % n], 1.0, 1e12)
            .unwrap();
    }
    t.add_symmetric_link(ids[0], ids[n / 2], 1.0, 1e12).unwrap();
    t
}

/// The two-tenant CI scenario: distinct topologies, seeds, and traces.
fn scenario() -> Result<Vec<(TenantSpec, TmSeries)>, Box<dyn std::error::Error>> {
    let mut out = Vec::new();
    for (name, nodes, seed) in [("pop-west", 5usize, 11u64), ("pop-east", 6, 12)] {
        let topo = ring_topology(name, nodes);
        let spec = TenantSpec::new(name, &topo, RoutingScheme::Ecmp).with_window_bins(WINDOW_BINS);
        let series = generate_synthetic(
            &SynthConfig::geant_like(seed)
                .with_nodes(nodes)
                .with_bins(TRACE_BINS),
        )?
        .series;
        out.push((spec, series));
    }
    Ok(out)
}

/// The offline single-tenant reference: [`replay_estimation`] over the
/// first `bins` bins of the trace, configured exactly as the service
/// configures the tenant.
fn offline_reports(
    spec: &TenantSpec,
    series: &TmSeries,
    bins: usize,
) -> Result<Vec<WindowReport>, Box<dyn std::error::Error>> {
    let topo = spec.build_topology()?;
    let model = ObservationModel::new(&topo, spec.routing)?;
    let pipeline = EstimationPipeline::new(model).config(spec.estimation_config());
    let mut stream = ReplayStream::new(series.slice_bins(0, bins)?);
    let report = replay_estimation(&mut stream, pipeline, &spec.replay_options())?;
    Ok(report.windows)
}

/// Bit-exact fingerprint of a report (shared wire encoding).
fn report_bits(report: &WindowReport) -> Vec<u8> {
    let mut e = Enc::new();
    encode_window_report(&mut e, report);
    e.into_bytes()
}

fn assert_reports_match(
    context: &str,
    got: &[WindowReport],
    want: &[WindowReport],
) -> Result<(), Box<dyn std::error::Error>> {
    if got.len() != want.len() {
        return Err(format!(
            "{context}: {} reports from the service, {} offline",
            got.len(),
            want.len()
        )
        .into());
    }
    for (g, w) in got.iter().zip(want) {
        if report_bits(g) != report_bits(w) {
            return Err(format!(
                "{context}: window {} differs from the offline reference:\n  service: {g:?}\n  offline: {w:?}",
                w.window
            )
            .into());
        }
    }
    Ok(())
}

fn snapshot_path(dir: &str, name: &str) -> std::path::PathBuf {
    std::path::Path::new(dir).join(format!("{name}.snap"))
}

fn smoke(addr: &str, snapshot_dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(snapshot_dir)?;
    let mut client = Client::connect_with_retry(addr, Duration::from_secs(10))?;
    client.hello()?;
    let tenants = scenario()?;
    let mut ids = Vec::new();
    for (spec, series) in &tenants {
        let id = client.register(spec.clone())?;
        for t in 0..HALF_BINS {
            client.ingest(id, series.column(t))?;
        }
        ids.push(id);
    }
    let events = client.poll()?;
    for ev in &events {
        println!("smoke: {ev}");
    }
    for (id, (spec, series)) in ids.iter().zip(&tenants) {
        let got = tenant_reports(&events, *id);
        let want = offline_reports(spec, series, HALF_BINS)?;
        assert_reports_match(&format!("smoke/{}", spec.name), &got, &want)?;
        // The estimate endpoint serves the last window's full series.
        let frame = client
            .estimate(*id)?
            .ok_or_else(|| format!("smoke/{}: no estimate after poll", spec.name))?;
        if frame.bins as usize != WINDOW_BINS || frame.nodes as usize != spec.nodes() {
            return Err(format!("smoke/{}: estimate shape off: {frame:?}", spec.name).into());
        }
        let snap = client.snapshot(*id)?;
        std::fs::write(snapshot_path(snapshot_dir, &spec.name), &snap)?;
        println!(
            "smoke: tenant {} ok ({} windows, snapshot {} bytes)",
            spec.name,
            got.len(),
            snap.len()
        );
    }
    // Scrape the observability endpoint mid-run: the poll above must be
    // visible as non-zero per-tenant counters, in both renderings.
    let prom = client.stats(StatsFormat::Prometheus)?;
    if !prom.contains("# TYPE serve_polls_total counter") {
        return Err(format!("smoke: malformed prometheus stats:\n{prom}").into());
    }
    for needle in [
        "serve_polls_total 1",
        "serve_poll_windows_total{tenant=\"pop-west\"} 2",
        "serve_poll_windows_total{tenant=\"pop-east\"} 2",
        "serve_ingest_bins_total{tenant=\"pop-west\"} 8",
        "stream_window_seconds_count 4",
        "solver_dense_solves_total",
    ] {
        if !prom.contains(needle) {
            return Err(format!("smoke: stats missing {needle:?}:\n{prom}").into());
        }
    }
    let json = client.stats(StatsFormat::Json)?;
    if !json.contains("\"name\": \"serve.poll.windows_total\"") || !json.contains("\"histograms\":")
    {
        return Err(format!("smoke: malformed json stats:\n{json}").into());
    }
    println!("smoke: stats scrape ok ({} bytes prometheus)", prom.len());
    client.shutdown()?;
    println!("smoke ok");
    Ok(())
}

fn resume(addr: &str, snapshot_dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = Client::connect_with_retry(addr, Duration::from_secs(10))?;
    client.hello()?;
    let tenants = scenario()?;
    let mut ids = Vec::new();
    for (spec, _) in &tenants {
        let bytes = std::fs::read(snapshot_path(snapshot_dir, &spec.name))?;
        ids.push(client.restore(&bytes)?);
    }
    for (id, (_, series)) in ids.iter().zip(&tenants) {
        for t in HALF_BINS..TRACE_BINS {
            client.ingest(*id, series.column(t))?;
        }
    }
    let events = client.poll()?;
    for ev in &events {
        println!("resume: {ev}");
    }
    let resumed_windows = HALF_BINS / WINDOW_BINS;
    for (id, (spec, series)) in ids.iter().zip(&tenants) {
        let got = tenant_reports(&events, *id);
        // The uninterrupted reference: one offline replay over the FULL
        // trace; the resumed service must reproduce its tail bit for bit.
        let want = offline_reports(spec, series, TRACE_BINS)?;
        assert_reports_match(
            &format!("resume/{}", spec.name),
            &got,
            &want[resumed_windows..],
        )?;
        println!("resume: tenant {} ok ({} windows)", spec.name, got.len());
    }
    client.shutdown()?;
    println!("resume ok");
    Ok(())
}
