//! Versioned warm-state snapshots.
//!
//! A [`TenantSnapshot`] persists one tenant completely: the full
//! [`TenantSpec`] (so restore needs no re-registration) plus every piece
//! of runtime state the next window depends on — the rolling fit, the
//! forecaster's EWMA/seasonal history, the drift detector's CUSUM
//! statistics, and the windower's position *including partially buffered
//! bins*. Because every float is persisted bit-exactly
//! ([`crate::codec`]), a service restored from a snapshot continues
//! bit-identically to one that never stopped — the restart-cheap serving
//! story the warm-start bench numbers (warm fits ~5.5x faster than cold)
//! make worthwhile.

use crate::codec::{Dec, Enc};
use crate::spec::TenantSpec;
use crate::{Result, ServeError};
use ic_core::{FitReport, StableFpParams};
use ic_linalg::{Matrix, SolveStats};
use ic_stream::{
    DriftDetectorState, ParamForecasterState, StreamingTomogravityState, WindowerState,
};

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ICSV";
/// Current snapshot format version (2: tenant specs carry batched-
/// execution fields).
pub const SNAPSHOT_VERSION: u32 = 2;

/// One tenant's complete persisted state.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// The tenant's full configuration.
    pub spec: TenantSpec,
    /// Window position, including partially buffered bins.
    pub windower: WindowerState,
    /// The rolling fit.
    pub estimator: StreamingTomogravityState,
    /// Forecaster EWMA levels and seasonal ring.
    pub forecaster: ParamForecasterState,
    /// Drift-detector baseline and CUSUM accumulators.
    pub detector: DriftDetectorState,
}

impl TenantSnapshot {
    /// Serializes the snapshot (magic + version + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_raw(&SNAPSHOT_MAGIC);
        e.put_u32(SNAPSHOT_VERSION);
        self.spec.encode(&mut e);
        encode_windower(&mut e, &self.windower);
        encode_fit(&mut e, self.estimator.previous.as_ref());
        encode_forecaster(&mut e, &self.forecaster);
        encode_detector(&mut e, &self.detector);
        e.into_bytes()
    }

    /// Deserializes a snapshot, rejecting wrong magic/version and
    /// trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut d = Dec::new(bytes);
        let magic = d.take_raw(4)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(ServeError::Codec(format!(
                "bad snapshot magic {magic:?} (want {SNAPSHOT_MAGIC:?})"
            )));
        }
        let version = d.take_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(ServeError::Codec(format!(
                "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let spec = TenantSpec::decode(&mut d)?;
        let windower = decode_windower(&mut d)?;
        let estimator = StreamingTomogravityState {
            previous: decode_fit(&mut d)?,
        };
        let forecaster = decode_forecaster(&mut d)?;
        let detector = decode_detector(&mut d)?;
        d.expect_end()?;
        Ok(TenantSnapshot {
            spec,
            windower,
            estimator,
            forecaster,
            detector,
        })
    }
}

fn encode_windower(e: &mut Enc, w: &WindowerState) {
    e.put_usize(w.buffer.len());
    for col in &w.buffer {
        e.put_f64s(col);
    }
    e.put_usize(w.pending_skip);
    e.put_usize(w.next_start);
    e.put_usize(w.produced);
}

fn decode_windower(d: &mut Dec<'_>) -> Result<WindowerState> {
    let buffered = d.take_usize()?;
    let mut buffer = Vec::with_capacity(buffered.min(1 << 20));
    for _ in 0..buffered {
        buffer.push(d.take_f64s()?);
    }
    Ok(WindowerState {
        buffer,
        pending_skip: d.take_usize()?,
        next_start: d.take_usize()?,
        produced: d.take_usize()?,
    })
}

fn encode_fit(e: &mut Enc, fit: Option<&FitReport<StableFpParams>>) {
    let Some(fit) = fit else {
        e.put_bool(false);
        return;
    };
    e.put_bool(true);
    e.put_f64(fit.params.f);
    e.put_f64s(&fit.params.preference);
    e.put_usize(fit.params.activity.rows());
    e.put_usize(fit.params.activity.cols());
    e.put_f64s(fit.params.activity.as_slice());
    e.put_f64s(&fit.objective_history);
    e.put_bool(fit.converged);
    e.put_u64(fit.solve_stats.dense_solves);
    e.put_u64(fit.solve_stats.pcg_solves);
    e.put_u64(fit.solve_stats.pcg_iterations);
    e.put_u64(fit.solve_stats.pcg_stalls);
    e.put_u64(fit.solve_stats.fallbacks);
}

fn decode_fit(d: &mut Dec<'_>) -> Result<Option<FitReport<StableFpParams>>> {
    if !d.take_bool()? {
        return Ok(None);
    }
    let f = d.take_f64()?;
    let preference = d.take_f64s()?;
    let rows = d.take_usize()?;
    let cols = d.take_usize()?;
    let activity = Matrix::from_vec(rows, cols, d.take_f64s()?)
        .map_err(|e| ServeError::Codec(format!("snapshot activity matrix: {e}")))?;
    let objective_history = d.take_f64s()?;
    let converged = d.take_bool()?;
    let solve_stats = SolveStats {
        dense_solves: d.take_u64()?,
        pcg_solves: d.take_u64()?,
        pcg_iterations: d.take_u64()?,
        pcg_stalls: d.take_u64()?,
        fallbacks: d.take_u64()?,
    };
    Ok(Some(FitReport {
        params: StableFpParams {
            f,
            preference,
            activity,
        },
        objective_history,
        converged,
        solve_stats,
    }))
}

fn encode_forecaster(e: &mut Enc, s: &ParamForecasterState) {
    e.put_usize(s.season_ring.len());
    for (f, p) in &s.season_ring {
        e.put_f64(*f);
        e.put_f64s(p);
    }
    e.put_usize(s.observed);
    e.put_opt_f64(s.ewma_f);
    match &s.ewma_p {
        Some(p) => {
            e.put_bool(true);
            e.put_f64s(p);
        }
        None => e.put_bool(false),
    }
}

fn decode_forecaster(d: &mut Dec<'_>) -> Result<ParamForecasterState> {
    let ring_len = d.take_usize()?;
    let mut season_ring = Vec::with_capacity(ring_len.min(1 << 20));
    for _ in 0..ring_len {
        let f = d.take_f64()?;
        let p = d.take_f64s()?;
        season_ring.push((f, p));
    }
    let observed = d.take_usize()?;
    let ewma_f = d.take_opt_f64()?;
    let ewma_p = if d.take_bool()? {
        Some(d.take_f64s()?)
    } else {
        None
    };
    Ok(ParamForecasterState {
        season_ring,
        observed,
        ewma_f,
        ewma_p,
    })
}

fn encode_detector(e: &mut Enc, s: &DriftDetectorState) {
    match &s.previous {
        Some((f, p)) => {
            e.put_bool(true);
            e.put_f64(*f);
            e.put_f64s(p);
        }
        None => e.put_bool(false),
    }
    e.put_f64(s.cusum_up);
    e.put_f64(s.cusum_down);
}

fn decode_detector(d: &mut Dec<'_>) -> Result<DriftDetectorState> {
    let previous = if d.take_bool()? {
        let f = d.take_f64()?;
        let p = d.take_f64s()?;
        Some((f, p))
    } else {
        None
    };
    Ok(DriftDetectorState {
        previous,
        cusum_up: d.take_f64()?,
        cusum_down: d.take_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_topology::{RoutingScheme, Topology};

    fn sample_snapshot() -> TenantSnapshot {
        let mut topo = Topology::new("pair");
        let a = topo.add_node("a").unwrap();
        let b = topo.add_node("b").unwrap();
        topo.add_symmetric_link(a, b, 1.0, 1e12).unwrap();
        TenantSnapshot {
            spec: TenantSpec::new("t0", &topo, RoutingScheme::Ecmp)
                .with_bin_seconds(300.0)
                .with_window_bins(4),
            windower: WindowerState {
                buffer: vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]],
                pending_skip: 0,
                next_start: 8,
                produced: 2,
            },
            estimator: StreamingTomogravityState {
                previous: Some(FitReport {
                    params: StableFpParams {
                        f: 0.27,
                        preference: vec![0.6, 0.4],
                        activity: Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
                            .unwrap(),
                    },
                    objective_history: vec![0.5, 0.1, 0.05],
                    converged: true,
                    solve_stats: SolveStats {
                        dense_solves: 12,
                        pcg_solves: 3,
                        pcg_iterations: 77,
                        pcg_stalls: 1,
                        fallbacks: 0,
                    },
                }),
            },
            forecaster: ParamForecasterState {
                season_ring: vec![(0.25, vec![0.5, 0.5]), (0.26, vec![0.55, 0.45])],
                observed: 9,
                ewma_f: Some(0.255),
                ewma_p: Some(vec![0.52, 0.48]),
            },
            detector: DriftDetectorState {
                previous: Some((0.26, vec![0.55, 0.45])),
                cusum_up: 0.013,
                cusum_down: 0.0,
            },
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let back = TenantSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // Cold-start (all-empty) state round-trips too.
        let cold = TenantSnapshot {
            spec: snap.spec.clone(),
            windower: WindowerState::default(),
            estimator: StreamingTomogravityState { previous: None },
            forecaster: ParamForecasterState::default(),
            detector: DriftDetectorState::default(),
        };
        assert_eq!(TenantSnapshot::from_bytes(&cold.to_bytes()).unwrap(), cold);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(TenantSnapshot::from_bytes(&wrong_magic).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(TenantSnapshot::from_bytes(&wrong_version).is_err());
        assert!(TenantSnapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(TenantSnapshot::from_bytes(&trailing).is_err());
        assert!(TenantSnapshot::from_bytes(b"IC").is_err());
    }
}
