//! Hand-rolled little-endian binary codec.
//!
//! The workspace is offline (no serde); every byte the service persists
//! (snapshots, journals) or puts on the wire goes through this one
//! encoder/decoder pair, so the format is defined in exactly one place.
//! All integers are little-endian; `f64`s are encoded via
//! [`f64::to_bits`], so round-trips are bit-exact for every value
//! including NaNs, infinities, and signed zeros — the property the
//! snapshot bit-identity guarantee rests on.

use crate::{Result, ServeError};

/// An append-only byte encoder.
#[derive(Debug, Clone, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (sizes are platform-independent on
    /// the wire).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends an optional `f64` (presence byte + bits).
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_f64(x);
            }
            None => self.put_bool(false),
        }
    }
}

/// A cursor-based decoder over an encoded byte slice.
///
/// Every `take_*` fails with [`ServeError::Codec`] instead of panicking
/// on truncated or corrupt input.
#[derive(Debug, Clone)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed (trailing garbage guard).
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(ServeError::Codec(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(ServeError::Codec(format!(
                "truncated input: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads raw bytes verbatim (no length prefix).
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` encoded as `u64`, rejecting values that do not fit.
    pub fn take_usize(&mut self) -> Result<usize> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| ServeError::Codec(format!("size {v} overflows usize")))
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool, rejecting bytes other than 0/1.
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(ServeError::Codec(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ServeError::Codec(format!("invalid utf-8 string: {e}")))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn take_f64s(&mut self) -> Result<Vec<f64>> {
        let len = self.take_usize()?;
        // Guard against absurd lengths from corrupt input before
        // allocating.
        if len > self.remaining() / 8 {
            return Err(ServeError::Codec(format!(
                "f64 vector length {len} exceeds remaining input"
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed byte vector.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.take_usize()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads an optional `f64`.
    pub fn take_opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.take_bool()? {
            Some(self.take_f64()?)
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_round_trips_are_bit_exact() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_usize(12345);
        e.put_f64(f64::NAN);
        e.put_f64(-0.0);
        e.put_bool(true);
        e.put_str("tenant-α");
        e.put_f64s(&[1.5, f64::INFINITY]);
        e.put_bytes(&[1, 2, 3]);
        e.put_opt_f64(Some(2.5));
        e.put_opt_f64(None);
        assert!(!e.is_empty());
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX);
        assert_eq!(d.take_usize().unwrap(), 12345);
        assert!(d.take_f64().unwrap().is_nan());
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_str().unwrap(), "tenant-α");
        assert_eq!(d.take_f64s().unwrap(), vec![1.5, f64::INFINITY]);
        assert_eq!(d.take_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.take_opt_f64().unwrap(), Some(2.5));
        assert_eq!(d.take_opt_f64().unwrap(), None);
        d.expect_end().unwrap();
    }

    #[test]
    fn truncated_and_corrupt_input_errors_cleanly() {
        let mut e = Enc::new();
        e.put_u64(42);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes[..5]).take_u64().is_err());
        let mut d = Dec::new(&bytes);
        d.take_u64().unwrap();
        assert!(d.take_u8().is_err());
        // Bool bytes other than 0/1 are rejected.
        assert!(Dec::new(&[2]).take_bool().is_err());
        // A huge claimed vector length fails before allocating.
        let mut e = Enc::new();
        e.put_u64(u64::MAX);
        assert!(Dec::new(&e.into_bytes()).take_f64s().is_err());
        // Trailing garbage is caught.
        assert!(Dec::new(&[0]).expect_end().is_err());
        // Invalid UTF-8 is caught.
        let mut e = Enc::new();
        e.put_u32(2);
        e.put_raw(&[0xFF, 0xFE]);
        assert!(Dec::new(&e.into_bytes()).take_str().is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any mixed sequence of values survives an encode/decode
        /// round-trip bit-exactly, including non-finite floats.
        #[test]
        fn mixed_round_trip(
            a in any::<u64>(),
            b in any::<u32>(),
            f_bits in any::<u64>(),
            s_bytes in proptest::collection::vec(32u8..127, 0..24),
            xs in proptest::collection::vec(any::<u64>(), 0..16),
            flag in any::<bool>(),
        ) {
            let s: String = s_bytes.iter().map(|&b| b as char).collect();
            let f = f64::from_bits(f_bits);
            let floats: Vec<f64> = xs.iter().map(|&b| f64::from_bits(b)).collect();
            let mut e = Enc::new();
            e.put_u64(a);
            e.put_u32(b);
            e.put_f64(f);
            e.put_str(&s);
            e.put_f64s(&floats);
            e.put_bool(flag);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            prop_assert_eq!(d.take_u64().unwrap(), a);
            prop_assert_eq!(d.take_u32().unwrap(), b);
            prop_assert_eq!(d.take_f64().unwrap().to_bits(), f_bits);
            prop_assert_eq!(d.take_str().unwrap(), s);
            let got = d.take_f64s().unwrap();
            prop_assert_eq!(got.len(), floats.len());
            for (g, w) in got.iter().zip(&floats) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
            prop_assert_eq!(d.take_bool().unwrap(), flag);
            d.expect_end().unwrap();
        }
    }
}
