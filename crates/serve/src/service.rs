//! The transport-free service core.
//!
//! A [`Service`] owns many independent tenants — each a registered
//! topology + routing + [`StreamingTomogravity`] (with held workspaces) +
//! [`ParamForecaster`] + [`DriftDetector`] — and batches their ready
//! windows onto one shared [`ic_engine::Engine`]. Determinism is the
//! design invariant:
//!
//! * **Per-tenant ordering.** Window `k + 1`'s prior depends on window
//!   `k`'s fit, so a [`Service::poll`] round takes at most *one* ready
//!   window per tenant and loops rounds until drained. Within a round,
//!   each tenant-window contributes two independent engine jobs (the
//!   IC-prior candidate and the gravity-prior baseline — the same pair
//!   [`ic_stream::replay_estimation`] runs), so cross-tenant throughput
//!   rides the executor while every tenant sees exactly the serial
//!   history it would see alone.
//! * **Bit-identity.** The engine assembles results by job index and its
//!   thread count never changes results, so a tenant's report stream is
//!   bit-identical to feeding the same bins through
//!   [`ic_stream::replay_estimation`] offline, for any worker count and
//!   any interleaving of other tenants (proptest-locked in
//!   `tests/service.rs`).
//! * **Record/replay.** With [`Service::enable_journal`] every
//!   registration, ingested column, and snapshot-restore is appended to a
//!   journal that [`Service::replay_journal`] can re-feed through a fresh
//!   service core offline, reproducing every tenant's reports.

use crate::codec::{Dec, Enc};
use crate::snapshot::TenantSnapshot;
use crate::spec::TenantSpec;
use crate::wire::StatsFormat;
use crate::{Result, ServeError};
use ic_core::{improvement_percent, mean_rel_l2};
use ic_engine::{Engine, WorkspacePool};
use ic_estimation::{
    EstimationPipeline, GravityPrior, MultilevelMetrics, ObservationModel, PipelineBatchWorkspace,
    PipelineWorkspace,
};
use ic_obs::{Counter, Histogram, MetricsRegistry, Span};
use ic_stream::{
    DriftDetector, OnlineEstimator, ParamForecast, ParamForecaster, StreamError, StreamMetrics,
    StreamingTomogravity, Window, WindowEstimate, WindowReport, Windower,
};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Identifies a registered tenant (assigned densely from 0).
pub type TenantId = u32;

/// One completed window, pushed to subscribers and returned by
/// [`Service::poll`]. Drift alerts ride inside the report's
/// `drift_events` — first-class, not dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantEvent {
    /// The tenant the window belongs to.
    pub tenant: TenantId,
    /// The tenant's name (denormalized for subscribers).
    pub name: String,
    /// The window's results, identical in structure and bits to the
    /// offline replay drivers' reports.
    pub report: WindowReport,
}

impl TenantEvent {
    /// Stable kebab-case event kind: `"drift-alert"` when the window
    /// fired change detection, else `"window-report"`. This string is the
    /// event-log/CLI vocabulary — grep for it, don't re-derive it.
    pub fn kind(&self) -> &'static str {
        if self.report.drift_events.is_empty() {
            "window-report"
        } else {
            "drift-alert"
        }
    }
}

impl std::fmt::Display for TenantEvent {
    /// The one-line human rendering shared by the CLI and event logs:
    /// `tenant=<name> window=<k> kind=<kind> error=<e> gravity=<g>
    /// improvement=<p>% [drift: <kinds>]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant={} window={} kind={} error={:.6} gravity={:.6} improvement={:.2}%",
            self.name,
            self.report.window,
            self.kind(),
            self.report.error_candidate,
            self.report.error_gravity,
            self.report.improvement,
        )?;
        if !self.report.drift_events.is_empty() {
            write!(f, " drift:")?;
            for ev in &self.report.drift_events {
                write!(f, " {}={:.6}", ev.kind.as_str(), ev.statistic)?;
            }
        }
        Ok(())
    }
}

/// Magic bytes opening every journal.
pub const JOURNAL_MAGIC: [u8; 4] = *b"ICJL";
/// Current journal format version (2: tenant specs carry batched-
/// execution fields).
pub const JOURNAL_VERSION: u32 = 2;

const RECORD_REGISTER: u8 = 0;
const RECORD_INGEST: u8 = 1;
const RECORD_RESTORE: u8 = 2;

/// Per-tenant labeled counter handles (`tenant=<name>` series),
/// registered when the service has metrics enabled.
struct TenantMetrics {
    /// `serve.ingest.bins_total{tenant=..}`.
    ingested_bins: Arc<Counter>,
    /// `serve.poll.windows_total{tenant=..}`.
    polled_windows: Arc<Counter>,
}

struct Tenant {
    spec: TenantSpec,
    /// Gravity-prior baseline pipeline (the candidate holds its own
    /// clone inside the streaming estimator).
    pipeline: EstimationPipeline,
    /// The IC-prior candidate; behind a mutex so an engine job can
    /// advance it while the service only holds `&self.tenants`.
    candidate: Mutex<StreamingTomogravity>,
    windower: Windower,
    forecaster: ParamForecaster,
    detector: DriftDetector,
    /// Completed windows awaiting a poll round, in arrival order.
    ready: VecDeque<Window>,
    last_estimate: Option<WindowEstimate>,
    last_report: Option<WindowReport>,
    metrics: Option<TenantMetrics>,
}

impl Tenant {
    fn build(spec: TenantSpec, metrics: Option<&ServiceMetrics>) -> Result<Self> {
        spec.validate()?;
        let topology = spec.build_topology()?;
        let model = ObservationModel::new(&topology, spec.routing)?;
        let config = spec.estimation_config();
        let pipeline = EstimationPipeline::new(model).config(config.clone());
        let mut candidate = StreamingTomogravity::new(pipeline.clone()).config(config);
        if let Some(m) = metrics {
            candidate.set_metrics(Arc::clone(&m.stream));
        }
        let windower = match spec.stride {
            None => Windower::tumbling(spec.window_bins),
            Some(stride) => Windower::sliding(spec.window_bins, stride),
        }?;
        let forecaster = ParamForecaster::new(spec.forecast.clone())?;
        let detector = DriftDetector::new(spec.drift.clone())?;
        let tenant_metrics = metrics.map(|m| m.for_tenant(&spec.name));
        Ok(Tenant {
            spec,
            pipeline,
            candidate: Mutex::new(candidate),
            windower,
            forecaster,
            detector,
            ready: VecDeque::new(),
            last_estimate: None,
            last_report: None,
            metrics: tenant_metrics,
        })
    }
}

/// A candidate/baseline job's output inside a poll round.
enum StepOut {
    Candidate(Box<WindowEstimate>),
    Baseline(f64),
}

/// A poll that takes longer than this logs a `slow-poll` event.
const SLOW_POLL_SECONDS: f64 = 1.0;

/// Pre-registered handles for the serving layer's metrics (see
/// [`Service::enable_metrics`]). Registration happens once here and per
/// tenant at registration time; the poll/ingest hot paths only touch
/// atomics.
struct ServiceMetrics {
    registry: Arc<MetricsRegistry>,
    /// Shared by every tenant's streaming estimator
    /// (`stream.window.seconds`, `stream.windows_total`, ...).
    stream: Arc<StreamMetrics>,
    /// `serve.poll.seconds` — wall time of one [`Service::poll`].
    poll: Arc<Histogram>,
    /// `serve.polls_total`.
    polls: Arc<Counter>,
    /// `solver.dense_solves_total` — live view of [`SolveStats`]
    /// accumulated across all tenants' windows.
    ///
    /// [`SolveStats`]: ic_linalg::SolveStats
    dense_solves: Arc<Counter>,
    /// `solver.pcg_solves_total`.
    pcg_solves: Arc<Counter>,
    /// `solver.pcg_iterations_total`.
    pcg_iterations: Arc<Counter>,
    /// `solver.pcg_stalls_total`.
    pcg_stalls: Arc<Counter>,
    /// `solver.fallbacks_total`.
    fallbacks: Arc<Counter>,
    /// `multilevel.*` — cluster count, boundary-link fraction, and the
    /// per-level solve-time histograms of the multilevel decomposition.
    /// Pre-registered so `Request::Stats` always surfaces the family;
    /// embedders running a [`MultilevelPipeline`] attach these handles
    /// via [`Service::multilevel_metrics`].
    ///
    /// [`MultilevelPipeline`]: ic_estimation::MultilevelPipeline
    multilevel: Arc<MultilevelMetrics>,
}

impl ServiceMetrics {
    fn register(registry: Arc<MetricsRegistry>) -> Self {
        ServiceMetrics {
            stream: StreamMetrics::register(&registry),
            poll: registry.histogram("serve.poll.seconds"),
            polls: registry.counter("serve.polls_total"),
            dense_solves: registry.counter("solver.dense_solves_total"),
            pcg_solves: registry.counter("solver.pcg_solves_total"),
            pcg_iterations: registry.counter("solver.pcg_iterations_total"),
            pcg_stalls: registry.counter("solver.pcg_stalls_total"),
            fallbacks: registry.counter("solver.fallbacks_total"),
            multilevel: MultilevelMetrics::register(&registry),
            registry,
        }
    }

    fn for_tenant(&self, name: &str) -> TenantMetrics {
        TenantMetrics {
            ingested_bins: self
                .registry
                .counter_with("serve.ingest.bins_total", &[("tenant", name)]),
            polled_windows: self
                .registry
                .counter_with("serve.poll.windows_total", &[("tenant", name)]),
        }
    }
}

/// The multi-tenant streaming estimation service.
#[derive(Default)]
pub struct Service {
    engine: Engine,
    tenants: Vec<Tenant>,
    /// Per-worker scratch for the gravity-baseline jobs (result-neutral).
    scratch: WorkspacePool<PipelineWorkspace>,
    /// SoA scratch for gravity-baseline jobs of batched tenants.
    batch_scratch: WorkspacePool<PipelineBatchWorkspace>,
    journal: Option<Vec<u8>>,
    /// Observability handles; absent (the default) every recording site
    /// is a single branch. Metrics never change results.
    metrics: Option<ServiceMetrics>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("tenants", &self.tenants.len())
            .field("pending", &self.pending())
            .field("journaling", &self.journal.is_some())
            .finish()
    }
}

impl Service {
    /// A service batching onto the default engine
    /// ([`Engine::new`] — all available cores).
    pub fn new() -> Self {
        Service::with_engine(Engine::new())
    }

    /// A service batching onto an explicit engine. The thread count
    /// never changes any tenant's results — only wall-clock time.
    pub fn with_engine(engine: Engine) -> Self {
        Service {
            engine,
            tenants: Vec::new(),
            scratch: WorkspacePool::new(),
            batch_scratch: WorkspacePool::new(),
            journal: None,
            metrics: None,
        }
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Looks a tenant up by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.tenants
            .iter()
            .position(|t| t.spec.name == name)
            .map(|i| i as TenantId)
    }

    /// The tenant's name.
    pub fn tenant_name(&self, id: TenantId) -> Result<&str> {
        Ok(&self.tenants[self.check(id)?].spec.name)
    }

    /// Ready windows across all tenants awaiting a poll.
    pub fn pending(&self) -> usize {
        self.tenants.iter().map(|t| t.ready.len()).sum()
    }

    fn check(&self, id: TenantId) -> Result<usize> {
        let idx = id as usize;
        if idx >= self.tenants.len() {
            return Err(ServeError::UnknownTenant(id));
        }
        Ok(idx)
    }

    /// Starts journaling. Call *before* registering tenants: the journal
    /// records registrations, ingested columns, and snapshot-restores
    /// from this point on, and [`Service::replay_journal`] replays it
    /// against an empty service.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            let mut e = Enc::new();
            e.put_raw(&JOURNAL_MAGIC);
            e.put_u32(JOURNAL_VERSION);
            self.journal = Some(e.into_bytes());
        }
    }

    /// The journal so far, when journaling is enabled.
    pub fn journal_bytes(&self) -> Option<&[u8]> {
        self.journal.as_deref()
    }

    /// Turns on metrics and structured events for this service.
    ///
    /// Creates the registry, pre-registers the serve/stream/solver metric
    /// families, instruments every already-registered tenant, and attaches
    /// the shared stream metrics to each tenant's estimator. Recording is
    /// lock-free atomics and is **result-neutral**: every estimate,
    /// snapshot, and journal byte is bit-identical with metrics on or off
    /// (proptest-locked in `tests/service.rs`). Idempotent.
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_some() {
            return;
        }
        let metrics = ServiceMetrics::register(Arc::new(MetricsRegistry::new()));
        for tenant in &mut self.tenants {
            tenant.metrics = Some(metrics.for_tenant(&tenant.spec.name));
            tenant
                .candidate
                .get_mut()
                .expect("candidate lock poisoned")
                .set_metrics(Arc::clone(&metrics.stream));
        }
        self.metrics = Some(metrics);
    }

    /// The metrics registry, when [`Service::enable_metrics`] was called.
    /// Embedders can register their own instruments on it or read events.
    pub fn metrics_registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref().map(|m| &m.registry)
    }

    /// The pre-registered `multilevel.*` handles, when metrics are
    /// enabled. Embedders running a multilevel decomposition attach them
    /// (`MultilevelPipeline::with_metrics`) so cluster counts,
    /// boundary-link fractions, and per-level solve times flow through
    /// this service's registry — and out over `Request::Stats`.
    pub fn multilevel_metrics(&self) -> Option<Arc<MultilevelMetrics>> {
        self.metrics.as_ref().map(|m| Arc::clone(&m.multilevel))
    }

    /// Renders the metrics registry as Prometheus exposition text or
    /// JSON. Fails with [`ServeError::BadRequest`] when metrics are not
    /// enabled.
    pub fn render_stats(&self, format: StatsFormat) -> Result<String> {
        let m = self.metrics.as_ref().ok_or_else(|| {
            ServeError::BadRequest("metrics are not enabled on this service".into())
        })?;
        Ok(match format {
            StatsFormat::Prometheus => m.registry.render_prometheus(),
            StatsFormat::Json => m.registry.render_json(),
        })
    }

    /// Registers a tenant; its name must be unused.
    pub fn register(&mut self, spec: TenantSpec) -> Result<TenantId> {
        if self.tenant_id(&spec.name).is_some() {
            return Err(ServeError::NameTaken(spec.name));
        }
        let tenant = Tenant::build(spec, self.metrics.as_ref())?;
        // Journal only successful registrations, so a replayed journal
        // never trips over a spec this build rejected.
        if let Some(journal) = &mut self.journal {
            let mut e = Enc::new();
            e.put_u8(RECORD_REGISTER);
            tenant.spec.encode(&mut e);
            journal.extend_from_slice(&e.into_bytes());
        }
        self.tenants.push(tenant);
        Ok((self.tenants.len() - 1) as TenantId)
    }

    /// Restores a tenant from a snapshot, picking up exactly where the
    /// snapshotted service left off (bit-identically — including
    /// mid-window partial bins). The snapshot carries the full spec, so
    /// no prior registration is needed; the name must be unused.
    pub fn restore_tenant(&mut self, snapshot: &[u8]) -> Result<TenantId> {
        let snap = TenantSnapshot::from_bytes(snapshot)?;
        if self.tenant_id(&snap.spec.name).is_some() {
            return Err(ServeError::NameTaken(snap.spec.name));
        }
        let mut tenant = Tenant::build(snap.spec, self.metrics.as_ref())?;
        if let Some(journal) = &mut self.journal {
            let mut e = Enc::new();
            e.put_u8(RECORD_RESTORE);
            e.put_bytes(snapshot);
            journal.extend_from_slice(&e.into_bytes());
        }
        tenant.windower.restore(snap.windower);
        tenant
            .candidate
            .get_mut()
            .expect("candidate lock poisoned")
            .restore(snap.estimator);
        tenant.forecaster.restore(snap.forecaster);
        tenant.detector.restore(snap.detector);
        if let Some(m) = &self.metrics {
            m.registry
                .event("restore", format!("tenant={}", tenant.spec.name));
        }
        self.tenants.push(tenant);
        Ok((self.tenants.len() - 1) as TenantId)
    }

    /// Snapshots one tenant's warm state (spec, rolling fit, forecaster,
    /// drift statistics, window position). Fails while the tenant has
    /// unprocessed ready windows — poll first, so no completed-but-
    /// unreported window can be lost across a restart.
    pub fn snapshot_tenant(&self, id: TenantId) -> Result<Vec<u8>> {
        let t = &self.tenants[self.check(id)?];
        if !t.ready.is_empty() {
            return Err(ServeError::BadRequest(format!(
                "tenant {}: {} ready window(s) not yet polled; poll() before snapshotting",
                t.spec.name,
                t.ready.len()
            )));
        }
        let bytes = TenantSnapshot {
            spec: t.spec.clone(),
            windower: t.windower.state(),
            estimator: t.candidate.lock().expect("candidate lock poisoned").state(),
            forecaster: t.forecaster.state(),
            detector: t.detector.state(),
        }
        .to_bytes();
        if let Some(m) = &self.metrics {
            m.registry.event(
                "snapshot",
                format!("tenant={} bytes={}", t.spec.name, bytes.len()),
            );
        }
        Ok(bytes)
    }

    /// Ingests one link-load column (length `nodes²`) for a tenant.
    /// Returns the tenant's ready-window count after the push; call
    /// [`Service::poll`] to execute ready windows.
    pub fn ingest(&mut self, id: TenantId, column: Vec<f64>) -> Result<usize> {
        let idx = self.check(id)?;
        let expected = self.tenants[idx].spec.column_len();
        if column.len() != expected {
            return Err(ServeError::BadRequest(format!(
                "tenant {}: column has {} entries, want {expected}",
                self.tenants[idx].spec.name,
                column.len()
            )));
        }
        if let Some(journal) = &mut self.journal {
            let mut e = Enc::new();
            e.put_u8(RECORD_INGEST);
            e.put_u32(id);
            e.put_f64s(&column);
            journal.extend_from_slice(&e.into_bytes());
        }
        let t = &mut self.tenants[idx];
        let nodes = t.spec.nodes();
        let bin_seconds = t.spec.bin_seconds;
        if let Some(m) = &t.metrics {
            m.ingested_bins.inc();
        }
        if let Some(window) = t.windower.push(nodes, bin_seconds, column)? {
            t.ready.push_back(window);
        }
        Ok(t.ready.len())
    }

    /// Executes every ready window across all tenants and returns the
    /// completed-window events in processing order.
    ///
    /// Windows run in rounds — at most one per tenant per round, tenants
    /// in id order — so each tenant's windows execute strictly in stream
    /// order while distinct tenants (and each window's candidate/baseline
    /// pair) batch onto the shared engine as one job list.
    pub fn poll(&mut self) -> Result<Vec<TenantEvent>> {
        let span = Span::maybe(self.metrics.as_ref().map(|m| &m.poll));
        let mut events = Vec::new();
        loop {
            let mut round: Vec<(usize, Window)> = Vec::new();
            for (idx, t) in self.tenants.iter_mut().enumerate() {
                if let Some(w) = t.ready.pop_front() {
                    round.push((idx, w));
                }
            }
            if round.is_empty() {
                break;
            }
            let tenants = &self.tenants;
            let round_ref = &round;
            let batch_scratch = &self.batch_scratch;
            let outs: Vec<StepOut> = self
                .engine
                .run(round.len() * 2, &self.scratch, |j, ws| {
                    let (idx, window) = &round_ref[j / 2];
                    let tenant = &tenants[*idx];
                    if j % 2 == 0 {
                        // The candidate step IS StreamingTomogravity::process —
                        // the single source of the per-window logic shared with
                        // the offline replay drivers.
                        let mut candidate =
                            tenant.candidate.lock().expect("candidate lock poisoned");
                        candidate
                            .process(window)
                            .map(|e| StepOut::Candidate(Box::new(e)))
                    } else {
                        // The gravity-prior baseline, identical to the replay
                        // drivers' (serial here: the engine already
                        // parallelizes across tenants and sides; workspace
                        // reuse and thread counts are result-neutral).
                        let obs = tenant
                            .pipeline
                            .model()
                            .observe(&window.series)
                            .map_err(StreamError::from)?;
                        // Batched tenants feed the baseline through the
                        // SoA multi-bin kernel too (bit-identical at f64;
                        // the serial inner engine keeps this one job).
                        let estimate = if tenant.pipeline.batch_options().width() > 1 {
                            tenant.pipeline.estimate_batch_parallel_pooled(
                                &GravityPrior,
                                &obs,
                                &Engine::serial(),
                                batch_scratch,
                            )
                        } else {
                            tenant.pipeline.estimate_with(&GravityPrior, &obs, ws)
                        }
                        .map_err(StreamError::from)?;
                        let error =
                            mean_rel_l2(&window.series, &estimate).map_err(StreamError::from)?;
                        Ok(StepOut::Baseline(error))
                    }
                })
                .map_err(ServeError::from)?;
            // Coordinator pass, tenants in id order: score the forecast
            // made *before* this window, extend the forecaster/detector
            // history, and publish the report — the exact ordering the
            // replay drivers use.
            let mut outs = outs.into_iter();
            for (idx, window) in round {
                let (Some(StepOut::Candidate(cand)), Some(StepOut::Baseline(error_gravity))) =
                    (outs.next(), outs.next())
                else {
                    unreachable!("engine returns one output per job, in job order");
                };
                let tenant = &mut self.tenants[idx];
                let improvement = improvement_percent(error_gravity, cand.error);
                let (forecast_f_error, drift_events) =
                    match (cand.fitted_f, &cand.fitted_preference) {
                        (Some(f), Some(p)) => {
                            let fe = tenant.forecaster.forecast().map(|fc| fc.f_error(f));
                            tenant.forecaster.observe(f, p)?;
                            let fired = tenant.detector.observe(window.index, f, p)?;
                            (fe, fired)
                        }
                        _ => (None, Vec::new()),
                    };
                let report = WindowReport {
                    window: window.index,
                    start_bin: window.start_bin,
                    bins: window.bins(),
                    fitted_f: cand.fitted_f.unwrap_or(f64::NAN),
                    fit_objective: cand.fit_objective.unwrap_or(f64::NAN),
                    sweeps: cand.sweeps.unwrap_or(0),
                    warm: cand.warm,
                    error_candidate: cand.error,
                    error_gravity,
                    improvement,
                    forecast_f_error,
                    drift_events,
                    solve_stats: cand.solve_stats,
                };
                if let Some(m) = &self.metrics {
                    if let Some(tm) = &tenant.metrics {
                        tm.polled_windows.inc();
                    }
                    if report.forecast_f_error.is_some() {
                        m.stream.forecasts.inc();
                    }
                    m.stream.drift_events.add(report.drift_events.len() as u64);
                    m.dense_solves.add(report.solve_stats.dense_solves);
                    m.pcg_solves.add(report.solve_stats.pcg_solves);
                    m.pcg_iterations.add(report.solve_stats.pcg_iterations);
                    m.pcg_stalls.add(report.solve_stats.pcg_stalls);
                    m.fallbacks.add(report.solve_stats.fallbacks);
                    if report.solve_stats.fallbacks > 0 {
                        m.registry.event(
                            "solver-fallback",
                            format!(
                                "tenant={} window={} fallbacks={}",
                                tenant.spec.name, report.window, report.solve_stats.fallbacks
                            ),
                        );
                    }
                    if report.solve_stats.pcg_stalls > 0 {
                        m.registry.event(
                            "pcg-stall",
                            format!(
                                "tenant={} window={} stalls={}",
                                tenant.spec.name, report.window, report.solve_stats.pcg_stalls
                            ),
                        );
                    }
                }
                tenant.last_report = Some(report.clone());
                tenant.last_estimate = Some(*cand);
                let event = TenantEvent {
                    tenant: idx as TenantId,
                    name: tenant.spec.name.clone(),
                    report,
                };
                if let Some(m) = &self.metrics {
                    if event.kind() == "drift-alert" {
                        m.registry.event("drift-alert", event.to_string());
                    }
                }
                events.push(event);
            }
        }
        if let Some(m) = &self.metrics {
            m.polls.inc();
            if let Some(elapsed) = span.finish() {
                if elapsed > SLOW_POLL_SECONDS {
                    m.registry.event(
                        "slow-poll",
                        format!("windows={} seconds={elapsed:.3}", events.len()),
                    );
                }
            }
        }
        Ok(events)
    }

    /// The tenant's most recent window report.
    pub fn last_report(&self, id: TenantId) -> Result<Option<&WindowReport>> {
        Ok(self.tenants[self.check(id)?].last_report.as_ref())
    }

    /// The tenant's most recent window estimate (the full estimated
    /// traffic-matrix series).
    pub fn last_estimate(&self, id: TenantId) -> Result<Option<&WindowEstimate>> {
        Ok(self.tenants[self.check(id)?].last_estimate.as_ref())
    }

    /// The tenant's forecast of the next window's `(f, {P_i})`, once at
    /// least one window has completed.
    pub fn forecast(&self, id: TenantId) -> Result<Option<ParamForecast>> {
        Ok(self.tenants[self.check(id)?].forecaster.forecast())
    }

    /// Replays a journal through a fresh service core: re-registers,
    /// re-ingests, and polls once at the end. Each tenant's event
    /// subsequence is bit-identical to the recording service's, whatever
    /// poll cadence the original used (the cross-tenant interleaving may
    /// group differently).
    pub fn replay_journal(journal: &[u8]) -> Result<(Service, Vec<TenantEvent>)> {
        let mut d = Dec::new(journal);
        let magic = d.take_raw(4)?;
        if magic != JOURNAL_MAGIC {
            return Err(ServeError::Codec(format!(
                "bad journal magic {magic:?} (want {JOURNAL_MAGIC:?})"
            )));
        }
        let version = d.take_u32()?;
        if version != JOURNAL_VERSION {
            return Err(ServeError::Codec(format!(
                "unsupported journal version {version} (this build reads {JOURNAL_VERSION})"
            )));
        }
        let mut service = Service::new();
        while d.remaining() > 0 {
            match d.take_u8()? {
                RECORD_REGISTER => {
                    let spec = TenantSpec::decode(&mut d)?;
                    service.register(spec)?;
                }
                RECORD_INGEST => {
                    let id = d.take_u32()?;
                    let column = d.take_f64s()?;
                    service.ingest(id, column)?;
                }
                RECORD_RESTORE => {
                    let snapshot = d.take_bytes()?;
                    service.restore_tenant(&snapshot)?;
                }
                tag => {
                    return Err(ServeError::Codec(format!(
                        "unknown journal record tag {tag}"
                    )));
                }
            }
        }
        let events = service.poll()?;
        Ok((service, events))
    }
}
