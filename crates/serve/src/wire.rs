//! The length-prefixed binary wire protocol.
//!
//! Frames are `u32` little-endian payload length + payload; a payload is
//! one opcode byte + body, encoded with [`crate::codec`]. The protocol is
//! strictly request/response per connection, except after
//! [`Request::Subscribe`]: the server then pushes [`Response::Events`]
//! frames as polls complete windows. Everything round-trips bit-exactly
//! (proptest-locked), so the TCP front-end adds no numeric surface — the
//! bytes a client decodes are the bits the [`crate::Service`] computed.

use crate::codec::{Dec, Enc};
use crate::service::{TenantEvent, TenantId};
use crate::spec::TenantSpec;
use crate::{Result, ServeError};
use ic_core::TmSeries;
use ic_linalg::SolveStats;
use ic_stream::{DriftEvent, DriftKind, ParamForecast, WindowEstimate, WindowReport};
use std::io::{Read, Write};

/// Protocol version exchanged in [`Request::Hello`]. Version 2 added
/// solver-health counters to window reports and the [`Request::Stats`]
/// observability endpoint.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a frame payload (corrupt-length guard).
pub const MAX_FRAME: usize = 1 << 28;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version/liveness handshake.
    Hello,
    /// Registers a new tenant.
    Register(Box<TenantSpec>),
    /// Ingests one link-load column for a tenant.
    Ingest {
        /// Target tenant.
        tenant: TenantId,
        /// Row-major `nodes²` traffic-matrix column.
        column: Vec<f64>,
    },
    /// Executes every ready window and returns the events.
    Poll,
    /// The tenant's most recent window report.
    Report {
        /// Target tenant.
        tenant: TenantId,
    },
    /// The tenant's most recent window estimate (full series).
    Estimate {
        /// Target tenant.
        tenant: TenantId,
    },
    /// The tenant's next-window parameter forecast.
    Forecast {
        /// Target tenant.
        tenant: TenantId,
    },
    /// Snapshots the tenant's warm state.
    Snapshot {
        /// Target tenant.
        tenant: TenantId,
    },
    /// Restores a tenant from snapshot bytes.
    Restore(Vec<u8>),
    /// Switches this connection to push mode: the server streams
    /// [`Response::Events`] frames as polls complete windows.
    Subscribe,
    /// Stops the server.
    Shutdown,
    /// Renders the server's metrics registry (counters, histograms,
    /// structured events) in the requested text format.
    Stats {
        /// The rendering to return.
        format: StatsFormat,
    },
}

/// Text format for a [`Request::Stats`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Prometheus text exposition (scrape-ready).
    Prometheus,
    /// One JSON object (counters, gauges, histograms, events).
    Json,
}

impl StatsFormat {
    /// Stable lowercase name (the CLI flag spelling).
    pub fn as_str(&self) -> &'static str {
        match self {
            StatsFormat::Prometheus => "prometheus",
            StatsFormat::Json => "json",
        }
    }
}

impl std::fmt::Display for StatsFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A window estimate on the wire: the estimated series plus its error.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateFrame {
    /// Window sequence number.
    pub window: u64,
    /// Global stream index of the window's first bin.
    pub start_bin: u64,
    /// Nodes in the tenant's topology.
    pub nodes: u64,
    /// Bins in the window.
    pub bins: u64,
    /// Seconds per bin.
    pub bin_seconds: f64,
    /// The estimated series, row-major `nodes² × bins` (column per bin).
    pub data: Vec<f64>,
    /// Mean relative ℓ² error against the window's own series.
    pub error: f64,
}

impl EstimateFrame {
    /// Builds the frame from a service-side estimate.
    pub fn from_estimate(est: &WindowEstimate) -> Self {
        EstimateFrame {
            window: est.window as u64,
            start_bin: est.start_bin as u64,
            nodes: est.estimate.nodes() as u64,
            bins: est.estimate.bins() as u64,
            bin_seconds: est.estimate.bin_seconds(),
            data: est.estimate.as_matrix().as_slice().to_vec(),
            error: est.error,
        }
    }

    /// Reconstructs the estimated series.
    pub fn to_series(&self) -> Result<TmSeries> {
        let matrix = ic_linalg::Matrix::from_vec(
            (self.nodes * self.nodes) as usize,
            self.bins as usize,
            self.data.clone(),
        )
        .map_err(|e| ServeError::Codec(format!("estimate frame shape: {e}")))?;
        TmSeries::from_matrix(self.nodes as usize, self.bin_seconds, matrix)
            .map_err(|e| ServeError::Codec(format!("estimate frame series: {e}")))
    }
}

/// A server response. [`Response::Error`] carries any request's failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed service-side.
    Error(String),
    /// Handshake reply.
    HelloOk {
        /// Server protocol version.
        protocol: u32,
        /// Registered tenants.
        tenants: u32,
    },
    /// Tenant registered.
    Registered {
        /// The assigned id.
        tenant: TenantId,
    },
    /// Column ingested.
    Ingested {
        /// The tenant's ready-window count after the push.
        ready: u64,
    },
    /// Completed-window events (poll reply and subscriber push frame).
    Events(Vec<TenantEvent>),
    /// Most recent report, when one exists.
    Report(Option<WindowReport>),
    /// Most recent estimate, when one exists.
    Estimate(Option<Box<EstimateFrame>>),
    /// Next-window forecast, when history exists.
    Forecast(Option<ParamForecast>),
    /// Snapshot bytes.
    Snapshot(Vec<u8>),
    /// Tenant restored from snapshot.
    Restored {
        /// The assigned id.
        tenant: TenantId,
    },
    /// Connection switched to push mode.
    Subscribed,
    /// Server is shutting down.
    ShutdownOk,
    /// Rendered metrics text in the requested [`StatsFormat`].
    Stats(String),
}

// --- request/response opcodes ------------------------------------------

const REQ_HELLO: u8 = 1;
const REQ_REGISTER: u8 = 2;
const REQ_INGEST: u8 = 3;
const REQ_POLL: u8 = 4;
const REQ_REPORT: u8 = 5;
const REQ_ESTIMATE: u8 = 6;
const REQ_FORECAST: u8 = 7;
const REQ_SNAPSHOT: u8 = 8;
const REQ_RESTORE: u8 = 9;
const REQ_SUBSCRIBE: u8 = 10;
const REQ_SHUTDOWN: u8 = 11;
const REQ_STATS: u8 = 12;

const RESP_ERROR: u8 = 0;
const RESP_HELLO: u8 = 1;
const RESP_REGISTERED: u8 = 2;
const RESP_INGESTED: u8 = 3;
const RESP_EVENTS: u8 = 4;
const RESP_REPORT: u8 = 5;
const RESP_ESTIMATE: u8 = 6;
const RESP_FORECAST: u8 = 7;
const RESP_SNAPSHOT: u8 = 8;
const RESP_RESTORED: u8 = 9;
const RESP_SUBSCRIBED: u8 = 10;
const RESP_SHUTDOWN: u8 = 11;
const RESP_STATS: u8 = 12;

const STATS_FORMAT_PROMETHEUS: u8 = 0;
const STATS_FORMAT_JSON: u8 = 1;

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Hello => e.put_u8(REQ_HELLO),
            Request::Register(spec) => {
                e.put_u8(REQ_REGISTER);
                spec.encode(&mut e);
            }
            Request::Ingest { tenant, column } => {
                e.put_u8(REQ_INGEST);
                e.put_u32(*tenant);
                e.put_f64s(column);
            }
            Request::Poll => e.put_u8(REQ_POLL),
            Request::Report { tenant } => {
                e.put_u8(REQ_REPORT);
                e.put_u32(*tenant);
            }
            Request::Estimate { tenant } => {
                e.put_u8(REQ_ESTIMATE);
                e.put_u32(*tenant);
            }
            Request::Forecast { tenant } => {
                e.put_u8(REQ_FORECAST);
                e.put_u32(*tenant);
            }
            Request::Snapshot { tenant } => {
                e.put_u8(REQ_SNAPSHOT);
                e.put_u32(*tenant);
            }
            Request::Restore(bytes) => {
                e.put_u8(REQ_RESTORE);
                e.put_bytes(bytes);
            }
            Request::Subscribe => e.put_u8(REQ_SUBSCRIBE),
            Request::Shutdown => e.put_u8(REQ_SHUTDOWN),
            Request::Stats { format } => {
                e.put_u8(REQ_STATS);
                e.put_u8(match format {
                    StatsFormat::Prometheus => STATS_FORMAT_PROMETHEUS,
                    StatsFormat::Json => STATS_FORMAT_JSON,
                });
            }
        }
        e.into_bytes()
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut d = Dec::new(payload);
        let req = match d.take_u8()? {
            REQ_HELLO => Request::Hello,
            REQ_REGISTER => Request::Register(Box::new(TenantSpec::decode(&mut d)?)),
            REQ_INGEST => Request::Ingest {
                tenant: d.take_u32()?,
                column: d.take_f64s()?,
            },
            REQ_POLL => Request::Poll,
            REQ_REPORT => Request::Report {
                tenant: d.take_u32()?,
            },
            REQ_ESTIMATE => Request::Estimate {
                tenant: d.take_u32()?,
            },
            REQ_FORECAST => Request::Forecast {
                tenant: d.take_u32()?,
            },
            REQ_SNAPSHOT => Request::Snapshot {
                tenant: d.take_u32()?,
            },
            REQ_RESTORE => Request::Restore(d.take_bytes()?),
            REQ_SUBSCRIBE => Request::Subscribe,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_STATS => Request::Stats {
                format: match d.take_u8()? {
                    STATS_FORMAT_PROMETHEUS => StatsFormat::Prometheus,
                    STATS_FORMAT_JSON => StatsFormat::Json,
                    b => {
                        return Err(ServeError::Codec(format!("unknown stats format byte {b}")));
                    }
                },
            },
            op => return Err(ServeError::Codec(format!("unknown request opcode {op}"))),
        };
        d.expect_end()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Response::Error(msg) => {
                e.put_u8(RESP_ERROR);
                e.put_str(msg);
            }
            Response::HelloOk { protocol, tenants } => {
                e.put_u8(RESP_HELLO);
                e.put_u32(*protocol);
                e.put_u32(*tenants);
            }
            Response::Registered { tenant } => {
                e.put_u8(RESP_REGISTERED);
                e.put_u32(*tenant);
            }
            Response::Ingested { ready } => {
                e.put_u8(RESP_INGESTED);
                e.put_u64(*ready);
            }
            Response::Events(events) => {
                e.put_u8(RESP_EVENTS);
                e.put_usize(events.len());
                for ev in events {
                    encode_event(&mut e, ev);
                }
            }
            Response::Report(report) => {
                e.put_u8(RESP_REPORT);
                match report {
                    Some(r) => {
                        e.put_bool(true);
                        encode_window_report(&mut e, r);
                    }
                    None => e.put_bool(false),
                }
            }
            Response::Estimate(frame) => {
                e.put_u8(RESP_ESTIMATE);
                match frame {
                    Some(f) => {
                        e.put_bool(true);
                        e.put_u64(f.window);
                        e.put_u64(f.start_bin);
                        e.put_u64(f.nodes);
                        e.put_u64(f.bins);
                        e.put_f64(f.bin_seconds);
                        e.put_f64s(&f.data);
                        e.put_f64(f.error);
                    }
                    None => e.put_bool(false),
                }
            }
            Response::Forecast(forecast) => {
                e.put_u8(RESP_FORECAST);
                match forecast {
                    Some(fc) => {
                        e.put_bool(true);
                        e.put_f64(fc.f);
                        e.put_f64s(&fc.preference);
                    }
                    None => e.put_bool(false),
                }
            }
            Response::Snapshot(bytes) => {
                e.put_u8(RESP_SNAPSHOT);
                e.put_bytes(bytes);
            }
            Response::Restored { tenant } => {
                e.put_u8(RESP_RESTORED);
                e.put_u32(*tenant);
            }
            Response::Subscribed => e.put_u8(RESP_SUBSCRIBED),
            Response::ShutdownOk => e.put_u8(RESP_SHUTDOWN),
            Response::Stats(text) => {
                e.put_u8(RESP_STATS);
                e.put_str(text);
            }
        }
        e.into_bytes()
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut d = Dec::new(payload);
        let resp = match d.take_u8()? {
            RESP_ERROR => Response::Error(d.take_str()?),
            RESP_HELLO => Response::HelloOk {
                protocol: d.take_u32()?,
                tenants: d.take_u32()?,
            },
            RESP_REGISTERED => Response::Registered {
                tenant: d.take_u32()?,
            },
            RESP_INGESTED => Response::Ingested {
                ready: d.take_u64()?,
            },
            RESP_EVENTS => {
                let count = d.take_usize()?;
                let mut events = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    events.push(decode_event(&mut d)?);
                }
                Response::Events(events)
            }
            RESP_REPORT => Response::Report(if d.take_bool()? {
                Some(decode_window_report(&mut d)?)
            } else {
                None
            }),
            RESP_ESTIMATE => Response::Estimate(if d.take_bool()? {
                Some(Box::new(EstimateFrame {
                    window: d.take_u64()?,
                    start_bin: d.take_u64()?,
                    nodes: d.take_u64()?,
                    bins: d.take_u64()?,
                    bin_seconds: d.take_f64()?,
                    data: d.take_f64s()?,
                    error: d.take_f64()?,
                }))
            } else {
                None
            }),
            RESP_FORECAST => Response::Forecast(if d.take_bool()? {
                Some(ParamForecast {
                    f: d.take_f64()?,
                    preference: d.take_f64s()?,
                })
            } else {
                None
            }),
            RESP_SNAPSHOT => Response::Snapshot(d.take_bytes()?),
            RESP_RESTORED => Response::Restored {
                tenant: d.take_u32()?,
            },
            RESP_SUBSCRIBED => Response::Subscribed,
            RESP_SHUTDOWN => Response::ShutdownOk,
            RESP_STATS => Response::Stats(d.take_str()?),
            op => return Err(ServeError::Codec(format!("unknown response opcode {op}"))),
        };
        d.expect_end()?;
        Ok(resp)
    }
}

fn encode_event(e: &mut Enc, ev: &TenantEvent) {
    e.put_u32(ev.tenant);
    e.put_str(&ev.name);
    encode_window_report(e, &ev.report);
}

fn decode_event(d: &mut Dec<'_>) -> Result<TenantEvent> {
    Ok(TenantEvent {
        tenant: d.take_u32()?,
        name: d.take_str()?,
        report: decode_window_report(d)?,
    })
}

/// Encodes a [`WindowReport`] (shared by events and report replies).
pub fn encode_window_report(e: &mut Enc, r: &WindowReport) {
    e.put_usize(r.window);
    e.put_usize(r.start_bin);
    e.put_usize(r.bins);
    e.put_f64(r.fitted_f);
    e.put_f64(r.fit_objective);
    e.put_usize(r.sweeps);
    e.put_bool(r.warm);
    e.put_f64(r.error_candidate);
    e.put_f64(r.error_gravity);
    e.put_f64(r.improvement);
    e.put_opt_f64(r.forecast_f_error);
    e.put_usize(r.drift_events.len());
    for ev in &r.drift_events {
        e.put_u8(match ev.kind {
            DriftKind::ForwardRatioTrend => 0,
            DriftKind::ForwardRatioJump => 1,
            DriftKind::PreferenceDecorrelation => 2,
        });
        e.put_usize(ev.window);
        e.put_f64(ev.statistic);
    }
    e.put_u64(r.solve_stats.dense_solves);
    e.put_u64(r.solve_stats.pcg_solves);
    e.put_u64(r.solve_stats.pcg_iterations);
    e.put_u64(r.solve_stats.pcg_stalls);
    e.put_u64(r.solve_stats.fallbacks);
}

/// Decodes a [`WindowReport`].
pub fn decode_window_report(d: &mut Dec<'_>) -> Result<WindowReport> {
    let window = d.take_usize()?;
    let start_bin = d.take_usize()?;
    let bins = d.take_usize()?;
    let fitted_f = d.take_f64()?;
    let fit_objective = d.take_f64()?;
    let sweeps = d.take_usize()?;
    let warm = d.take_bool()?;
    let error_candidate = d.take_f64()?;
    let error_gravity = d.take_f64()?;
    let improvement = d.take_f64()?;
    let forecast_f_error = d.take_opt_f64()?;
    let count = d.take_usize()?;
    let mut drift_events = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let kind = match d.take_u8()? {
            0 => DriftKind::ForwardRatioTrend,
            1 => DriftKind::ForwardRatioJump,
            2 => DriftKind::PreferenceDecorrelation,
            b => return Err(ServeError::Codec(format!("unknown drift kind byte {b}"))),
        };
        drift_events.push(DriftEvent {
            kind,
            window: d.take_usize()?,
            statistic: d.take_f64()?,
        });
    }
    let solve_stats = SolveStats {
        dense_solves: d.take_u64()?,
        pcg_solves: d.take_u64()?,
        pcg_iterations: d.take_u64()?,
        pcg_stalls: d.take_u64()?,
        fallbacks: d.take_u64()?,
    };
    Ok(WindowReport {
        window,
        start_bin,
        bins,
        fitted_f,
        fit_objective,
        sweeps,
        warm,
        error_candidate,
        error_gravity,
        improvement,
        forecast_f_error,
        drift_events,
        solve_stats,
    })
}

// --- frame I/O ----------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(ServeError::BadRequest(format!(
            "frame of {} bytes exceeds MAX_FRAME",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. Returns `None` on clean EOF (the
/// peer closed between frames); a mid-frame EOF is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(ServeError::Codec("EOF inside frame header".into()));
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(ServeError::Codec(format!(
            "frame length {len} exceeds MAX_FRAME"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_topology::{RoutingScheme, Topology};
    use proptest::prelude::*;

    fn spec() -> TenantSpec {
        let mut t = Topology::new("pair");
        let a = t.add_node("a").unwrap();
        let b = t.add_node("b").unwrap();
        t.add_symmetric_link(a, b, 1.0, 1e12).unwrap();
        TenantSpec::new("t0", &t, RoutingScheme::Ecmp).with_window_bins(4)
    }

    fn report(drift: bool) -> WindowReport {
        WindowReport {
            window: 3,
            start_bin: 12,
            bins: 4,
            fitted_f: 0.27,
            fit_objective: 0.004,
            sweeps: 5,
            warm: true,
            error_candidate: 0.11,
            error_gravity: 0.4,
            improvement: 72.5,
            forecast_f_error: Some(0.002),
            drift_events: if drift {
                vec![
                    DriftEvent {
                        window: 3,
                        kind: DriftKind::ForwardRatioJump,
                        statistic: 0.09,
                    },
                    DriftEvent {
                        window: 3,
                        kind: DriftKind::PreferenceDecorrelation,
                        statistic: 0.8,
                    },
                ]
            } else {
                Vec::new()
            },
            solve_stats: SolveStats {
                dense_solves: 1,
                pcg_solves: 8,
                pcg_iterations: 95,
                pcg_stalls: 1,
                fallbacks: 0,
            },
        }
    }

    #[test]
    fn every_request_round_trips() {
        let requests = vec![
            Request::Hello,
            Request::Register(Box::new(spec())),
            Request::Ingest {
                tenant: 2,
                column: vec![1.0, 2.0, 3.0, 4.0],
            },
            Request::Poll,
            Request::Report { tenant: 1 },
            Request::Estimate { tenant: 0 },
            Request::Forecast { tenant: 7 },
            Request::Snapshot { tenant: 3 },
            Request::Restore(vec![9, 9, 9]),
            Request::Subscribe,
            Request::Shutdown,
            Request::Stats {
                format: StatsFormat::Prometheus,
            },
            Request::Stats {
                format: StatsFormat::Json,
            },
        ];
        for req in requests {
            let payload = req.encode();
            assert_eq!(Request::decode(&payload).unwrap(), req);
        }
        assert!(Request::decode(&[200]).is_err());
        assert!(Request::decode(&[]).is_err());
        // Trailing bytes rejected.
        let mut payload = Request::Poll.encode();
        payload.push(0);
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn every_response_round_trips() {
        let responses = vec![
            Response::Error("boom".into()),
            Response::HelloOk {
                protocol: PROTOCOL_VERSION,
                tenants: 2,
            },
            Response::Registered { tenant: 4 },
            Response::Ingested { ready: 1 },
            Response::Events(vec![
                TenantEvent {
                    tenant: 0,
                    name: "a".into(),
                    report: report(true),
                },
                TenantEvent {
                    tenant: 1,
                    name: "b".into(),
                    report: report(false),
                },
            ]),
            Response::Report(Some(report(true))),
            Response::Report(None),
            Response::Estimate(Some(Box::new(EstimateFrame {
                window: 2,
                start_bin: 8,
                nodes: 2,
                bins: 4,
                bin_seconds: 300.0,
                data: (0..16).map(f64::from).collect(),
                error: 0.2,
            }))),
            Response::Estimate(None),
            Response::Forecast(Some(ParamForecast {
                f: 0.25,
                preference: vec![0.6, 0.4],
            })),
            Response::Forecast(None),
            Response::Snapshot(vec![1, 2, 3]),
            Response::Restored { tenant: 0 },
            Response::Subscribed,
            Response::ShutdownOk,
            Response::Stats("# TYPE serve_polls_total counter\n".into()),
        ];
        for resp in responses {
            let payload = resp.encode();
            assert_eq!(Response::decode(&payload).unwrap(), resp);
        }
        assert!(Response::decode(&[201]).is_err());
    }

    #[test]
    fn estimate_frame_reconstructs_the_series() {
        let mut series = TmSeries::zeros(2, 3, 300.0).unwrap();
        series.set(0, 1, 2, 7.5).unwrap();
        let est = WindowEstimate {
            window: 1,
            start_bin: 3,
            estimate: series.clone(),
            error: 0.1,
            fitted_f: None,
            fitted_preference: None,
            fit_objective: None,
            sweeps: None,
            warm: false,
            solve_stats: SolveStats::default(),
        };
        let frame = EstimateFrame::from_estimate(&est);
        assert_eq!(frame.to_series().unwrap(), series);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
        // Mid-header and mid-payload EOFs error instead of hanging.
        let mut r = &buf[..2];
        assert!(read_frame(&mut r).is_err());
        let mut r = &buf[..6];
        assert!(read_frame(&mut r).is_err());
        // Absurd lengths are rejected before allocation.
        let huge = (u32::MAX).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Window reports with arbitrary contents round-trip bit-exactly
        /// through the wire encoding.
        #[test]
        fn window_report_round_trip(
            window in 0usize..1000,
            f_bits in any::<u64>(),
            err in 0.0f64..10.0,
            warm in any::<bool>(),
            fe_present in any::<bool>(),
            fe_value in 0.0f64..1.0,
            kinds in proptest::collection::vec(0u8..3, 0..4),
            pcg_iterations in 0u64..10_000,
            pcg_stalls in 0u64..4,
        ) {
            let fe = if fe_present { Some(fe_value) } else { None };
            let r = WindowReport {
                window,
                start_bin: window * 4,
                bins: 4,
                fitted_f: f64::from_bits(f_bits),
                fit_objective: err / 2.0,
                sweeps: 3,
                warm,
                error_candidate: err,
                error_gravity: err * 2.0,
                improvement: 50.0,
                forecast_f_error: fe,
                drift_events: kinds
                    .iter()
                    .map(|&k| DriftEvent {
                        window,
                        kind: match k {
                            0 => DriftKind::ForwardRatioTrend,
                            1 => DriftKind::ForwardRatioJump,
                            _ => DriftKind::PreferenceDecorrelation,
                        },
                        statistic: err,
                    })
                    .collect(),
                solve_stats: SolveStats {
                    dense_solves: window as u64,
                    pcg_solves: window as u64 / 2,
                    pcg_iterations,
                    pcg_stalls,
                    fallbacks: pcg_stalls / 2,
                },
            };
            let mut e = Enc::new();
            encode_window_report(&mut e, &r);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            let back = decode_window_report(&mut d).unwrap();
            d.expect_end().unwrap();
            prop_assert_eq!(back.fitted_f.to_bits(), r.fitted_f.to_bits());
            let (mut a, mut b) = (back, r);
            // NaN-safe equality: compare the f bit patterns separately,
            // then the rest structurally.
            a.fitted_f = 0.0;
            b.fitted_f = 0.0;
            prop_assert_eq!(a, b);
        }
    }
}
