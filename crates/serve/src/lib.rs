//! `ic-serve`: a multi-tenant streaming estimation service.
//!
//! The crate turns the offline streaming stack ([`ic_stream`]) into a
//! long-running service: many independent tenants (each a registered
//! topology + routing scheme + rolling tomogravity estimator + drift
//! detector + parameter forecaster) ingest link-load columns, and a
//! batching core executes every ready window across tenants as one shard
//! list on a single shared [`ic_engine::Engine`]. Per-tenant results are
//! bit-identical to running that tenant alone through
//! [`ic_stream::replay_estimation`], for any engine worker count.
//!
//! The crate splits into two halves:
//!
//! - a transport-free core — [`Service`] (tenants, batching, polling),
//!   [`TenantSpec`] (registration), [`TenantSnapshot`] (warm-state
//!   persistence), and the journal ([`Service::enable_journal`] /
//!   [`Service::replay_journal`]) — fully testable without sockets;
//! - a thin TCP front-end — [`Server`] (thread-per-connection over
//!   `std::net`), [`Client`], and the length-prefixed binary protocol in
//!   [`wire`].
//!
//! Two serving pillars:
//!
//! 1. **Warm-state snapshots.** [`Service::snapshot_tenant`] persists a
//!    tenant's complete fit/forecast/drift/window state with a versioned
//!    bit-exact codec; [`Service::restore_tenant`] brings it back such
//!    that every subsequent estimate is bit-identical to a service that
//!    never stopped.
//! 2. **Deterministic record/replay.** With the journal enabled, every
//!    registration, ingested column, and restore is recorded;
//!    [`Service::replay_journal`] re-feeds the journal through a fresh
//!    core offline and reproduces each tenant's window reports
//!    bit-identically — post-incident analysis without the service.
//!
//! # Examples
//!
//! ```
//! use ic_serve::{Service, TenantSpec};
//! use ic_topology::{RoutingScheme, Topology};
//!
//! let mut topo = Topology::new("pair");
//! let a = topo.add_node("a").unwrap();
//! let b = topo.add_node("b").unwrap();
//! topo.add_symmetric_link(a, b, 1.0, 1e12).unwrap();
//!
//! let mut service = Service::new();
//! let spec = TenantSpec::new("edge-pop", &topo, RoutingScheme::Ecmp)
//!     .with_window_bins(4);
//! let tenant = service.register(spec).unwrap();
//!
//! // Ingest four bins of a 2-node traffic matrix: one window becomes
//! // ready, and poll() runs it.
//! for t in 0..4 {
//!     let x = 1.0 + t as f64;
//!     service.ingest(tenant, vec![0.0, x, 2.0 * x, 0.0]).unwrap();
//! }
//! let events = service.poll().unwrap();
//! assert_eq!(events.len(), 1);
//! assert!(events[0].report.error_candidate.is_finite());
//! ```

pub mod client;
pub mod codec;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod spec;
pub mod wire;

pub use client::{Client, Subscription};
pub use server::{Server, ServerHandle};
pub use service::{Service, TenantEvent, TenantId};
pub use snapshot::{TenantSnapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use spec::{LinkSpec, TenantSpec};
pub use wire::{EstimateFrame, Request, Response, StatsFormat, MAX_FRAME, PROTOCOL_VERSION};

use ic_estimation::EstimationError;
use ic_stream::StreamError;
use ic_topology::TopologyError;

/// Errors produced by the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A request was malformed or not executable in the current state.
    BadRequest(String),
    /// Encoded bytes (wire frame, snapshot, journal) failed to decode.
    Codec(String),
    /// The referenced tenant id is not registered.
    UnknownTenant(TenantId),
    /// A tenant with this name already exists.
    NameTaken(String),
    /// A socket or file operation failed.
    Io(std::io::Error),
    /// The server reported an error for a client request.
    Remote(String),
    /// The tenant's topology or routing was rejected.
    Topology(TopologyError),
    /// A per-window estimation failed.
    Estimation(EstimationError),
    /// The streaming layer rejected a configuration or window.
    Stream(StreamError),
}

impl ServeError {
    /// Stable kebab-case error class. Wire [`Response::Error`] payloads
    /// lead with this slug in square brackets (`[unknown-tenant] ...`),
    /// so clients and log greps can match the class without parsing the
    /// prose, which may change between releases. The slugs themselves
    /// never change spelling.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad-request",
            ServeError::Codec(_) => "codec",
            ServeError::UnknownTenant(_) => "unknown-tenant",
            ServeError::NameTaken(_) => "name-taken",
            ServeError::Io(_) => "io",
            ServeError::Remote(_) => "remote",
            ServeError::Topology(_) => "topology",
            ServeError::Estimation(_) => "estimation",
            ServeError::Stream(_) => "stream",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Codec(msg) => write!(f, "codec error: {msg}"),
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant id {id}"),
            ServeError::NameTaken(name) => write!(f, "tenant name already taken: {name}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Remote(msg) => write!(f, "server error: {msg}"),
            ServeError::Topology(e) => write!(f, "topology error: {e}"),
            ServeError::Estimation(e) => write!(f, "estimation error: {e}"),
            ServeError::Stream(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Topology(e) => Some(e),
            ServeError::Estimation(e) => Some(e),
            ServeError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<TopologyError> for ServeError {
    fn from(e: TopologyError) -> Self {
        ServeError::Topology(e)
    }
}

impl From<EstimationError> for ServeError {
    fn from(e: EstimationError) -> Self {
        ServeError::Estimation(e)
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources_cover_every_variant() {
        let io = ServeError::from(std::io::Error::other("x"));
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::BadRequest("b".into()), "bad request"),
            (ServeError::Codec("c".into()), "codec error"),
            (ServeError::UnknownTenant(3), "unknown tenant"),
            (ServeError::NameTaken("t".into()), "already taken"),
            (io, "io error"),
            (ServeError::Remote("r".into()), "server error"),
            (
                ServeError::from(TopologyError::DuplicateNode("n".into())),
                "topology error",
            ),
            (
                ServeError::from(StreamError::BadConfig("bad")),
                "stream error",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
        // The wire-stable class slugs never change spelling.
        assert_eq!(ServeError::BadRequest("b".into()).kind(), "bad-request");
        assert_eq!(ServeError::Codec("c".into()).kind(), "codec");
        assert_eq!(ServeError::UnknownTenant(3).kind(), "unknown-tenant");
        assert_eq!(ServeError::NameTaken("t".into()).kind(), "name-taken");
        assert_eq!(ServeError::Remote("r".into()).kind(), "remote");
        assert_eq!(
            ServeError::from(StreamError::BadConfig("bad")).kind(),
            "stream"
        );
        use std::error::Error;
        assert!(ServeError::Codec("c".into()).source().is_none());
        assert!(ServeError::from(StreamError::BadConfig("bad"))
            .source()
            .is_some());
    }
}
