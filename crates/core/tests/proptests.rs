//! Property-based tests for the IC model family and fitting program.

use ic_core::model::StableFpParams;
use ic_core::{
    fit_stable_fp, gravity_from_marginals, rel_l2_temporal, simplified_ic, stable_fp_series,
    FitOptions, TmSeries,
};
use ic_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a valid parameter triple (f, activity, preference).
fn params_strategy(n: usize) -> impl Strategy<Value = (f64, Vec<f64>, Vec<f64>)> {
    (
        0.05f64..0.95,
        proptest::collection::vec(1.0f64..1000.0, n),
        proptest::collection::vec(0.01f64..1.0, n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: Σ_ij X_ij = Σ_i A_i for any valid parameters — every
    /// initiated byte shows up exactly once in the traffic matrix.
    #[test]
    fn ic_model_conserves_activity((f, a, p) in params_strategy(5)) {
        let x = simplified_ic(f, &a, &p).unwrap();
        let total_a: f64 = a.iter().sum();
        prop_assert!((x.sum() - total_a).abs() < 1e-9 * total_a);
    }

    /// The model is invariant under joint rescaling (P → cP): preference
    /// is only defined up to scale.
    #[test]
    fn ic_model_scale_invariant_in_p((f, a, p) in params_strategy(4), c in 0.1f64..10.0) {
        let x1 = simplified_ic(f, &a, &p).unwrap();
        let scaled: Vec<f64> = p.iter().map(|&v| v * c).collect();
        let x2 = simplified_ic(f, &a, &scaled).unwrap();
        prop_assert!(x1.approx_eq(&x2, 1e-9 * (1.0 + x1.max_abs())));
    }

    /// Swapping f for 1−f transposes the traffic matrix: forward and
    /// reverse trade places.
    #[test]
    fn f_complement_transposes((f, a, p) in params_strategy(4)) {
        let x1 = simplified_ic(f, &a, &p).unwrap();
        let x2 = simplified_ic(1.0 - f, &a, &p).unwrap();
        prop_assert!(x2.approx_eq(&x1.transpose(), 1e-9 * (1.0 + x1.max_abs())));
    }

    /// Marginal identities (the basis of Eq. 11–12): ingress_i = f·A_i +
    /// (1−f)·P_i·ΣA and egress_i = f·P_i·ΣA + (1−f)·A_i.
    #[test]
    fn marginal_identities_hold((f, a, p) in params_strategy(5)) {
        let x = simplified_ic(f, &a, &p).unwrap();
        let psum: f64 = p.iter().sum();
        let asum: f64 = a.iter().sum();
        let rows = x.row_sums();
        let cols = x.col_sums();
        for i in 0..a.len() {
            let pn = p[i] / psum;
            let want_in = f * a[i] + (1.0 - f) * pn * asum;
            let want_out = f * pn * asum + (1.0 - f) * a[i];
            prop_assert!((rows[i] - want_in).abs() < 1e-9 * (1.0 + want_in));
            prop_assert!((cols[i] - want_out).abs() < 1e-9 * (1.0 + want_out));
        }
    }

    /// Gravity preserves marginals for arbitrary non-negative inputs.
    #[test]
    fn gravity_preserves_marginals(
        ing in proptest::collection::vec(0.0f64..1e6, 2..8),
    ) {
        // Egress permuted from ingress keeps the totals equal.
        let mut eg = ing.clone();
        eg.rotate_right(1);
        let x = gravity_from_marginals(&ing, &eg).unwrap();
        let rows = x.row_sums();
        let total: f64 = ing.iter().sum();
        for (got, want) in rows.iter().zip(ing.iter()) {
            prop_assert!((got - want).abs() <= 1e-9 * total.max(1.0));
        }
    }

    /// RelL2 is scale-invariant: scaling both series leaves it unchanged.
    #[test]
    fn rel_l2_scale_invariant((f, a, p) in params_strategy(4), c in 0.5f64..5.0) {
        let x = simplified_ic(f, &a, &p).unwrap();
        let mut obs = TmSeries::zeros(4, 1, 300.0).unwrap();
        let mut pred = TmSeries::zeros(4, 1, 300.0).unwrap();
        let mut obs_c = TmSeries::zeros(4, 1, 300.0).unwrap();
        let mut pred_c = TmSeries::zeros(4, 1, 300.0).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let o = x[(i, j)];
                let q = o * 1.1 + 1.0;
                obs.set(i, j, 0, o).unwrap();
                pred.set(i, j, 0, q).unwrap();
                obs_c.set(i, j, 0, c * o).unwrap();
                pred_c.set(i, j, 0, c * q).unwrap();
            }
        }
        let e1 = rel_l2_temporal(&obs, &pred, 0).unwrap();
        let e2 = rel_l2_temporal(&obs_c, &pred_c, 0).unwrap();
        prop_assert!((e1 - e2).abs() < 1e-9);
    }

    /// Fitting exact stable-fP data drives the objective to (near) zero,
    /// whatever the ground-truth parameters.
    #[test]
    fn fit_is_consistent_on_exact_data(
        f in 0.1f64..0.45,
        seed in 0u64..500,
    ) {
        let n = 4;
        let bins = 6;
        // Deterministic pseudo-random parameters from the seed.
        let mix = |k: u64| {
            let mut z = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(k);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let p: Vec<f64> = (0..n).map(|i| 0.1 + mix(i as u64)).collect();
        let mut activity = Matrix::zeros(n, bins);
        for i in 0..n {
            for t in 0..bins {
                activity[(i, t)] = 100.0 + 900.0 * mix((10 + i * bins + t) as u64);
            }
        }
        let psum: f64 = p.iter().sum();
        let truth = StableFpParams {
            f,
            preference: p.iter().map(|v| v / psum).collect(),
            activity,
        };
        let tm = stable_fp_series(&truth, 300.0).unwrap();
        let fit = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        prop_assert!(
            fit.final_objective() < 1e-3,
            "objective {} for f={}, seed={}",
            fit.final_objective(), f, seed
        );
        prop_assert!((fit.params.f - f).abs() < 0.05, "f {} vs {}", fit.params.f, f);
    }

    /// Fitted parameters are always feasible: P on the simplex, A ≥ 0,
    /// f ∈ [0, 1] — even on non-IC random data.
    #[test]
    fn fit_output_always_feasible(seed in 0u64..200) {
        let n = 3;
        let bins = 4;
        let mut tm = TmSeries::zeros(n, bins, 300.0).unwrap();
        let mix = |k: u64| {
            let mut z = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(k);
            z = (z ^ (z >> 29)).wrapping_mul(0xff51afd7ed558ccd);
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        for t in 0..bins {
            for i in 0..n {
                for j in 0..n {
                    tm.set(i, j, t, 1.0 + 100.0 * mix((t * 9 + i * 3 + j) as u64)).unwrap();
                }
            }
        }
        let fit = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        prop_assert!((0.0..=1.0).contains(&fit.params.f));
        let psum: f64 = fit.params.preference.iter().sum();
        prop_assert!((psum - 1.0).abs() < 1e-6);
        prop_assert!(fit.params.preference.iter().all(|&v| v >= 0.0));
        prop_assert!(fit.params.activity.as_slice().iter().all(|&v| v >= 0.0));
    }
}
