//! The independent-connection model family (paper Equations 1–5).
//!
//! All evaluators normalize the preference vector internally (the paper:
//! "We do not assume that the P_i values sum to one, but usually we will
//! use them as probabilities and so will normalize").
//!
//! | function / type          | equation | parameters                              |
//! |--------------------------|----------|------------------------------------------|
//! | [`general_ic`]           | (1)      | per-pair `f_ij`, `A`, `P`                |
//! | [`simplified_ic`]        | (2)      | scalar `f`, `A`, `P` (single bin)        |
//! | [`TimeVaryingParams`]    | (3)      | `f(t)`, `A_i(t)`, `P_i(t)`               |
//! | [`StableFParams`]        | (4)      | `f`, `A_i(t)`, `P_i(t)`                  |
//! | [`StableFpParams`]       | (5)      | `f`, `A_i(t)`, `P_i`                     |

use crate::tm::TmSeries;
use crate::{IcError, Result};
use ic_linalg::Matrix;

/// Validates a forward ratio `f ∈ [0, 1]`.
fn check_f(f: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&f) || !f.is_finite() {
        return Err(IcError::InvalidParameter {
            name: "f",
            constraint: "forward ratio must lie in [0, 1]",
        });
    }
    Ok(())
}

/// Validates and normalizes a preference vector to unit sum.
fn normalized_preference(p: &[f64]) -> Result<Vec<f64>> {
    if p.is_empty() {
        return Err(IcError::BadData("empty preference vector"));
    }
    if p.iter().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(IcError::InvalidParameter {
            name: "preference",
            constraint: "entries must be finite and non-negative",
        });
    }
    let sum: f64 = p.iter().sum();
    if sum <= 0.0 {
        return Err(IcError::InvalidParameter {
            name: "preference",
            constraint: "must have positive total mass",
        });
    }
    Ok(p.iter().map(|&v| v / sum).collect())
}

/// Validates an activity vector (non-negative, finite).
fn check_activity(a: &[f64], n: usize) -> Result<()> {
    if a.len() != n {
        return Err(IcError::DimensionMismatch {
            context: "activity vector",
            expected: n,
            actual: a.len(),
        });
    }
    if a.iter().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(IcError::InvalidParameter {
            name: "activity",
            constraint: "entries must be finite and non-negative",
        });
    }
    Ok(())
}

/// Evaluates the **simplified IC model** (Eq. 2) for one time bin:
///
/// ```text
/// X_ij = f · A_i · P_j / ΣP + (1 − f) · A_j · P_i / ΣP
/// ```
///
/// # Examples
///
/// ```
/// use ic_core::simplified_ic;
///
/// // Symmetric two-node network, f = 0.25.
/// let x = simplified_ic(0.25, &[100.0, 100.0], &[0.5, 0.5]).unwrap();
/// // Row sums equal activities: forward + reverse bytes of i's initiations
/// // that enter at i plus responder traffic leaving i... the matrix total
/// // equals total activity.
/// assert!((x.sum() - 200.0).abs() < 1e-9);
/// ```
pub fn simplified_ic(f: f64, activity: &[f64], preference: &[f64]) -> Result<Matrix> {
    check_f(f)?;
    let n = activity.len();
    check_activity(activity, n)?;
    if preference.len() != n {
        return Err(IcError::DimensionMismatch {
            context: "simplified_ic preference",
            expected: n,
            actual: preference.len(),
        });
    }
    let p = normalized_preference(preference)?;
    let mut x = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            x[(i, j)] = f * activity[i] * p[j] + (1.0 - f) * activity[j] * p[i];
        }
    }
    Ok(x)
}

/// Evaluates the **general IC model** (Eq. 1) for one time bin, with a full
/// `n x n` forward-ratio matrix:
///
/// ```text
/// X_ij = f_ij · A_i · P_j / ΣP + (1 − f_ji) · A_j · P_i / ΣP
/// ```
///
/// The general form matters under routing asymmetry (paper Section 5.6,
/// Figure 10), where `f_ij ≠ f_ji`.
pub fn general_ic(f: &Matrix, activity: &[f64], preference: &[f64]) -> Result<Matrix> {
    let n = activity.len();
    if f.shape() != (n, n) {
        return Err(IcError::DimensionMismatch {
            context: "general_ic forward-ratio matrix",
            expected: n * n,
            actual: f.rows() * f.cols(),
        });
    }
    for &v in f.as_slice() {
        check_f(v)?;
    }
    check_activity(activity, n)?;
    let p = normalized_preference(preference)?;
    let mut x = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            x[(i, j)] = f[(i, j)] * activity[i] * p[j] + (1.0 - f[(j, i)]) * activity[j] * p[i];
        }
    }
    Ok(x)
}

/// Parameters of the **stable-fP model** (Eq. 5): constant `f` and `P`,
/// time-varying activity (`n x t` matrix, node per row).
#[derive(Debug, Clone, PartialEq)]
pub struct StableFpParams {
    /// Forward ratio, constant in time and space.
    pub f: f64,
    /// Preference vector (will be normalized on evaluation).
    pub preference: Vec<f64>,
    /// Activity levels: `n x t`, `activity[(i, t)] = A_i(t)`.
    pub activity: Matrix,
}

impl StableFpParams {
    /// Validates dimensions and domains.
    pub fn validate(&self) -> Result<()> {
        check_f(self.f)?;
        let n = self.preference.len();
        normalized_preference(&self.preference)?;
        if self.activity.rows() != n {
            return Err(IcError::DimensionMismatch {
                context: "StableFpParams activity rows",
                expected: n,
                actual: self.activity.rows(),
            });
        }
        if self
            .activity
            .as_slice()
            .iter()
            .any(|&v| v < 0.0 || !v.is_finite())
        {
            return Err(IcError::InvalidParameter {
                name: "activity",
                constraint: "entries must be finite and non-negative",
            });
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.preference.len()
    }

    /// Number of time bins.
    pub fn bins(&self) -> usize {
        self.activity.cols()
    }

    /// Degrees of freedom of the model for this size: `nt + n + 1`
    /// (paper Section 5.1).
    pub fn degrees_of_freedom(&self) -> usize {
        self.nodes() * self.bins() + self.nodes() + 1
    }
}

/// Parameters of the **stable-f model** (Eq. 4): constant `f`,
/// time-varying activity and preference (`n x t` each).
#[derive(Debug, Clone, PartialEq)]
pub struct StableFParams {
    /// Forward ratio, constant in time and space.
    pub f: f64,
    /// Preference per bin: `n x t` (each column normalized on evaluation).
    pub preference: Matrix,
    /// Activity per bin: `n x t`.
    pub activity: Matrix,
}

impl StableFParams {
    /// Validates dimensions and domains.
    pub fn validate(&self) -> Result<()> {
        check_f(self.f)?;
        if self.preference.shape() != self.activity.shape() {
            return Err(IcError::DimensionMismatch {
                context: "StableFParams shapes",
                expected: self.activity.rows() * self.activity.cols(),
                actual: self.preference.rows() * self.preference.cols(),
            });
        }
        Ok(())
    }

    /// Degrees of freedom: `2nt + 1` (paper Section 5.1).
    pub fn degrees_of_freedom(&self) -> usize {
        2 * self.activity.rows() * self.activity.cols() + 1
    }
}

/// Parameters of the **time-varying model** (Eq. 3): everything varies.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeVaryingParams {
    /// Forward ratio per bin (length `t`).
    pub f: Vec<f64>,
    /// Preference per bin: `n x t`.
    pub preference: Matrix,
    /// Activity per bin: `n x t`.
    pub activity: Matrix,
}

impl TimeVaryingParams {
    /// Validates dimensions and domains.
    pub fn validate(&self) -> Result<()> {
        if self.f.len() != self.activity.cols() {
            return Err(IcError::DimensionMismatch {
                context: "TimeVaryingParams f length",
                expected: self.activity.cols(),
                actual: self.f.len(),
            });
        }
        for &v in &self.f {
            check_f(v)?;
        }
        if self.preference.shape() != self.activity.shape() {
            return Err(IcError::DimensionMismatch {
                context: "TimeVaryingParams shapes",
                expected: self.activity.rows() * self.activity.cols(),
                actual: self.preference.rows() * self.preference.cols(),
            });
        }
        Ok(())
    }

    /// Degrees of freedom: `3nt` (paper Section 5.1).
    pub fn degrees_of_freedom(&self) -> usize {
        3 * self.activity.rows() * self.activity.cols()
    }
}

/// Evaluates the stable-fP model (Eq. 5) over all bins, producing a
/// prediction series.
pub fn stable_fp_series(params: &StableFpParams, bin_seconds: f64) -> Result<TmSeries> {
    params.validate()?;
    let n = params.nodes();
    let t_total = params.bins();
    let mut out = TmSeries::zeros(n, t_total, bin_seconds)?;
    let p = normalized_preference(&params.preference)?;
    for t in 0..t_total {
        let a: Vec<f64> = (0..n).map(|i| params.activity[(i, t)]).collect();
        for i in 0..n {
            for j in 0..n {
                let v = params.f * a[i] * p[j] + (1.0 - params.f) * a[j] * p[i];
                out.set(i, j, t, v)?;
            }
        }
    }
    Ok(out)
}

/// Evaluates the stable-f model (Eq. 4) over all bins.
pub fn stable_f_series(params: &StableFParams, bin_seconds: f64) -> Result<TmSeries> {
    params.validate()?;
    let n = params.activity.rows();
    let t_total = params.activity.cols();
    let mut out = TmSeries::zeros(n, t_total, bin_seconds)?;
    for t in 0..t_total {
        let a: Vec<f64> = (0..n).map(|i| params.activity[(i, t)]).collect();
        let p_raw: Vec<f64> = (0..n).map(|i| params.preference[(i, t)]).collect();
        let x = simplified_ic(params.f, &a, &p_raw)?;
        for i in 0..n {
            for j in 0..n {
                out.set(i, j, t, x[(i, j)])?;
            }
        }
    }
    Ok(out)
}

/// Evaluates the time-varying model (Eq. 3) over all bins.
pub fn time_varying_series(params: &TimeVaryingParams, bin_seconds: f64) -> Result<TmSeries> {
    params.validate()?;
    let n = params.activity.rows();
    let t_total = params.activity.cols();
    let mut out = TmSeries::zeros(n, t_total, bin_seconds)?;
    for t in 0..t_total {
        let a: Vec<f64> = (0..n).map(|i| params.activity[(i, t)]).collect();
        let p_raw: Vec<f64> = (0..n).map(|i| params.preference[(i, t)]).collect();
        let x = simplified_ic(params.f[t], &a, &p_raw)?;
        for i in 0..n {
            for j in 0..n {
                out.set(i, j, t, x[(i, j)])?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplified_ic_total_equals_total_activity() {
        // Σ_ij X_ij = Σ_i A_i: all initiated traffic (forward + reverse)
        // appears exactly once in the TM.
        let x = simplified_ic(0.3, &[10.0, 20.0, 30.0], &[0.2, 0.3, 0.5]).unwrap();
        assert!((x.sum() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn simplified_ic_known_values() {
        // n=2, f=0.25, A=(100, 0), P=(0.5, 0.5).
        let x = simplified_ic(0.25, &[100.0, 0.0], &[1.0, 1.0]).unwrap();
        // X_00 = f*100*0.5 + (1-f)*100*0.5 = 50.
        assert!((x[(0, 0)] - 50.0).abs() < 1e-12);
        // X_01 = f*A_0*P_1 = 12.5 (forward only; node 1 has no activity).
        assert!((x[(0, 1)] - 12.5).abs() < 1e-12);
        // X_10 = (1-f)*A_0*P_1 = 37.5 (reverse traffic of 0's connections).
        assert!((x[(1, 0)] - 37.5).abs() < 1e-12);
        assert_eq!(x[(1, 1)], 0.0);
    }

    #[test]
    fn preference_is_normalized_internally() {
        let x1 = simplified_ic(0.25, &[5.0, 7.0], &[0.4, 0.6]).unwrap();
        let x2 = simplified_ic(0.25, &[5.0, 7.0], &[4.0, 6.0]).unwrap();
        assert!(x1.approx_eq(&x2, 1e-12));
    }

    #[test]
    fn f_half_makes_symmetric_tm() {
        // With f = 0.5 forward and reverse weights agree, so X is symmetric.
        let x = simplified_ic(0.5, &[3.0, 9.0, 1.0], &[0.1, 0.6, 0.3]).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((x[(i, j)] - x[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn asymmetry_direction_follows_f() {
        // f < 0.5: reverse traffic dominates, so for a high-activity node i
        // and quiet j, X_ji > X_ij means... carefully: X_ij gets f*A_i*P_j,
        // X_ji gets (1-f)*A_i*P_j. With f = 0.2, X_ji > X_ij.
        let x = simplified_ic(0.2, &[100.0, 0.0], &[0.5, 0.5]).unwrap();
        assert!(x[(1, 0)] > x[(0, 1)]);
    }

    #[test]
    fn validation_errors() {
        assert!(simplified_ic(-0.1, &[1.0], &[1.0]).is_err());
        assert!(simplified_ic(1.1, &[1.0], &[1.0]).is_err());
        assert!(simplified_ic(0.5, &[-1.0], &[1.0]).is_err());
        assert!(simplified_ic(0.5, &[1.0], &[-1.0]).is_err());
        assert!(simplified_ic(0.5, &[1.0], &[0.0]).is_err());
        assert!(simplified_ic(0.5, &[1.0, 2.0], &[1.0]).is_err());
        assert!(simplified_ic(0.5, &[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn general_reduces_to_simplified_for_constant_f() {
        let a = [10.0, 20.0, 5.0];
        let p = [0.3, 0.5, 0.2];
        let fconst = Matrix::filled(3, 3, 0.27);
        let xg = general_ic(&fconst, &a, &p).unwrap();
        let xs = simplified_ic(0.27, &a, &p).unwrap();
        assert!(xg.approx_eq(&xs, 1e-12));
    }

    #[test]
    fn general_ic_uses_fji_for_reverse() {
        // Asymmetric f: f_01 = 1 (all forward), f_10 = 0 (all reverse).
        let mut f = Matrix::filled(2, 2, 0.5);
        f[(0, 1)] = 1.0;
        f[(1, 0)] = 0.0;
        let a = [100.0, 0.0];
        let p = [0.5, 0.5];
        let x = general_ic(&f, &a, &p).unwrap();
        // X_01 = f_01 * A_0 * P_1 + (1 - f_10) * A_1 * P_0 = 50 + 0.
        assert!((x[(0, 1)] - 50.0).abs() < 1e-12);
        // X_10 = f_10 * A_1 * P_0 + (1 - f_01) * A_0 * P_1 = 0 + 0.
        assert!((x[(1, 0)] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn general_validates_shape_and_domain() {
        let a = [1.0, 2.0];
        let p = [0.5, 0.5];
        assert!(general_ic(&Matrix::zeros(3, 3), &a, &p).is_err());
        let mut f = Matrix::filled(2, 2, 0.5);
        f[(0, 1)] = 1.5;
        assert!(general_ic(&f, &a, &p).is_err());
    }

    #[test]
    fn stable_fp_series_evaluates_every_bin() {
        let params = StableFpParams {
            f: 0.25,
            preference: vec![0.2, 0.8],
            activity: Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]).unwrap(),
        };
        assert_eq!(params.nodes(), 2);
        assert_eq!(params.bins(), 2);
        assert_eq!(params.degrees_of_freedom(), 2 * 2 + 2 + 1);
        let s = stable_fp_series(&params, 300.0).unwrap();
        assert_eq!(s.bins(), 2);
        // Total per bin = total activity per bin.
        assert!((s.total(0) - 40.0).abs() < 1e-9);
        assert!((s.total(1) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn stable_fp_validation() {
        let bad = StableFpParams {
            f: 0.25,
            preference: vec![0.2, 0.8],
            activity: Matrix::zeros(3, 2),
        };
        assert!(bad.validate().is_err());
        let bad_f = StableFpParams {
            f: 2.0,
            preference: vec![1.0],
            activity: Matrix::zeros(1, 1),
        };
        assert!(bad_f.validate().is_err());
        let neg_a = StableFpParams {
            f: 0.5,
            preference: vec![1.0],
            activity: Matrix::from_rows(&[&[-1.0]]).unwrap(),
        };
        assert!(neg_a.validate().is_err());
    }

    #[test]
    fn stable_f_series_matches_manual() {
        let params = StableFParams {
            f: 0.4,
            preference: Matrix::from_rows(&[&[0.5, 0.1], &[0.5, 0.9]]).unwrap(),
            activity: Matrix::from_rows(&[&[10.0, 10.0], &[10.0, 10.0]]).unwrap(),
        };
        assert_eq!(params.degrees_of_freedom(), 2 * 2 * 2 + 1);
        let s = stable_f_series(&params, 300.0).unwrap();
        // Bin 1 preference is (0.1, 0.9): X_01(1) = 0.4*10*0.9 + 0.6*10*0.1.
        let want = 0.4 * 10.0 * 0.9 + 0.6 * 10.0 * 0.1;
        assert!((s.get(0, 1, 1).unwrap() - want).abs() < 1e-12);
        // Shape mismatch rejected.
        let bad = StableFParams {
            f: 0.4,
            preference: Matrix::zeros(2, 3),
            activity: Matrix::zeros(2, 2),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn time_varying_series_uses_per_bin_f() {
        let params = TimeVaryingParams {
            f: vec![0.0, 1.0],
            preference: Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap(),
            activity: Matrix::from_rows(&[&[10.0, 10.0], &[0.0, 0.0]]).unwrap(),
        };
        assert_eq!(params.degrees_of_freedom(), 3 * 2 * 2);
        let s = time_varying_series(&params, 300.0).unwrap();
        // Bin 0 (f=0): X_01 = 0 (no forward), bin 1 (f=1): X_01 = A_0*P_1.
        assert_eq!(s.get(0, 1, 0).unwrap(), 0.0);
        assert!((s.get(0, 1, 1).unwrap() - 5.0).abs() < 1e-12);
        // f length mismatch.
        let bad = TimeVaryingParams {
            f: vec![0.5],
            preference: Matrix::zeros(2, 2),
            activity: Matrix::zeros(2, 2),
        };
        assert!(bad.validate().is_err());
    }
}
