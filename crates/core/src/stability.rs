//! Parameter-stability analytics (paper Section 5.2–5.4).
//!
//! The paper's case for the simpler stable-f / stable-fP model variants
//! rests on empirics: fitted `f` values barely move across weeks
//! (Figure 5), fitted `{P_i}` overlay almost perfectly across up to seven
//! weeks (Figure 6), preference is *not* explained by egress volume
//! (Figure 8) nor by activity level (Section 5.4), and activity carries the
//! diurnal/weekend structure (Figure 9). This module computes those
//! analytics from a set of per-week fits.

use crate::fit::{fit_stable_fp, FitOptions, FitReport};
use crate::model::StableFpParams;
use crate::tm::TmSeries;
use crate::{IcError, Result};
use ic_stats::{pearson, spearman};

/// Per-week stable-fP fits plus derived stability measures.
#[derive(Debug, Clone)]
pub struct WeeklyFits {
    /// One fit per week, in chronological order.
    pub fits: Vec<FitReport<StableFpParams>>,
}

impl WeeklyFits {
    /// Fits every week of a series independently.
    ///
    /// `bins_per_week` controls the split (2016 for 5-minute bins, 672 for
    /// 15-minute bins).
    pub fn fit(series: &TmSeries, bins_per_week: usize, options: FitOptions) -> Result<Self> {
        let weeks = series.split_weeks(bins_per_week)?;
        let fits = weeks
            .iter()
            .map(|w| fit_stable_fp(w, options.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(WeeklyFits { fits })
    }

    /// Number of weeks fitted.
    pub fn weeks(&self) -> usize {
        self.fits.len()
    }

    /// The per-week optimal `f` values (Figure 5 series).
    pub fn f_series(&self) -> Vec<f64> {
        self.fits.iter().map(|f| f.params.f).collect()
    }

    /// The per-week preference vectors (Figure 6 overlay), one row per
    /// week.
    pub fn preference_series(&self) -> Vec<Vec<f64>> {
        self.fits
            .iter()
            .map(|f| f.params.preference.clone())
            .collect()
    }

    /// Week-over-week stability of `f`: maximum absolute difference between
    /// consecutive weeks.
    pub fn f_max_week_delta(&self) -> f64 {
        self.f_series()
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max)
    }

    /// Week-over-week preference stability: the minimum Pearson correlation
    /// between any pair of weekly preference vectors (1 = perfectly
    /// stable).
    pub fn preference_min_correlation(&self) -> Result<f64> {
        let ps = self.preference_series();
        if ps.len() < 2 {
            return Err(IcError::BadData(
                "preference stability needs at least two weeks",
            ));
        }
        let mut min_r = 1.0_f64;
        for a in 0..ps.len() {
            for b in (a + 1)..ps.len() {
                let r = pearson(&ps[a], &ps[b])?;
                min_r = min_r.min(r);
            }
        }
        Ok(min_r)
    }

    /// Mean preference vector across weeks (used as the "previously
    /// measured" `P` of the Section 6.2 estimation scenario).
    pub fn mean_preference(&self) -> Result<Vec<f64>> {
        if self.fits.is_empty() {
            return Err(IcError::BadData("no weekly fits"));
        }
        let n = self.fits[0].params.preference.len();
        let mut acc = vec![0.0; n];
        for f in &self.fits {
            if f.params.preference.len() != n {
                return Err(IcError::DimensionMismatch {
                    context: "mean_preference",
                    expected: n,
                    actual: f.params.preference.len(),
                });
            }
            for (a, &p) in acc.iter_mut().zip(f.params.preference.iter()) {
                *a += p;
            }
        }
        acc.iter_mut().for_each(|a| *a /= self.fits.len() as f64);
        Ok(acc)
    }

    /// Mean `f` across weeks.
    pub fn mean_f(&self) -> Result<f64> {
        if self.fits.is_empty() {
            return Err(IcError::BadData("no weekly fits"));
        }
        Ok(self.f_series().iter().sum::<f64>() / self.fits.len() as f64)
    }
}

/// Figure 8 analysis: compares a fitted preference vector against the
/// normalized mean egress shares `X_{*i}/X_{**}` of the same week.
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceVsEgress {
    /// Fitted preference values.
    pub preference: Vec<f64>,
    /// Normalized mean egress shares.
    pub egress_share: Vec<f64>,
    /// Pearson correlation over all nodes.
    pub pearson_all: f64,
    /// Spearman rank correlation over all nodes.
    pub spearman_all: f64,
    /// Pearson correlation restricted to the nodes above median egress —
    /// the paper: "among the nodes with greater than a median level of
    /// traffic there seems to be little correlation".
    pub pearson_above_median: f64,
}

/// Computes the Figure 8 comparison for one fitted week.
pub fn preference_vs_egress(
    fit: &FitReport<StableFpParams>,
    week: &TmSeries,
) -> Result<PreferenceVsEgress> {
    let p = fit.params.preference.clone();
    if p.len() != week.nodes() {
        return Err(IcError::DimensionMismatch {
            context: "preference_vs_egress",
            expected: week.nodes(),
            actual: p.len(),
        });
    }
    let me = week.mean_egress();
    let total: f64 = me.iter().sum();
    if total <= 0.0 {
        return Err(IcError::BadData("week carries no traffic"));
    }
    let share: Vec<f64> = me.iter().map(|&v| v / total).collect();
    let pearson_all = pearson(&p, &share)?;
    let spearman_all = spearman(&p, &share)?;
    // Restrict to above-median egress nodes.
    let mut sorted = share.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite shares"));
    let median = sorted[sorted.len() / 2];
    let (hp, hs): (Vec<f64>, Vec<f64>) = p
        .iter()
        .zip(share.iter())
        .filter(|&(_, &s)| s >= median)
        .map(|(&a, &b)| (a, b))
        .unzip();
    let pearson_above_median = if hp.len() >= 2 {
        pearson(&hp, &hs).unwrap_or(0.0)
    } else {
        0.0
    };
    Ok(PreferenceVsEgress {
        preference: p,
        egress_share: share,
        pearson_all,
        spearman_all,
        pearson_above_median,
    })
}

/// Extracts the fitted activity time series of selected nodes (Figure 9):
/// the node with the largest mean activity, an intermediate node, and the
/// smallest. Returns `(node index, mean activity, series)` triples ordered
/// largest → smallest.
pub fn activity_extremes(fit: &FitReport<StableFpParams>) -> Vec<(usize, f64, Vec<f64>)> {
    let a = &fit.params.activity;
    let n = a.rows();
    let bins = a.cols();
    let mut means: Vec<(usize, f64)> = (0..n)
        .map(|i| {
            let mean = (0..bins).map(|t| a[(i, t)]).sum::<f64>() / bins as f64;
            (i, mean)
        })
        .collect();
    means.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite means"));
    let picks = [0, means.len() / 2, means.len() - 1];
    picks
        .iter()
        .map(|&rank| {
            let (idx, mean) = means[rank];
            let series: Vec<f64> = (0..bins).map(|t| a[(idx, t)]).collect();
            (idx, mean, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{simplified_ic, StableFpParams};
    use ic_linalg::Matrix;

    /// Two "weeks" generated from the same stable-fP parameters with
    /// different activity levels.
    fn two_week_series() -> TmSeries {
        let n = 4;
        let bins_per_week = 6;
        let p = [0.45, 0.3, 0.15, 0.1];
        let mut tm = TmSeries::zeros(n, 2 * bins_per_week, 300.0).unwrap();
        for t in 0..2 * bins_per_week {
            let a: Vec<f64> = (0..n)
                .map(|i| 200.0 * (n - i) as f64 * (1.0 + 0.3 * ((t % 6) as f64 / 6.0)))
                .collect();
            let x = simplified_ic(0.24, &a, &p).unwrap();
            for i in 0..n {
                for j in 0..n {
                    tm.set(i, j, t, x[(i, j)]).unwrap();
                }
            }
        }
        tm
    }

    #[test]
    fn weekly_fits_recover_stable_parameters() {
        let tm = two_week_series();
        let weekly = WeeklyFits::fit(&tm, 6, FitOptions::default()).unwrap();
        assert_eq!(weekly.weeks(), 2);
        // f stable across weeks (both weeks share the truth f = 0.24).
        assert!(weekly.f_max_week_delta() < 0.02, "{:?}", weekly.f_series());
        assert!((weekly.mean_f().unwrap() - 0.24).abs() < 0.05);
        // Preference essentially identical across weeks.
        let min_r = weekly.preference_min_correlation().unwrap();
        assert!(min_r > 0.99, "min corr {min_r}");
        let mp = weekly.mean_preference().unwrap();
        assert!((mp.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stability_requires_multiple_weeks() {
        let tm = two_week_series();
        let weekly = WeeklyFits::fit(&tm, 12, FitOptions::default()).unwrap();
        assert_eq!(weekly.weeks(), 1);
        assert!(weekly.preference_min_correlation().is_err());
        assert_eq!(weekly.f_max_week_delta(), 0.0);
    }

    #[test]
    fn empty_fits_error() {
        let w = WeeklyFits { fits: vec![] };
        assert!(w.mean_preference().is_err());
        assert!(w.mean_f().is_err());
    }

    #[test]
    fn preference_vs_egress_reports_correlations() {
        let tm = two_week_series();
        let week = tm.slice_bins(0, 6).unwrap();
        let fit = fit_stable_fp(&week, FitOptions::default()).unwrap();
        let cmp = preference_vs_egress(&fit, &week).unwrap();
        assert_eq!(cmp.preference.len(), 4);
        assert!((cmp.egress_share.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(cmp.pearson_all.abs() <= 1.0);
        assert!(cmp.spearman_all.abs() <= 1.0);
    }

    #[test]
    fn preference_vs_egress_validates_sizes() {
        let tm = two_week_series();
        let week = tm.slice_bins(0, 6).unwrap();
        let fit = fit_stable_fp(&week, FitOptions::default()).unwrap();
        let other = TmSeries::zeros(3, 2, 300.0).unwrap();
        assert!(preference_vs_egress(&fit, &other).is_err());
    }

    #[test]
    fn activity_extremes_ordered() {
        let params = StableFpParams {
            f: 0.25,
            preference: vec![0.25; 4],
            activity: Matrix::from_rows(&[
                &[10.0, 12.0],
                &[500.0, 480.0],
                &[50.0, 60.0],
                &[1.0, 2.0],
            ])
            .unwrap(),
        };
        let fit = FitReport {
            params,
            objective_history: vec![0.0],
            converged: true,
            solve_stats: Default::default(),
        };
        let ex = activity_extremes(&fit);
        assert_eq!(ex.len(), 3);
        assert_eq!(ex[0].0, 1); // largest mean
        assert_eq!(ex[2].0, 3); // smallest mean
        assert!(ex[0].1 > ex[1].1 && ex[1].1 > ex[2].1);
        assert_eq!(ex[0].2.len(), 2);
    }
}
