//! Traffic-matrix timeseries container.
//!
//! The paper organizes a timeseries of traffic matrices as the `n² x t`
//! matrix `X` "where we have one (i, j) pair per row, and each row is a
//! time series" (Section 6.2). [`TmSeries`] adopts exactly that layout,
//! adds node names and bin metadata, and provides the marginal views
//! (ingress `X_{i*}`, egress `X_{*j}`, total `X_{**}`) that every model in
//! the workspace consumes.

use crate::{IcError, Result};
use ic_linalg::Matrix;

/// A timeseries of `n x n` traffic matrices over `t` bins.
///
/// Storage follows the paper's convention: an `n² x t` matrix with OD pair
/// `(i, j)` in row `i * n + j` (row-major vectorization, self-pairs
/// included).
///
/// # Examples
///
/// ```
/// use ic_core::TmSeries;
///
/// // Two nodes, two bins.
/// let mut tm = TmSeries::zeros(2, 2, 300.0).unwrap();
/// tm.set(0, 1, 0, 100.0).unwrap(); // X_{01}(t=0) = 100 bytes
/// assert_eq!(tm.get(0, 1, 0).unwrap(), 100.0);
/// assert_eq!(tm.ingress(0)[0], 100.0);
/// assert_eq!(tm.egress(0)[1], 100.0);
/// assert_eq!(tm.total(0), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TmSeries {
    nodes: usize,
    bins: usize,
    /// Seconds per time bin (300 for 5-minute bins, 900 for 15-minute).
    bin_seconds: f64,
    /// Optional node names (length `nodes` when present).
    node_names: Option<Vec<String>>,
    /// `n² x t`, row (i * n + j), column t.
    data: Matrix,
}

impl TmSeries {
    /// Creates an all-zero series.
    pub fn zeros(nodes: usize, bins: usize, bin_seconds: f64) -> Result<Self> {
        if nodes == 0 || bins == 0 {
            return Err(IcError::BadData("TmSeries requires nodes > 0 and bins > 0"));
        }
        if !(bin_seconds > 0.0) || !bin_seconds.is_finite() {
            return Err(IcError::InvalidParameter {
                name: "bin_seconds",
                constraint: "must be positive and finite",
            });
        }
        Ok(TmSeries {
            nodes,
            bins,
            bin_seconds,
            node_names: None,
            data: Matrix::zeros(nodes * nodes, bins),
        })
    }

    /// Wraps an existing `n² x t` matrix.
    pub fn from_matrix(nodes: usize, bin_seconds: f64, data: Matrix) -> Result<Self> {
        if data.rows() != nodes * nodes || data.cols() == 0 {
            return Err(IcError::DimensionMismatch {
                context: "TmSeries::from_matrix",
                expected: nodes * nodes,
                actual: data.rows(),
            });
        }
        if !(bin_seconds > 0.0) || !bin_seconds.is_finite() {
            return Err(IcError::InvalidParameter {
                name: "bin_seconds",
                constraint: "must be positive and finite",
            });
        }
        Ok(TmSeries {
            nodes,
            bins: data.cols(),
            bin_seconds,
            node_names: None,
            data,
        })
    }

    /// Attaches node names; the length must equal the node count.
    pub fn with_node_names(mut self, names: Vec<String>) -> Result<Self> {
        if names.len() != self.nodes {
            return Err(IcError::DimensionMismatch {
                context: "TmSeries::with_node_names",
                expected: self.nodes,
                actual: names.len(),
            });
        }
        self.node_names = Some(names);
        Ok(self)
    }

    /// Number of nodes `n`.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of time bins `t`.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Seconds per bin.
    pub fn bin_seconds(&self) -> f64 {
        self.bin_seconds
    }

    /// Node names, when attached.
    pub fn node_names(&self) -> Option<&[String]> {
        self.node_names.as_deref()
    }

    /// The underlying `n² x t` matrix (paper layout).
    pub fn as_matrix(&self) -> &Matrix {
        &self.data
    }

    /// Mutable access to the underlying matrix.
    pub fn as_matrix_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// Row-major OD index of `(origin, destination)`.
    #[inline]
    pub fn od_index(&self, origin: usize, destination: usize) -> usize {
        origin * self.nodes + destination
    }

    /// Reads `X_{ij}(t)`; errors when out of range.
    pub fn get(&self, origin: usize, destination: usize, bin: usize) -> Result<f64> {
        self.check_bounds(origin, destination, bin)?;
        Ok(self.data[(self.od_index(origin, destination), bin)])
    }

    /// Writes `X_{ij}(t)`; errors when out of range.
    pub fn set(&mut self, origin: usize, destination: usize, bin: usize, value: f64) -> Result<()> {
        self.check_bounds(origin, destination, bin)?;
        let idx = self.od_index(origin, destination);
        self.data[(idx, bin)] = value;
        Ok(())
    }

    /// Adds `value` to `X_{ij}(t)`; errors when out of range.
    pub fn add(&mut self, origin: usize, destination: usize, bin: usize, value: f64) -> Result<()> {
        self.check_bounds(origin, destination, bin)?;
        let idx = self.od_index(origin, destination);
        self.data[(idx, bin)] += value;
        Ok(())
    }

    fn check_bounds(&self, origin: usize, destination: usize, bin: usize) -> Result<()> {
        if origin >= self.nodes || destination >= self.nodes {
            return Err(IcError::DimensionMismatch {
                context: "TmSeries node index",
                expected: self.nodes,
                actual: origin.max(destination),
            });
        }
        if bin >= self.bins {
            return Err(IcError::DimensionMismatch {
                context: "TmSeries bin index",
                expected: self.bins,
                actual: bin,
            });
        }
        Ok(())
    }

    /// The traffic matrix at bin `t` as a dense `n x n` snapshot.
    pub fn snapshot(&self, bin: usize) -> Result<Matrix> {
        if bin >= self.bins {
            return Err(IcError::DimensionMismatch {
                context: "TmSeries::snapshot",
                expected: self.bins,
                actual: bin,
            });
        }
        let n = self.nodes;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = self.data[(i * n + j, bin)];
            }
        }
        Ok(m)
    }

    /// The vectorized traffic matrix at bin `t` (length `n²`).
    pub fn column(&self, bin: usize) -> Vec<f64> {
        self.data.col(bin)
    }

    /// Ingress counts `X_{i*}(t)` for every node at bin `t`.
    pub fn ingress(&self, bin: usize) -> Vec<f64> {
        let n = self.nodes;
        (0..n)
            .map(|i| (0..n).map(|j| self.data[(i * n + j, bin)]).sum())
            .collect()
    }

    /// Egress counts `X_{*j}(t)` for every node at bin `t`.
    pub fn egress(&self, bin: usize) -> Vec<f64> {
        let n = self.nodes;
        (0..n)
            .map(|j| (0..n).map(|i| self.data[(i * n + j, bin)]).sum())
            .collect()
    }

    /// Total traffic `X_{**}(t)` at bin `t`.
    pub fn total(&self, bin: usize) -> f64 {
        let n = self.nodes;
        (0..n * n).map(|r| self.data[(r, bin)]).sum()
    }

    /// Frobenius norm of the traffic matrix at bin `t`.
    pub fn norm(&self, bin: usize) -> f64 {
        let n2 = self.nodes * self.nodes;
        let mut s = 0.0;
        for r in 0..n2 {
            let v = self.data[(r, bin)];
            s += v * v;
        }
        s.sqrt()
    }

    /// Mean traffic matrix over all bins, as an `n x n` snapshot.
    pub fn mean_snapshot(&self) -> Matrix {
        let n = self.nodes;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let row = i * n + j;
                let mean: f64 =
                    (0..self.bins).map(|t| self.data[(row, t)]).sum::<f64>() / self.bins as f64;
                m[(i, j)] = mean;
            }
        }
        m
    }

    /// Mean ingress counts over all bins.
    pub fn mean_ingress(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.nodes];
        for t in 0..self.bins {
            for (a, v) in acc.iter_mut().zip(self.ingress(t)) {
                *a += v;
            }
        }
        acc.iter_mut().for_each(|a| *a /= self.bins as f64);
        acc
    }

    /// Mean egress counts over all bins.
    pub fn mean_egress(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.nodes];
        for t in 0..self.bins {
            for (a, v) in acc.iter_mut().zip(self.egress(t)) {
                *a += v;
            }
        }
        acc.iter_mut().for_each(|a| *a /= self.bins as f64);
        acc
    }

    /// Extracts the sub-series of bins `[start, start + len)`.
    pub fn slice_bins(&self, start: usize, len: usize) -> Result<TmSeries> {
        if len == 0 || start + len > self.bins {
            return Err(IcError::BadData("slice_bins out of range"));
        }
        let n2 = self.nodes * self.nodes;
        let mut data = Matrix::zeros(n2, len);
        for r in 0..n2 {
            for c in 0..len {
                data[(r, c)] = self.data[(r, start + c)];
            }
        }
        Ok(TmSeries {
            nodes: self.nodes,
            bins: len,
            bin_seconds: self.bin_seconds,
            node_names: self.node_names.clone(),
            data,
        })
    }

    /// Splits the series into consecutive weeks of `bins_per_week` bins,
    /// dropping a trailing partial week.
    pub fn split_weeks(&self, bins_per_week: usize) -> Result<Vec<TmSeries>> {
        if bins_per_week == 0 {
            return Err(IcError::InvalidParameter {
                name: "bins_per_week",
                constraint: "must be positive",
            });
        }
        if self.bins / bins_per_week == 0 {
            return Err(IcError::BadData(
                "series shorter than one week; nothing to split",
            ));
        }
        self.windows(bins_per_week)
    }

    /// Splits the series into consecutive tumbling windows of `bins` bins
    /// (a trailing partial window is dropped). A week split is the special
    /// case `bins = bins_per_week`; streaming estimators use shorter
    /// windows.
    ///
    /// # Examples
    ///
    /// ```
    /// use ic_core::TmSeries;
    ///
    /// let tm = TmSeries::zeros(2, 7, 300.0).unwrap();
    /// let windows = tm.windows(3).unwrap();
    /// assert_eq!(windows.len(), 2); // bin 6 is a dropped partial window
    /// assert!(windows.iter().all(|w| w.bins() == 3));
    /// ```
    pub fn windows(&self, bins: usize) -> Result<Vec<TmSeries>> {
        Ok(self.iter_windows(bins, bins)?.collect())
    }

    /// Iterates sliding windows of `bins` bins advancing by `stride` bins
    /// per step (`stride == bins` gives tumbling windows). Windows are
    /// produced lazily; a trailing partial window is dropped.
    ///
    /// # Examples
    ///
    /// ```
    /// use ic_core::TmSeries;
    ///
    /// let tm = TmSeries::zeros(2, 5, 300.0).unwrap();
    /// let windows: Vec<_> = tm.iter_windows(3, 1).unwrap().collect();
    /// assert_eq!(windows.len(), 3); // bins 0..3, 1..4, 2..5
    /// assert!(windows.iter().all(|w| w.bins() == 3));
    /// ```
    pub fn iter_windows(&self, bins: usize, stride: usize) -> Result<TmWindowIter<'_>> {
        if bins == 0 {
            return Err(IcError::InvalidParameter {
                name: "bins",
                constraint: "window length must be positive",
            });
        }
        if stride == 0 {
            return Err(IcError::InvalidParameter {
                name: "stride",
                constraint: "window stride must be positive",
            });
        }
        Ok(TmWindowIter {
            series: self,
            bins,
            stride,
            next_start: 0,
        })
    }

    /// True when every entry is finite and non-negative.
    pub fn is_physical(&self) -> bool {
        self.data
            .as_slice()
            .iter()
            .all(|&v| v.is_finite() && v >= 0.0)
    }
}

/// Lazy sliding-window iterator over a [`TmSeries`] — see
/// [`TmSeries::iter_windows`].
#[derive(Debug, Clone)]
pub struct TmWindowIter<'a> {
    series: &'a TmSeries,
    bins: usize,
    stride: usize,
    next_start: usize,
}

impl TmWindowIter<'_> {
    /// Start bin of the window the next `next()` call will produce.
    pub fn next_start(&self) -> usize {
        self.next_start
    }
}

impl Iterator for TmWindowIter<'_> {
    type Item = TmSeries;

    fn next(&mut self) -> Option<TmSeries> {
        let start = self.next_start;
        if start + self.bins > self.series.bins {
            return None;
        }
        self.next_start = start + self.stride;
        Some(
            self.series
                .slice_bins(start, self.bins)
                .expect("window bounds checked above"),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.next_start + self.bins > self.series.bins {
            0
        } else {
            (self.series.bins - self.next_start - self.bins) / self.stride + 1
        };
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TmSeries {
        // 2 nodes, 3 bins with recognizable values.
        let mut tm = TmSeries::zeros(2, 3, 300.0).unwrap();
        for t in 0..3 {
            tm.set(0, 0, t, 1.0 + t as f64).unwrap();
            tm.set(0, 1, t, 10.0).unwrap();
            tm.set(1, 0, t, 20.0).unwrap();
            tm.set(1, 1, t, 2.0).unwrap();
        }
        tm
    }

    #[test]
    fn construction_validates() {
        assert!(TmSeries::zeros(0, 1, 300.0).is_err());
        assert!(TmSeries::zeros(1, 0, 300.0).is_err());
        assert!(TmSeries::zeros(1, 1, 0.0).is_err());
        assert!(TmSeries::zeros(1, 1, f64::NAN).is_err());
        assert!(TmSeries::from_matrix(2, 300.0, Matrix::zeros(3, 4)).is_err());
        assert!(TmSeries::from_matrix(2, 0.0, Matrix::zeros(4, 4)).is_err());
        assert!(TmSeries::from_matrix(2, 300.0, Matrix::zeros(4, 4)).is_ok());
    }

    #[test]
    fn get_set_add_bounds() {
        let mut tm = tiny();
        assert!(tm.get(2, 0, 0).is_err());
        assert!(tm.get(0, 2, 0).is_err());
        assert!(tm.get(0, 0, 3).is_err());
        assert!(tm.set(2, 0, 0, 1.0).is_err());
        assert!(tm.add(0, 0, 9, 1.0).is_err());
        tm.add(0, 1, 0, 5.0).unwrap();
        assert_eq!(tm.get(0, 1, 0).unwrap(), 15.0);
    }

    #[test]
    fn marginals() {
        let tm = tiny();
        assert_eq!(tm.ingress(0), vec![11.0, 22.0]);
        assert_eq!(tm.egress(0), vec![21.0, 12.0]);
        assert_eq!(tm.total(0), 33.0);
        // Totals of ingress and egress always agree.
        let ti: f64 = tm.ingress(1).iter().sum();
        let te: f64 = tm.egress(1).iter().sum();
        assert!((ti - te).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trip() {
        let tm = tiny();
        let snap = tm.snapshot(2).unwrap();
        assert_eq!(snap[(0, 0)], 3.0);
        assert_eq!(snap[(0, 1)], 10.0);
        assert_eq!(snap[(1, 0)], 20.0);
        assert!(tm.snapshot(3).is_err());
    }

    #[test]
    fn column_matches_layout() {
        let tm = tiny();
        let col = tm.column(0);
        assert_eq!(col, vec![1.0, 10.0, 20.0, 2.0]);
    }

    #[test]
    fn norm_is_frobenius() {
        let tm = tiny();
        let want = (1.0_f64 + 100.0 + 400.0 + 4.0).sqrt();
        assert!((tm.norm(0) - want).abs() < 1e-12);
    }

    #[test]
    fn means() {
        let tm = tiny();
        let m = tm.mean_snapshot();
        assert!((m[(0, 0)] - 2.0).abs() < 1e-12); // mean of 1,2,3
        assert_eq!(m[(0, 1)], 10.0);
        let mi = tm.mean_ingress();
        assert!((mi[0] - 12.0).abs() < 1e-12);
        let me = tm.mean_egress();
        assert!((me[1] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn slicing_and_weeks() {
        let tm = tiny();
        let s = tm.slice_bins(1, 2).unwrap();
        assert_eq!(s.bins(), 2);
        assert_eq!(s.get(0, 0, 0).unwrap(), 2.0);
        assert!(tm.slice_bins(2, 2).is_err());
        assert!(tm.slice_bins(0, 0).is_err());
        let weeks = tm.split_weeks(1).unwrap();
        assert_eq!(weeks.len(), 3);
        assert!(tm.split_weeks(0).is_err());
        assert!(tm.split_weeks(5).is_err());
    }

    #[test]
    fn tumbling_windows_match_manual_slices() {
        let tm = tiny();
        let windows = tm.windows(1).unwrap();
        assert_eq!(windows.len(), 3);
        for (w, window) in windows.iter().enumerate() {
            assert_eq!(window, &tm.slice_bins(w, 1).unwrap());
        }
        // Partial trailing window is dropped.
        assert_eq!(tm.windows(2).unwrap().len(), 1);
        assert!(tm.windows(0).is_err());
        // A window longer than the series yields no windows.
        assert!(tm.windows(5).unwrap().is_empty());
        // split_weeks keeps its stricter "at least one week" contract.
        assert!(tm.split_weeks(5).is_err());
        assert_eq!(tm.split_weeks(1).unwrap(), tm.windows(1).unwrap());
    }

    #[test]
    fn sliding_windows_advance_by_stride() {
        let mut tm = TmSeries::zeros(1, 6, 300.0).unwrap();
        for t in 0..6 {
            tm.set(0, 0, t, t as f64).unwrap();
        }
        let windows: Vec<TmSeries> = tm.iter_windows(3, 2).unwrap().collect();
        assert_eq!(windows.len(), 2); // bins 0..3 and 2..5; 4..7 overruns
        assert_eq!(windows[0].get(0, 0, 0).unwrap(), 0.0);
        assert_eq!(windows[1].get(0, 0, 0).unwrap(), 2.0);
        assert!(tm.iter_windows(3, 0).is_err());
        assert!(tm.iter_windows(0, 1).is_err());
        let mut iter = tm.iter_windows(2, 2).unwrap();
        assert_eq!(iter.size_hint(), (3, Some(3)));
        assert_eq!(iter.next_start(), 0);
        iter.next();
        assert_eq!(iter.next_start(), 2);
        assert_eq!(iter.size_hint(), (2, Some(2)));
    }

    #[test]
    fn node_names_validation() {
        let tm = tiny();
        assert!(tm.clone().with_node_names(vec!["a".into()]).is_err());
        let named = tm.with_node_names(vec!["a".into(), "b".into()]).unwrap();
        assert_eq!(named.node_names().unwrap()[1], "b");
    }

    #[test]
    fn physical_check() {
        let mut tm = tiny();
        assert!(tm.is_physical());
        tm.set(0, 0, 0, -1.0).unwrap();
        assert!(!tm.is_physical());
        tm.set(0, 0, 0, f64::NAN).unwrap();
        assert!(!tm.is_physical());
    }

    #[test]
    fn od_index_layout() {
        let tm = tiny();
        assert_eq!(tm.od_index(0, 0), 0);
        assert_eq!(tm.od_index(0, 1), 1);
        assert_eq!(tm.od_index(1, 0), 2);
        assert_eq!(tm.od_index(1, 1), 3);
    }
}
