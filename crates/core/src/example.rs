//! The Figure 2 worked example: why packet-level independence fails.
//!
//! Section 3 of the paper constructs a three-node network in which every
//! connection carries equal forward and reverse volume and every node picks
//! its responder uniformly (connection-level independence holds *exactly*),
//! yet the conditional packet egress probabilities differ wildly from the
//! marginal — exposing the gravity model's broken assumption:
//!
//! ```text
//! P[E = A | I = A] = 200/403 ≈ 0.50
//! P[E = A | I = B] = 102/109 ≈ 0.93
//! P[E = A | I = C] = 101/106 ≈ 0.95
//! P[E = A]         = 403/618 ≈ 0.65
//! ```

use ic_linalg::Matrix;

/// Outcome of the Figure 2 construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2Result {
    /// The 3×3 traffic matrix of the example (packets).
    pub traffic: Matrix,
    /// `P[E = A | I = A]` — should be ≈ 0.50.
    pub p_e_a_given_i_a: f64,
    /// `P[E = A | I = B]` — should be ≈ 0.93.
    pub p_e_a_given_i_b: f64,
    /// `P[E = A | I = C]` — should be ≈ 0.95.
    pub p_e_a_given_i_c: f64,
    /// The marginal `P[E = A]` — should be ≈ 0.65.
    pub p_e_a: f64,
}

impl Figure2Result {
    /// Largest absolute gap between a conditional probability and the
    /// marginal — zero iff the gravity (packet-independence) assumption
    /// holds on this traffic.
    pub fn max_independence_violation(&self) -> f64 {
        [
            self.p_e_a_given_i_a,
            self.p_e_a_given_i_b,
            self.p_e_a_given_i_c,
        ]
        .iter()
        .map(|p| (p - self.p_e_a).abs())
        .fold(0.0, f64::max)
    }
}

/// Builds the Figure 2 example: three nodes A, B, C; node A initiates 3
/// connections of 100 packets each direction, B initiates 3 of 2 packets,
/// C initiates 3 of 1 packet; every initiator spreads its three connections
/// over responders A, B, C (one each — the uniform independent-connection
/// choice).
///
/// # Examples
///
/// ```
/// use ic_core::figure2_example;
///
/// let r = figure2_example();
/// assert!((r.p_e_a_given_i_a - 0.50).abs() < 0.01);
/// assert!((r.p_e_a_given_i_b - 0.93).abs() < 0.01);
/// assert!((r.p_e_a_given_i_c - 0.95).abs() < 0.01);
/// assert!((r.p_e_a - 0.65).abs() < 0.01);
/// ```
pub fn figure2_example() -> Figure2Result {
    let n = 3;
    // Connection volume per direction, indexed by initiator.
    let volume = [100.0, 2.0, 1.0];
    let mut x = Matrix::zeros(n, n);
    // Each initiator i opens one connection to each responder j (including
    // j = i, a "self-looping arc": two hosts behind the same access point).
    // Forward traffic: i -> j, volume[i]. Reverse traffic: j -> i, same
    // volume (the example assumes symmetric per-connection volume).
    for i in 0..n {
        for j in 0..n {
            x[(i, j)] += volume[i]; // forward of i's connection to j
            x[(j, i)] += volume[i]; // reverse of the same connection
        }
    }
    let row_sums = x.row_sums();
    let col_a: f64 = (0..n).map(|i| x[(i, 0)]).sum();
    let total = x.sum();
    Figure2Result {
        p_e_a_given_i_a: x[(0, 0)] / row_sums[0],
        p_e_a_given_i_b: x[(1, 0)] / row_sums[1],
        p_e_a_given_i_c: x[(2, 0)] / row_sums[2],
        p_e_a: col_a / total,
        traffic: x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_exact_fractions() {
        let r = figure2_example();
        assert!((r.p_e_a_given_i_a - 200.0 / 403.0).abs() < 1e-12);
        assert!((r.p_e_a_given_i_b - 102.0 / 109.0).abs() < 1e-12);
        assert!((r.p_e_a_given_i_c - 101.0 / 106.0).abs() < 1e-12);
        assert!((r.p_e_a - 403.0 / 618.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_totals_match_paper() {
        let r = figure2_example();
        // Total traffic = 2 * (3*100 + 3*2 + 3*1) * ... every connection
        // counted in both directions: total = 618 packets.
        assert!((r.traffic.sum() - 618.0).abs() < 1e-12);
        // Ingress at A: everything leaving node A = 403... in the paper's
        // notation "total traffic flowing into the network at any node
        // consists of all the arcs leaving that node" = row sum of A.
        assert!((r.traffic.row_sums()[0] - 403.0).abs() < 1e-12);
    }

    #[test]
    fn independence_violation_is_large() {
        let r = figure2_example();
        // The conditional probabilities deviate from the marginal by ~0.3:
        // this is the paper's argument against the gravity model in one
        // number.
        assert!(r.max_independence_violation() > 0.25);
    }

    #[test]
    fn traffic_matrix_is_symmetric_here() {
        // With per-connection symmetric volume (f = 0.5), the example TM is
        // symmetric even though activities differ.
        let r = figure2_example();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r.traffic[(i, j)] - r.traffic[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ic_model_reproduces_example_exactly() {
        // The example *is* an IC configuration: f = 0.5, A proportional to
        // initiated volume, P uniform. The simplified IC model must
        // reproduce the example's traffic matrix.
        let r = figure2_example();
        // Activity: 2 * 3 * volume (both directions, three connections).
        let a = [600.0, 12.0, 6.0];
        let p = [1.0 / 3.0; 3];
        let x = crate::model::simplified_ic(0.5, &a, &p).unwrap();
        assert!(x.approx_eq(&r.traffic, 1e-9), "{x} vs {}", r.traffic);
    }
}
