//! # ic-core — the independent-connection traffic-matrix model
//!
//! This crate is the reproduction of the paper's contribution proper:
//! *"An Independent-Connection Model for Traffic Matrices"* (Erramilli,
//! Crovella, Taft — IMC 2006).
//!
//! The gravity model assumes a packet's network ingress and egress are
//! independent. The paper observes that most Internet traffic consists of
//! **connections** — two-way packet exchanges — so the bytes flowing `i → j`
//! are not independent of the bytes flowing `j → i`. The
//! independent-connection (IC) model instead assumes the **initiator** and
//! **responder** access points of a connection are independent, and writes
//! each OD flow as forward traffic plus reverse traffic:
//!
//! ```text
//! X_ij(t) = f · A_i(t) · P_j / ΣP  +  (1 − f) · A_j(t) · P_i / ΣP
//! ```
//!
//! with `f` the forward-traffic fraction (application-mix dependent), `A_i`
//! the *activity* of node `i` (bytes due to connections initiated there) and
//! `P_i` the *preference* of node `i` (probability a connection's responder
//! is there).
//!
//! Module map:
//!
//! * [`tm`] — the [`tm::TmSeries`] timeseries-of-traffic-matrices
//!   container used everywhere,
//! * [`model`] — evaluators for the general (Eq. 1), simplified (Eq. 2),
//!   time-varying (Eq. 3), stable-f (Eq. 4) and stable-fP (Eq. 5) variants,
//! * [`ic_model`] — the [`IcModel`]/[`Fit`] traits unifying the family
//!   behind one evaluate/fit surface,
//! * [`gravity`] — the gravity model baseline,
//! * [`error`] — the relative ℓ² temporal error metric (Eq. 6),
//! * [`fit`] — the Section 5.1 nonlinear program (block-coordinate descent
//!   with non-negativity and simplex constraints),
//! * [`stability`] — week-over-week parameter-stability analytics
//!   (Figures 5, 6, 8, 9),
//! * [`synth`] — Section 5.5 synthetic TM generation,
//! * [`example`] — the Figure 2 worked example showing why packet-level
//!   independence fails under connection traffic.

pub mod error;
pub mod example;
pub mod fit;
pub mod gravity;
pub mod ic_model;
pub mod model;
pub mod stability;
pub mod synth;
pub mod tm;

pub use error::{improvement_percent, mean_rel_l2, rel_l2_series, rel_l2_temporal};
pub use example::{figure2_example, Figure2Result};
pub use fit::{
    fit_stable_f, fit_stable_fp, fit_time_varying, FitOptions, FitReport, Objective, WarmStart,
};
#[allow(deprecated)]
pub use fit::{FitResult, StableFFitResult, TimeVaryingFitResult};
pub use gravity::{gravity_from_marginals, gravity_predict};
pub use ic_model::{Fit, IcModel};
pub use model::{
    general_ic, simplified_ic, stable_f_series, stable_fp_series, time_varying_series,
    StableFParams, StableFpParams, TimeVaryingParams,
};
pub use synth::{generate_synthetic, synth_process, SynthConfig, SynthOutput, SynthProcess};
pub use tm::{TmSeries, TmWindowIter};

// Re-exported so downstream crates can pick a solver for the BCD fits
// without depending on ic-linalg directly.
pub use ic_linalg::{SolveStats, SolverPolicy};

/// Errors produced by the IC model library.
#[derive(Debug, Clone, PartialEq)]
pub enum IcError {
    /// Input dimensions are inconsistent (e.g. preference length vs node
    /// count).
    DimensionMismatch {
        /// What was being computed.
        context: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A model parameter is out of its domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint violated.
        constraint: &'static str,
    },
    /// The input data is unusable (empty, non-finite, all-zero, ...).
    BadData(&'static str),
    /// An underlying linear-algebra routine failed.
    Linalg(ic_linalg::LinalgError),
    /// An underlying statistics routine failed.
    Stats(ic_stats::StatsError),
}

impl core::fmt::Display for IcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IcError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            IcError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter {name}: {constraint}")
            }
            IcError::BadData(msg) => write!(f, "bad data: {msg}"),
            IcError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            IcError::Stats(e) => write!(f, "statistics failure: {e}"),
        }
    }
}

impl std::error::Error for IcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IcError::Linalg(e) => Some(e),
            IcError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ic_linalg::LinalgError> for IcError {
    fn from(e: ic_linalg::LinalgError) -> Self {
        IcError::Linalg(e)
    }
}

impl From<ic_stats::StatsError> for IcError {
    fn from(e: ic_stats::StatsError) -> Self {
        IcError::Stats(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, IcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = IcError::DimensionMismatch {
            context: "preference",
            expected: 22,
            actual: 23,
        };
        assert!(e.to_string().contains("22"));
        let e: IcError = ic_linalg::LinalgError::Singular.into();
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
        let e: IcError = ic_stats::StatsError::InsufficientData("x").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(IcError::BadData("empty").to_string().contains("empty"));
        assert!(IcError::InvalidParameter {
            name: "f",
            constraint: "must be in [0,1]"
        }
        .to_string()
        .contains("[0,1]"));
        assert!(std::error::Error::source(&IcError::BadData("x")).is_none());
    }
}
