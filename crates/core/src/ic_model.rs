//! The [`IcModel`] abstraction: one interface over the whole model family.
//!
//! The paper defines a *family* of IC models (Eqs. 1–5) that trade degrees
//! of freedom against parameter stability. Code that evaluates, fits, or
//! reports on a model should not care which family member it holds — a
//! scenario harness wants to sweep all of them with the same loop. This
//! module provides that surface:
//!
//! * [`IcModel`] — evaluate a parameterization into a [`TmSeries`] and
//!   describe its shape (`n_nodes`, `n_bins`, `n_params`, `name`). The
//!   trait is object-safe, so heterogeneous collections
//!   (`Vec<Box<dyn IcModel>>`) work.
//! * [`Fit`] — the uniform fitting entry point. Each family member knows
//!   how to fit itself to data, returning a [`crate::fit::FitReport`]
//!   parameterized by the model type, so generic code can fit any variant:
//!
//! ```
//! use ic_core::{Fit, IcModel, SynthConfig, FitOptions, StableFpParams};
//!
//! let data = ic_core::generate_synthetic(&SynthConfig::geant_like(7).with_nodes(4).with_bins(24))
//!     .unwrap()
//!     .series;
//! // Generic over the model variant:
//! fn fit_and_describe<M: Fit>(x: &ic_core::TmSeries) -> (String, f64) {
//!     let report = M::fit(x, FitOptions::default()).unwrap();
//!     (report.params.name().to_string(), report.final_objective())
//! }
//! let (name, obj) = fit_and_describe::<StableFpParams>(&data);
//! assert_eq!(name, "stable-fp");
//! assert!(obj.is_finite());
//! ```

use crate::fit::{fit_stable_f, fit_stable_fp, fit_time_varying, FitOptions, FitReport};
use crate::model::{
    stable_f_series, stable_fp_series, time_varying_series, StableFParams, StableFpParams,
    TimeVaryingParams,
};
use crate::tm::TmSeries;
use crate::Result;

/// A parameterized member of the independent-connection model family.
///
/// Implemented by [`StableFpParams`] (Eq. 5), [`StableFParams`] (Eq. 4)
/// and [`TimeVaryingParams`] (Eq. 3). Object-safe: trait objects are fine
/// for heterogeneous model collections.
pub trait IcModel {
    /// Short stable identifier used in reports (`"stable-fp"`,
    /// `"stable-f"`, `"time-varying"`).
    fn name(&self) -> &str;

    /// Number of access points the parameterization covers.
    fn n_nodes(&self) -> usize;

    /// Number of time bins the parameterization covers.
    fn n_bins(&self) -> usize;

    /// Degrees of freedom of the parameterization (paper Section 5.1's
    /// model-complexity accounting).
    fn n_params(&self) -> usize;

    /// Validates dimensions and parameter domains.
    fn validate(&self) -> Result<()>;

    /// Evaluates the model over all its bins into a prediction series.
    fn evaluate(&self, bin_seconds: f64) -> Result<TmSeries>;
}

impl IcModel for StableFpParams {
    fn name(&self) -> &str {
        "stable-fp"
    }

    fn n_nodes(&self) -> usize {
        self.nodes()
    }

    fn n_bins(&self) -> usize {
        self.bins()
    }

    fn n_params(&self) -> usize {
        self.degrees_of_freedom()
    }

    fn validate(&self) -> Result<()> {
        StableFpParams::validate(self)
    }

    fn evaluate(&self, bin_seconds: f64) -> Result<TmSeries> {
        stable_fp_series(self, bin_seconds)
    }
}

impl IcModel for StableFParams {
    fn name(&self) -> &str {
        "stable-f"
    }

    fn n_nodes(&self) -> usize {
        self.activity.rows()
    }

    fn n_bins(&self) -> usize {
        self.activity.cols()
    }

    fn n_params(&self) -> usize {
        self.degrees_of_freedom()
    }

    fn validate(&self) -> Result<()> {
        StableFParams::validate(self)
    }

    fn evaluate(&self, bin_seconds: f64) -> Result<TmSeries> {
        stable_f_series(self, bin_seconds)
    }
}

impl IcModel for TimeVaryingParams {
    fn name(&self) -> &str {
        "time-varying"
    }

    fn n_nodes(&self) -> usize {
        self.activity.rows()
    }

    fn n_bins(&self) -> usize {
        self.activity.cols()
    }

    fn n_params(&self) -> usize {
        self.degrees_of_freedom()
    }

    fn validate(&self) -> Result<()> {
        TimeVaryingParams::validate(self)
    }

    fn evaluate(&self, bin_seconds: f64) -> Result<TmSeries> {
        time_varying_series(self, bin_seconds)
    }
}

/// The uniform fitting entry point over the model family.
///
/// `M::fit(x, options)` dispatches to the right Section 5.1 program
/// (`fit_stable_fp`, `fit_stable_f`, `fit_time_varying`) and returns a
/// [`FitReport<M>`], so callers can be generic over the variant they fit.
pub trait Fit: IcModel + Sized {
    /// Fits this model family member to a traffic-matrix series.
    fn fit(x: &TmSeries, options: FitOptions) -> Result<FitReport<Self>>;
}

impl Fit for StableFpParams {
    fn fit(x: &TmSeries, options: FitOptions) -> Result<FitReport<Self>> {
        fit_stable_fp(x, options)
    }
}

impl Fit for StableFParams {
    fn fit(x: &TmSeries, options: FitOptions) -> Result<FitReport<Self>> {
        fit_stable_f(x, options)
    }
}

impl Fit for TimeVaryingParams {
    fn fit(x: &TmSeries, options: FitOptions) -> Result<FitReport<Self>> {
        fit_time_varying(x, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::simplified_ic;
    use ic_linalg::Matrix;

    fn exact_series(f: f64, p: &[f64], bins: usize) -> TmSeries {
        let n = p.len();
        let mut tm = TmSeries::zeros(n, bins, 300.0).unwrap();
        for t in 0..bins {
            let a: Vec<f64> = (0..n)
                .map(|i| 100.0 * (1.0 + i as f64) * (1.0 + 0.3 * ((t + i) as f64).sin().abs()))
                .collect();
            let x = simplified_ic(f, &a, p).unwrap();
            for i in 0..n {
                for j in 0..n {
                    tm.set(i, j, t, x[(i, j)]).unwrap();
                }
            }
        }
        tm
    }

    #[test]
    fn trait_metadata_matches_inherent_accessors() {
        let sfp = StableFpParams {
            f: 0.25,
            preference: vec![0.5, 0.3, 0.2],
            activity: Matrix::zeros(3, 7),
        };
        assert_eq!(sfp.name(), "stable-fp");
        assert_eq!(sfp.n_nodes(), 3);
        assert_eq!(sfp.n_bins(), 7);
        assert_eq!(sfp.n_params(), sfp.degrees_of_freedom());

        let sf = StableFParams {
            f: 0.25,
            preference: Matrix::zeros(4, 5),
            activity: Matrix::zeros(4, 5),
        };
        assert_eq!(sf.name(), "stable-f");
        assert_eq!(sf.n_nodes(), 4);
        assert_eq!(sf.n_bins(), 5);
        assert_eq!(sf.n_params(), 2 * 4 * 5 + 1);

        let tv = TimeVaryingParams {
            f: vec![0.5; 5],
            preference: Matrix::zeros(4, 5),
            activity: Matrix::zeros(4, 5),
        };
        assert_eq!(tv.name(), "time-varying");
        assert_eq!(tv.n_nodes(), 4);
        assert_eq!(tv.n_bins(), 5);
        assert_eq!(tv.n_params(), 3 * 4 * 5);
    }

    #[test]
    fn evaluate_matches_free_functions() {
        let params = StableFpParams {
            f: 0.25,
            preference: vec![0.6, 0.4],
            activity: Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]).unwrap(),
        };
        let via_trait = IcModel::evaluate(&params, 300.0).unwrap();
        let via_free = stable_fp_series(&params, 300.0).unwrap();
        assert_eq!(via_trait, via_free);
    }

    #[test]
    fn object_safe_over_the_family() {
        let models: Vec<Box<dyn IcModel>> = vec![
            Box::new(StableFpParams {
                f: 0.25,
                preference: vec![0.5, 0.5],
                activity: Matrix::filled(2, 3, 10.0),
            }),
            Box::new(StableFParams {
                f: 0.25,
                preference: Matrix::filled(2, 3, 0.5),
                activity: Matrix::filled(2, 3, 10.0),
            }),
            Box::new(TimeVaryingParams {
                f: vec![0.25; 3],
                preference: Matrix::filled(2, 3, 0.5),
                activity: Matrix::filled(2, 3, 10.0),
            }),
        ];
        let mut dof: Vec<usize> = Vec::new();
        for m in &models {
            assert!(m.validate().is_ok(), "{}", m.name());
            let series = m.evaluate(300.0).unwrap();
            assert_eq!(series.nodes(), m.n_nodes());
            assert_eq!(series.bins(), m.n_bins());
            dof.push(m.n_params());
        }
        // Eq. 5 < Eq. 4 < Eq. 3 in degrees of freedom for a common shape.
        assert!(dof[0] < dof[1] && dof[1] < dof[2], "{dof:?}");
    }

    #[test]
    fn generic_fit_dispatches_per_variant() {
        fn fit_any<M: Fit>(x: &TmSeries) -> FitReport<M> {
            M::fit(x, FitOptions::default()).unwrap()
        }
        let tm = exact_series(0.25, &[0.5, 0.3, 0.2], 6);
        let sfp = fit_any::<StableFpParams>(&tm);
        let sf = fit_any::<StableFParams>(&tm);
        let tv = fit_any::<TimeVaryingParams>(&tm);
        // All three agree with their direct entry points' behaviour: exact
        // IC data fits essentially perfectly under every variant.
        assert!(sfp.final_objective() < 1e-4, "{}", sfp.final_objective());
        assert!(sf.final_objective() < 1e-4, "{}", sf.final_objective());
        assert!(tv.final_objective() < 1e-4, "{}", tv.final_objective());
        // And the reports carry the right parameterization types.
        assert_eq!(sfp.params.name(), "stable-fp");
        assert_eq!(sf.params.name(), "stable-f");
        assert_eq!(tv.params.name(), "time-varying");
    }

    #[test]
    fn report_predict_equals_model_evaluate() {
        let tm = exact_series(0.3, &[0.7, 0.3], 4);
        let report = StableFpParams::fit(&tm, FitOptions::default()).unwrap();
        let a = report.predict(300.0).unwrap();
        let b = report.params.evaluate(300.0).unwrap();
        assert_eq!(a, b);
    }
}
