//! Synthetic traffic-matrix generation (paper Section 5.5).
//!
//! The paper's recipe for generating synthetic TMs with the stable-fP
//! model:
//!
//! 1. choose `f` (0.2–0.3 is the empirically reasonable range),
//! 2. draw preference values `{P_i}` from a long-tailed distribution
//!    (lognormal recommended; the paper's MLE was `μ ≈ −4.3, σ ≈ 1.7`),
//! 3. generate activity series `{A_i(t)}` from a model with daily
//!    variation (cyclostationary),
//! 4. assemble `X_ij(t)` with Eq. 5.
//!
//! The generator exposes the paper's "what-if" knobs directly: traffic mix
//! via `f`, hot spots / flash crowds via the preference distribution, user
//! population via the activity bases.

use crate::model::{stable_fp_series, StableFpParams};
use crate::tm::TmSeries;
use crate::{IcError, Result};
use ic_linalg::Matrix;
use ic_stats::dist::Sample;
use ic_stats::rng::derive_seed;
use ic_stats::{seeded_rng, DiurnalModel, DiurnalProfile, LogNormal, Pareto};

/// Configuration for synthetic stable-fP TM generation.
///
/// Marked `#[non_exhaustive]`: start from [`SynthConfig::geant_like`] and
/// adjust via the `with_*` setters (or direct field mutation) so future
/// knobs are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SynthConfig {
    /// Number of access points.
    pub nodes: usize,
    /// Number of time bins to generate.
    pub bins: usize,
    /// Seconds per bin (metadata carried into the output series).
    pub bin_seconds: f64,
    /// Forward ratio (paper recommendation: 0.2–0.3).
    pub f: f64,
    /// Lognormal location parameter for preference sampling.
    pub preference_mu: f64,
    /// Lognormal scale parameter for preference sampling.
    pub preference_sigma: f64,
    /// Pareto scale (minimum) for node mean activity levels, bytes/bin.
    pub activity_min: f64,
    /// Pareto shape for node mean activity levels (smaller = more skewed
    /// node sizes).
    pub activity_alpha: f64,
    /// Diurnal profile shared by all nodes.
    pub profile: DiurnalProfile,
    /// Reference noise coefficient of variation (see
    /// [`DiurnalModel::with_aggregation_noise`]).
    pub noise_cv: f64,
    /// RNG seed; equal seeds give bit-identical output.
    pub seed: u64,
}

impl SynthConfig {
    /// A Géant-sized default: 22 nodes, one week of 5-minute bins.
    pub fn geant_like(seed: u64) -> Self {
        SynthConfig {
            nodes: 22,
            bins: 2016,
            bin_seconds: 300.0,
            f: 0.25,
            preference_mu: -4.3,
            preference_sigma: 1.7,
            activity_min: 5.0e6,
            activity_alpha: 1.2,
            profile: DiurnalProfile::european_5min(),
            noise_cv: 0.25,
            seed,
        }
    }

    /// Sets the number of access points.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the number of time bins.
    pub fn with_bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Sets the seconds-per-bin metadata.
    pub fn with_bin_seconds(mut self, bin_seconds: f64) -> Self {
        self.bin_seconds = bin_seconds;
        self
    }

    /// Sets the forward ratio.
    pub fn with_f(mut self, f: f64) -> Self {
        self.f = f;
        self
    }

    /// Sets the lognormal location parameter for preference sampling.
    pub fn with_preference_mu(mut self, mu: f64) -> Self {
        self.preference_mu = mu;
        self
    }

    /// Sets the lognormal scale parameter for preference sampling.
    pub fn with_preference_sigma(mut self, sigma: f64) -> Self {
        self.preference_sigma = sigma;
        self
    }

    /// Sets the Pareto scale (minimum) for node mean activity levels.
    pub fn with_activity_min(mut self, min: f64) -> Self {
        self.activity_min = min;
        self
    }

    /// Sets the Pareto shape for node mean activity levels.
    pub fn with_activity_alpha(mut self, alpha: f64) -> Self {
        self.activity_alpha = alpha;
        self
    }

    /// Sets the diurnal profile shared by all nodes.
    pub fn with_profile(mut self, profile: DiurnalProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the reference noise coefficient of variation.
    pub fn with_noise_cv(mut self, noise_cv: f64) -> Self {
        self.noise_cv = noise_cv;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.nodes == 0 || self.bins == 0 {
            return Err(IcError::BadData("synth requires nodes > 0 and bins > 0"));
        }
        if !(0.0..=1.0).contains(&self.f) {
            return Err(IcError::InvalidParameter {
                name: "f",
                constraint: "must lie in [0, 1]",
            });
        }
        Ok(())
    }
}

/// Output of the synthetic generator: the series plus the ground-truth
/// parameters that produced it.
#[derive(Debug, Clone)]
pub struct SynthOutput {
    /// The generated traffic-matrix series.
    pub series: TmSeries,
    /// Ground-truth parameters (useful for validating estimators).
    pub params: StableFpParams,
}

/// The deterministic sampling process behind a [`SynthConfig`]: the drawn
/// preference vector plus each node's diurnal model and private RNG.
///
/// This is the shared preamble of the batch generator
/// ([`generate_synthetic`]) and the streaming generator
/// (`ic-stream::SyntheticStream`). Both consume each node's RNG exactly
/// once per bin, so a stream built from this process emits bins
/// bit-identical to the batch series of the same config — keeping the
/// seed-derivation labels and sampling order in one place is what makes
/// that equivalence robust to future changes.
#[derive(Debug, Clone)]
pub struct SynthProcess {
    /// Ground-truth preference vector (sums to 1).
    pub preference: Vec<f64>,
    /// Per-node diurnal activity models.
    pub models: Vec<DiurnalModel>,
    /// Per-node RNGs (advance one sample per bin, in node order).
    pub rngs: Vec<ic_stats::rng::StdRng>,
}

/// Draws the Section 5.5 process (steps 2–3 of the recipe) for a config:
/// lognormal preference, Pareto base levels, per-node diurnal models with
/// aggregation-dependent noise, and the per-node derived-seed RNGs.
pub fn synth_process(config: &SynthConfig) -> Result<SynthProcess> {
    if config.nodes == 0 {
        return Err(IcError::BadData("synth requires nodes > 0"));
    }
    if !(0.0..=1.0).contains(&config.f) {
        return Err(IcError::InvalidParameter {
            name: "f",
            constraint: "must lie in [0, 1]",
        });
    }
    let n = config.nodes;

    // Step 2: long-tailed preference values.
    let mut rng_p = seeded_rng(derive_seed(config.seed, 1));
    let lognormal = LogNormal::new(config.preference_mu, config.preference_sigma)?;
    let raw: Vec<f64> = lognormal.sample_n(&mut rng_p, n);
    let mass: f64 = raw.iter().sum();
    let preference: Vec<f64> = raw.iter().map(|&v| v / mass).collect();

    // Step 3: heavy-tailed base levels (a few big PoPs, many small ones)
    // with diurnal structure; higher aggregation means less noise.
    let mut rng_base = seeded_rng(derive_seed(config.seed, 2));
    let pareto = Pareto::new(config.activity_min, config.activity_alpha)?;
    let bases: Vec<f64> = pareto.sample_n(&mut rng_base, n);
    let base_ref = bases.iter().copied().fold(f64::MIN, f64::max);
    let mut models = Vec::with_capacity(n);
    let mut rngs = Vec::with_capacity(n);
    for (i, &base) in bases.iter().enumerate() {
        models.push(DiurnalModel::with_aggregation_noise(
            config.profile,
            base,
            config.noise_cv,
            base_ref,
        )?);
        rngs.push(seeded_rng(derive_seed(config.seed, 1000 + i as u64)));
    }
    Ok(SynthProcess {
        preference,
        models,
        rngs,
    })
}

/// Generates a synthetic TM series per the Section 5.5 recipe.
///
/// # Examples
///
/// ```
/// use ic_core::{generate_synthetic, SynthConfig};
///
/// let mut cfg = SynthConfig::geant_like(7);
/// cfg.nodes = 5;
/// cfg.bins = 48;
/// let out = generate_synthetic(&cfg).unwrap();
/// assert_eq!(out.series.nodes(), 5);
/// assert_eq!(out.series.bins(), 48);
/// assert!(out.series.is_physical());
/// ```
pub fn generate_synthetic(config: &SynthConfig) -> Result<SynthOutput> {
    config.validate()?;
    let n = config.nodes;
    let SynthProcess {
        preference,
        models,
        mut rngs,
    } = synth_process(config)?;

    let mut activity = Matrix::zeros(n, config.bins);
    for (i, (model, rng)) in models.iter().zip(rngs.iter_mut()).enumerate() {
        for t in 0..config.bins {
            activity[(i, t)] = model.sample_at(t, rng);
        }
    }

    // Step 4: assemble with Eq. 5.
    let params = StableFpParams {
        f: config.f,
        preference,
        activity,
    };
    let series = stable_fp_series(&params, config.bin_seconds)?;
    Ok(SynthOutput { series, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{fit_stable_fp, FitOptions};

    fn small_cfg(seed: u64) -> SynthConfig {
        let mut cfg = SynthConfig::geant_like(seed);
        cfg.nodes = 6;
        cfg.bins = 96;
        cfg
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_synthetic(&small_cfg(9)).unwrap();
        let b = generate_synthetic(&small_cfg(9)).unwrap();
        assert_eq!(a.series, b.series);
        let c = generate_synthetic(&small_cfg(10)).unwrap();
        assert_ne!(a.series, c.series);
    }

    #[test]
    fn output_is_physical_and_sized() {
        let out = generate_synthetic(&small_cfg(3)).unwrap();
        assert!(out.series.is_physical());
        assert_eq!(out.series.nodes(), 6);
        assert_eq!(out.series.bins(), 96);
        assert_eq!(out.params.preference.len(), 6);
        assert!((out.params.preference.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_traffic_equals_total_activity() {
        let out = generate_synthetic(&small_cfg(4)).unwrap();
        for t in (0..96).step_by(17) {
            let a_total: f64 = (0..6).map(|i| out.params.activity[(i, t)]).sum();
            assert!((out.series.total(t) - a_total).abs() / a_total < 1e-9);
        }
    }

    #[test]
    fn fitting_recovers_generator_parameters() {
        // End-to-end: generate → fit → compare. This closes the loop
        // between Sections 5.5 and 5.1.
        let out = generate_synthetic(&small_cfg(5)).unwrap();
        let fit = fit_stable_fp(&out.series, FitOptions::default()).unwrap();
        assert!(fit.final_objective() < 1e-3, "{}", fit.final_objective());
        assert!((fit.params.f - 0.25).abs() < 0.03, "f {}", fit.params.f);
        for (got, want) in fit
            .params
            .preference
            .iter()
            .zip(out.params.preference.iter())
        {
            assert!((got - want).abs() < 0.03, "{got} vs {want}");
        }
    }

    #[test]
    fn validates_config() {
        let mut cfg = small_cfg(1);
        cfg.nodes = 0;
        assert!(generate_synthetic(&cfg).is_err());
        let mut cfg = small_cfg(1);
        cfg.f = 1.5;
        assert!(generate_synthetic(&cfg).is_err());
        let mut cfg = small_cfg(1);
        cfg.preference_sigma = -1.0;
        assert!(generate_synthetic(&cfg).is_err());
    }

    #[test]
    fn diurnal_structure_present() {
        let mut cfg = small_cfg(6);
        cfg.bins = 288 * 2; // two days at 5-minute bins
        cfg.noise_cv = 0.05;
        let out = generate_synthetic(&cfg).unwrap();
        // Total traffic at the daily peak exceeds the trough.
        let peak_bin = (0.58 * 288.0) as usize;
        let trough_bin = (peak_bin + 144) % 288;
        let peak = out.series.total(peak_bin);
        let trough = out.series.total(trough_bin);
        assert!(peak > 1.5 * trough, "peak {peak} trough {trough}");
    }

    #[test]
    fn preference_tail_is_long() {
        // With sigma = 1.7 the largest preference should dwarf the median —
        // the "few quite large" pattern of Figure 6.
        let mut cfg = SynthConfig::geant_like(11);
        cfg.nodes = 22;
        cfg.bins = 4;
        let out = generate_synthetic(&cfg).unwrap();
        let mut p = out.params.preference.clone();
        p.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = p[p.len() / 2];
        let max = p[p.len() - 1];
        assert!(max > 4.0 * median, "max {max} median {median}");
    }
}
