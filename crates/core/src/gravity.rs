//! The gravity model baseline.
//!
//! The gravity model assumes a packet's ingress `I` and egress `E` are
//! independent: `P[E = j | I = i] = P[E = j]`, predicting
//! `X_ij ≈ X_{i*} · X_{*j} / X_{**}` (paper Section 3). It is the baseline
//! every result in the paper is measured against, both as a data-fitting
//! model (Figure 3) and as a TM-estimation prior (Figures 11–13).

use crate::tm::TmSeries;
use crate::{IcError, Result};
use ic_linalg::Matrix;

/// Gravity prediction from explicit marginals: `X̂_ij = ingress_i *
/// egress_j / total`.
///
/// `ingress` and `egress` must have equal lengths and non-negative entries;
/// `total` is taken from the ingress sum (the two marginal sums agree for
/// any physical traffic matrix, and the ingress sum is the convention used
/// by the estimation pipeline).
///
/// # Examples
///
/// ```
/// use ic_core::gravity_from_marginals;
///
/// let x = gravity_from_marginals(&[6.0, 3.0], &[3.0, 6.0]).unwrap();
/// assert!((x[(0, 0)] - 2.0).abs() < 1e-12); // 6*3/9
/// assert!((x[(0, 1)] - 4.0).abs() < 1e-12); // 6*6/9
/// ```
pub fn gravity_from_marginals(ingress: &[f64], egress: &[f64]) -> Result<Matrix> {
    let n = ingress.len();
    if egress.len() != n {
        return Err(IcError::DimensionMismatch {
            context: "gravity_from_marginals",
            expected: n,
            actual: egress.len(),
        });
    }
    if n == 0 {
        return Err(IcError::BadData("gravity of empty marginals"));
    }
    if ingress
        .iter()
        .chain(egress.iter())
        .any(|&v| v < 0.0 || !v.is_finite())
    {
        return Err(IcError::BadData(
            "gravity marginals must be finite and non-negative",
        ));
    }
    let total: f64 = ingress.iter().sum();
    if total <= 0.0 {
        // A silent all-zero matrix is the right answer for an idle network.
        return Ok(Matrix::zeros(n, n));
    }
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = ingress[i] * egress[j] / total;
        }
    }
    Ok(out)
}

/// Gravity prediction for every bin of a series, from the series' own
/// marginals. Returns a new [`TmSeries`] of predictions.
///
/// This is the "fit" usage of the gravity model (Figure 3): the model's
/// `2nt − 1` degrees of freedom are the observed marginals themselves, so
/// the prediction requires no optimization.
pub fn gravity_predict(tm: &TmSeries) -> Result<TmSeries> {
    let n = tm.nodes();
    let mut out = TmSeries::zeros(n, tm.bins(), tm.bin_seconds())?;
    for t in 0..tm.bins() {
        let pred = gravity_from_marginals(&tm.ingress(t), &tm.egress(t))?;
        for i in 0..n {
            for j in 0..n {
                out.set(i, j, t, pred[(i, j)])?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_preservation() {
        // Gravity predictions reproduce the input marginals exactly.
        let ingress = [10.0, 30.0, 60.0];
        let egress = [50.0, 25.0, 25.0];
        let x = gravity_from_marginals(&ingress, &egress).unwrap();
        let rows = x.row_sums();
        let cols = x.col_sums();
        for i in 0..3 {
            assert!((rows[i] - ingress[i]).abs() < 1e-9);
            assert!((cols[i] - egress[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_one_structure() {
        let x = gravity_from_marginals(&[2.0, 4.0], &[3.0, 3.0]).unwrap();
        // Rows are proportional: X is rank one.
        let ratio0 = x[(0, 0)] / x[(1, 0)];
        let ratio1 = x[(0, 1)] / x[(1, 1)];
        assert!((ratio0 - ratio1).abs() < 1e-12);
    }

    #[test]
    fn validates_input() {
        assert!(gravity_from_marginals(&[1.0], &[1.0, 2.0]).is_err());
        assert!(gravity_from_marginals(&[], &[]).is_err());
        assert!(gravity_from_marginals(&[-1.0], &[1.0]).is_err());
        assert!(gravity_from_marginals(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn zero_traffic_gives_zero_matrix() {
        let x = gravity_from_marginals(&[0.0, 0.0], &[0.0, 0.0]).unwrap();
        assert!(x.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn series_prediction_matches_per_bin() {
        let mut tm = TmSeries::zeros(2, 2, 300.0).unwrap();
        tm.set(0, 1, 0, 8.0).unwrap();
        tm.set(1, 0, 0, 2.0).unwrap();
        tm.set(0, 1, 1, 4.0).unwrap();
        tm.set(1, 1, 1, 4.0).unwrap();
        let pred = gravity_predict(&tm).unwrap();
        assert_eq!(pred.bins(), 2);
        // Bin 0: ingress (8,2), egress (2,8), total 10.
        assert!((pred.get(0, 0, 0).unwrap() - 1.6).abs() < 1e-12);
        assert!((pred.get(0, 1, 0).unwrap() - 6.4).abs() < 1e-12);
        // Marginals preserved per bin.
        for t in 0..2 {
            let gi = pred.ingress(t);
            let oi = tm.ingress(t);
            for (a, b) in gi.iter().zip(oi.iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gravity_exact_on_rank_one_truth() {
        // If the truth itself satisfies packet independence, gravity
        // reconstructs it perfectly.
        let ingress = [5.0, 15.0];
        let egress = [10.0, 10.0];
        let truth = gravity_from_marginals(&ingress, &egress).unwrap();
        let mut tm = TmSeries::zeros(2, 1, 300.0).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                tm.set(i, j, 0, truth[(i, j)]).unwrap();
            }
        }
        let pred = gravity_predict(&tm).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (pred.get(i, j, 0).unwrap() - truth[(i, j)]).abs() < 1e-9,
                    "({i},{j})"
                );
            }
        }
    }
}
