//! Accuracy metrics: the relative ℓ² temporal error (paper Eq. 6).
//!
//! ```text
//! RelL2T(t) = ‖X(t) − X̂(t)‖_F / ‖X(t)‖_F
//! ```
//!
//! "The metric we use for measuring accuracy of model prediction here and
//! throughout the paper" — every figure from 3 through 13 is expressed in
//! it, usually as the percentage improvement of the IC model over gravity.

use crate::tm::TmSeries;
use crate::{IcError, Result};

/// Relative ℓ² temporal error at bin `t` between an observed series and a
/// prediction (Eq. 6).
///
/// Returns 0 when both the observation and prediction are all-zero at `t`,
/// and an error when shapes differ.
pub fn rel_l2_temporal(observed: &TmSeries, predicted: &TmSeries, bin: usize) -> Result<f64> {
    check_compatible(observed, predicted)?;
    if bin >= observed.bins() {
        return Err(IcError::DimensionMismatch {
            context: "rel_l2_temporal bin",
            expected: observed.bins(),
            actual: bin,
        });
    }
    let n2 = observed.nodes() * observed.nodes();
    let mut num = 0.0;
    let mut den = 0.0;
    for r in 0..n2 {
        let o = observed.as_matrix()[(r, bin)];
        let p = predicted.as_matrix()[(r, bin)];
        num += (o - p) * (o - p);
        den += o * o;
    }
    if den == 0.0 {
        return Ok(if num == 0.0 { 0.0 } else { f64::INFINITY });
    }
    Ok((num / den).sqrt())
}

/// The full error time series `RelL2T(t), t = 0..bins`.
pub fn rel_l2_series(observed: &TmSeries, predicted: &TmSeries) -> Result<Vec<f64>> {
    check_compatible(observed, predicted)?;
    (0..observed.bins())
        .map(|t| rel_l2_temporal(observed, predicted, t))
        .collect()
}

/// Mean of `RelL2T(t)` over all bins — the objective of the Section 5.1
/// fitting program (up to the constant factor `T`).
pub fn mean_rel_l2(observed: &TmSeries, predicted: &TmSeries) -> Result<f64> {
    let series = rel_l2_series(observed, predicted)?;
    Ok(series.iter().sum::<f64>() / series.len() as f64)
}

/// Percentage improvement of `candidate` over `baseline` in a
/// smaller-is-better metric: `100 · (baseline − candidate) / baseline`.
///
/// This is how Figures 3 and 11–13 report the IC model against gravity.
/// Returns 0 when the baseline is 0 (no room to improve).
pub fn improvement_percent(baseline: f64, candidate: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        100.0 * (baseline - candidate) / baseline
    }
}

/// Per-bin improvement series of a candidate model over a baseline model,
/// both measured against the same observed series.
pub fn improvement_series(
    observed: &TmSeries,
    baseline: &TmSeries,
    candidate: &TmSeries,
) -> Result<Vec<f64>> {
    let base = rel_l2_series(observed, baseline)?;
    let cand = rel_l2_series(observed, candidate)?;
    Ok(base
        .iter()
        .zip(cand.iter())
        .map(|(&b, &c)| improvement_percent(b, c))
        .collect())
}

fn check_compatible(a: &TmSeries, b: &TmSeries) -> Result<()> {
    if a.nodes() != b.nodes() {
        return Err(IcError::DimensionMismatch {
            context: "series node counts",
            expected: a.nodes(),
            actual: b.nodes(),
        });
    }
    if a.bins() != b.bins() {
        return Err(IcError::DimensionMismatch {
            context: "series bin counts",
            expected: a.bins(),
            actual: b.bins(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[&[f64]]) -> TmSeries {
        // Build a 2-node series from per-bin [x00, x01, x10, x11] rows.
        let bins = values.len();
        let mut tm = TmSeries::zeros(2, bins, 300.0).unwrap();
        for (t, row) in values.iter().enumerate() {
            tm.set(0, 0, t, row[0]).unwrap();
            tm.set(0, 1, t, row[1]).unwrap();
            tm.set(1, 0, t, row[2]).unwrap();
            tm.set(1, 1, t, row[3]).unwrap();
        }
        tm
    }

    #[test]
    fn zero_error_for_identical_series() {
        let tm = series(&[&[1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(rel_l2_temporal(&tm, &tm, 0).unwrap(), 0.0);
        assert_eq!(mean_rel_l2(&tm, &tm).unwrap(), 0.0);
    }

    #[test]
    fn known_error_value() {
        let obs = series(&[&[3.0, 0.0, 0.0, 4.0]]); // norm 5
        let pred = series(&[&[0.0, 0.0, 0.0, 4.0]]); // error norm 3
        let e = rel_l2_temporal(&obs, &pred, 0).unwrap();
        assert!((e - 0.6).abs() < 1e-12);
    }

    #[test]
    fn series_and_mean() {
        let obs = series(&[&[3.0, 0.0, 0.0, 4.0], &[5.0, 0.0, 0.0, 0.0]]);
        let pred = series(&[&[0.0, 0.0, 0.0, 4.0], &[5.0, 0.0, 0.0, 0.0]]);
        let s = rel_l2_series(&obs, &pred).unwrap();
        assert_eq!(s.len(), 2);
        assert!((s[0] - 0.6).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
        assert!((mean_rel_l2(&obs, &pred).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_observation_edge_cases() {
        let obs = series(&[&[0.0, 0.0, 0.0, 0.0]]);
        let zero_pred = series(&[&[0.0, 0.0, 0.0, 0.0]]);
        let nonzero_pred = series(&[&[1.0, 0.0, 0.0, 0.0]]);
        assert_eq!(rel_l2_temporal(&obs, &zero_pred, 0).unwrap(), 0.0);
        assert!(rel_l2_temporal(&obs, &nonzero_pred, 0)
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn shape_checks() {
        let a = series(&[&[1.0, 2.0, 3.0, 4.0]]);
        let b = TmSeries::zeros(3, 1, 300.0).unwrap();
        assert!(rel_l2_temporal(&a, &b, 0).is_err());
        let c = series(&[&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]]);
        assert!(rel_l2_series(&a, &c).is_err());
        assert!(rel_l2_temporal(&a, &a, 5).is_err());
    }

    #[test]
    fn improvement_percent_signs() {
        assert!((improvement_percent(0.4, 0.3) - 25.0).abs() < 1e-12);
        assert!((improvement_percent(0.4, 0.5) + 25.0).abs() < 1e-12);
        assert_eq!(improvement_percent(0.0, 0.3), 0.0);
        assert_eq!(improvement_percent(0.4, 0.4), 0.0);
    }

    #[test]
    fn improvement_series_compares_models() {
        let obs = series(&[&[3.0, 0.0, 0.0, 4.0]]);
        let bad = series(&[&[0.0, 0.0, 0.0, 4.0]]); // rel error 0.6
        let good = series(&[&[3.0, 0.0, 0.0, 0.0]]); // rel error 0.8
        let imp = improvement_series(&obs, &bad, &good).unwrap();
        // good is actually worse: negative improvement.
        assert!(imp[0] < 0.0);
        let imp2 = improvement_series(&obs, &good, &bad).unwrap();
        assert!(imp2[0] > 0.0);
    }
}
