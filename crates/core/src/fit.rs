//! Fitting IC model parameters to traffic-matrix data (paper Section 5.1).
//!
//! The paper estimates `f`, `{P_i}`, `{A_i(t)}` with a nonlinear program:
//!
//! ```text
//! minimize   Σ_t RelL2T(t)
//! where      X̂_ij(t) = f·A_i(t)·P_j + (1 − f)·A_j(t)·P_i
//! subject to A_i(t) ≥ 0,  P_i ≥ 0,  Σ_i P_i = 1
//! ```
//!
//! solved numerically with the Matlab Optimization Toolbox. This module
//! replaces the toolbox with **block-coordinate descent** (BCD), exploiting
//! the bilinear structure: with two of the three blocks fixed, each of
//! `A(t)`, `P`, `f` solves a *convex least-squares* problem in closed form.
//!
//! * **Activity step.** For fixed `(f, P)` the per-bin design matrix has the
//!   Gram form `(f² + (1−f)²)·‖P‖²·I + 2f(1−f)·PPᵀ` — identical for every
//!   bin — so one Cholesky factorization serves the whole week. Bins whose
//!   unconstrained solution goes negative are re-solved with NNLS.
//! * **Preference step.** The per-bin Gram has the same two-term form with
//!   `A(t)` in place of `P`; it is accumulated over bins (with the per-bin
//!   objective weights) and solved once with NNLS, then renormalized to the
//!   simplex — the model is invariant under `(P, A) → (cP, A/c)`, so the
//!   normalization is absorbed by rescaling `A`.
//! * **f step.** `X̂` is affine in `f`; the scalar minimizer is closed-form
//!   and clamped to `[0, 1]`.
//!
//! The paper's objective `Σ_t RelL2(t)` is a sum of *norms* (non-smooth at
//! zero residual). [`Objective::WeightedSse`] optimizes the smooth surrogate
//! `Σ_t ‖X(t) − X̂(t)‖² / ‖X(t)‖²` (each bin weighted by its squared norm —
//! the Gauss–Newton standard, and exactly the Gaussian MLE the paper
//! appeals to). [`Objective::SumRelL2`] targets the paper's objective
//! literally via iteratively-reweighted least squares. The two give nearly
//! identical parameters on realistic data; both are provided so the choice
//! is explicit and testable.

use crate::error::mean_rel_l2;
use crate::model::{
    stable_f_series, stable_fp_series, time_varying_series, StableFParams, StableFpParams,
    TimeVaryingParams,
};
use crate::tm::TmSeries;
use crate::{IcError, Result};
use ic_linalg::nnls::nnls_from_normal_equations;
use ic_linalg::{
    CholeskyWorkspace, Matrix, NnlsOptions, PcgWorkspace, SolveStats, SolverKind, SolverPolicy,
};

/// Which scalarization of the Section 5.1 objective to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Smooth surrogate `Σ_t ‖X(t) − X̂(t)‖²/‖X(t)‖²` (default; the Gaussian
    /// maximum-likelihood reading of the paper's program).
    #[default]
    WeightedSse,
    /// The paper's literal `Σ_t ‖X(t) − X̂(t)‖/‖X(t)‖` via IRLS.
    SumRelL2,
}

/// A warm-start initial point for the BCD fits, typically carried over
/// from the previous window's fit in streaming/online settings.
///
/// The paper's stability findings (Section 5.2–5.3) are what make this
/// work: `f` and `{P_i}` barely move between adjacent windows, so starting
/// the descent at the previous optimum lands the first sweep next to the
/// new optimum. Activities need no carrying — every fit's first activity
/// step recomputes them in closed form from `(f, P)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Initial forward ratio (clamped to `[0, 1]` at use).
    pub f: f64,
    /// Initial preference vector (renormalized to the simplex at use;
    /// length must match the fitted series' node count).
    pub preference: Vec<f64>,
}

impl WarmStart {
    /// Extracts the warm-start point from a completed stable-fP fit.
    pub fn from_fit(previous: &FitReport<StableFpParams>) -> Self {
        WarmStart {
            f: previous.params.f,
            preference: previous.params.preference.clone(),
        }
    }
}

/// Options controlling the block-coordinate descent.
///
/// Marked `#[non_exhaustive]`: construct via [`FitOptions::default`] and
/// the `with_*` setters so future knobs are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FitOptions {
    /// Maximum BCD sweeps (default 40).
    pub max_sweeps: usize,
    /// Relative objective-improvement threshold for convergence
    /// (default 1e-6).
    pub tolerance: f64,
    /// Initial forward ratio (default 0.3, inside the paper's observed
    /// 0.2–0.3 range). Ignored when a warm start is supplied.
    pub initial_f: f64,
    /// Objective scalarization.
    pub objective: Objective,
    /// When true, `f` is held fixed at the initial forward ratio instead
    /// of being optimized (used by estimation scenarios where `f` was
    /// measured).
    pub fix_f: bool,
    /// Optional warm-start point replacing the Eq. 11–12 cold
    /// initialization (default `None`).
    pub initial: Option<WarmStart>,
    /// Normal-equations solver for the activity/preference subproblems
    /// (default [`SolverPolicy::Auto`]: dense Cholesky below the row
    /// threshold, matrix-free PCG above).
    pub solver: SolverPolicy,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            max_sweeps: 40,
            tolerance: 1e-6,
            initial_f: 0.3,
            objective: Objective::WeightedSse,
            fix_f: false,
            initial: None,
            solver: SolverPolicy::Auto,
        }
    }
}

impl FitOptions {
    /// Sets the maximum number of BCD sweeps.
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Sets the relative objective-improvement convergence threshold.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the initial forward ratio.
    pub fn with_initial_f(mut self, initial_f: f64) -> Self {
        self.initial_f = initial_f;
        self
    }

    /// Sets the objective scalarization.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Holds `f` fixed at `initial_f` (or releases it) during the fit.
    pub fn with_fix_f(mut self, fix_f: bool) -> Self {
        self.fix_f = fix_f;
        self
    }

    /// Warm-starts the descent from a previous stable-fP fit: the previous
    /// optimum's `(f, P)` replace the Eq. 11–12 cold initialization. All
    /// three family fits honor the warm start.
    pub fn with_initial(mut self, previous: &FitReport<StableFpParams>) -> Self {
        self.initial = Some(WarmStart::from_fit(previous));
        self
    }

    /// Warm-starts the descent from an explicit `(f, P)` point (e.g. a
    /// forecast of the next window's parameters).
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.initial = Some(warm);
        self
    }

    /// Selects the normal-equations solver for the subproblem solves.
    pub fn with_solver(mut self, solver: SolverPolicy) -> Self {
        self.solver = solver;
        self
    }
}

/// Result of fitting a family member `M`: the fitted parameterization plus
/// the optimization trace. The uniform report type behind
/// [`crate::ic_model::Fit`] — generic code can fit any variant and consume
/// the result identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport<M> {
    /// Fitted parameters.
    pub params: M,
    /// Mean `RelL2T` after each sweep (monotone non-increasing up to
    /// re-weighting effects).
    pub objective_history: Vec<f64>,
    /// Whether the tolerance was reached before the sweep budget.
    pub converged: bool,
    /// Solver counters accumulated over the subproblem solves: how many
    /// went through dense Cholesky vs PCG, total PCG iterations, and how
    /// often the unconstrained solve fell back to NNLS.
    pub solve_stats: SolveStats,
}

impl<M: crate::ic_model::IcModel> FitReport<M> {
    /// Evaluates the fitted model as a prediction series.
    pub fn predict(&self, bin_seconds: f64) -> Result<TmSeries> {
        self.params.evaluate(bin_seconds)
    }
}

impl<M> FitReport<M> {
    /// Final objective value (mean RelL2 over bins).
    pub fn final_objective(&self) -> f64 {
        self.objective_history.last().copied().unwrap_or(f64::NAN)
    }
}

/// Result of a stable-fP fit (Eq. 5 parameters).
#[deprecated(note = "use `FitReport<StableFpParams>`")]
pub type FitResult = FitReport<StableFpParams>;

/// Result of a stable-f fit (Eq. 4 parameters).
#[deprecated(note = "use `FitReport<StableFParams>`")]
pub type StableFFitResult = FitReport<StableFParams>;

/// Result of a time-varying fit (Eq. 3 parameters).
#[deprecated(note = "use `FitReport<TimeVaryingParams>`")]
pub type TimeVaryingFitResult = FitReport<TimeVaryingParams>;

/// Builds the two-term Gram matrix `(c1·s2)·I + c2·v·vᵀ` of the
/// activity/preference subproblems into a reusable buffer, with
/// `c1 = f² + (1−f)²`, `c2 = 2f(1−f)`, `s2 = ‖v‖²`.
fn two_term_gram_into(f: f64, v: &[f64], g: &mut Matrix) {
    let n = v.len();
    if g.shape() != (n, n) {
        *g = Matrix::zeros(n, n);
    }
    let c1 = f * f + (1.0 - f) * (1.0 - f);
    let c2 = 2.0 * f * (1.0 - f);
    let s2: f64 = v.iter().map(|&x| x * x).sum();
    for k in 0..n {
        for l in 0..n {
            g[(k, l)] = c2 * v[k] * v[l];
        }
        g[(k, k)] += c1 * s2;
    }
}

/// Scale-aware ridge guarding bins where `v` is (nearly) zero.
fn two_term_ridge(f: f64, v: &[f64]) -> f64 {
    let c1 = f * f + (1.0 - f) * (1.0 - f);
    let s2: f64 = v.iter().map(|&x| x * x).sum();
    (c1 * s2).max(f64::MIN_POSITIVE) * 1e-12
}

/// Shared solver for the activity/preference subproblems, holding its Gram
/// matrix and Cholesky factor in reusable buffers so refactoring per sweep
/// (stable-fP) or per bin (stable-f, time-varying) allocates nothing once
/// warm.
///
/// Under [`SolverPolicy::Pcg`] (or `Auto` above the row threshold) the
/// `n×n` Gram is never materialized for the solve: the two-term operator
/// `(c1·s2)·I + c2·v·vᵀ` is applied matrix-free in `O(n)` per iteration,
/// and — having exactly two distinct eigenvalues — CG converges in a
/// couple of iterations. The dense Gram is built lazily only when the
/// NNLS fallback needs it.
struct TwoTermGram {
    g: Matrix,
    g_valid: bool,
    chol: CholeskyWorkspace,
    policy: SolverPolicy,
    kind: SolverKind,
    pcg: PcgWorkspace,
    f: f64,
    v: Vec<f64>,
    c1s2: f64,
    c2: f64,
    ridge: f64,
    diag: Vec<f64>,
    stats: SolveStats,
}

impl TwoTermGram {
    fn new(policy: SolverPolicy) -> Self {
        TwoTermGram {
            g: Matrix::zeros(0, 0),
            g_valid: false,
            chol: CholeskyWorkspace::new(),
            policy,
            kind: SolverKind::Dense,
            pcg: PcgWorkspace::new(),
            f: 0.0,
            v: Vec::new(),
            c1s2: 0.0,
            c2: 0.0,
            ridge: 0.0,
            diag: Vec::new(),
            stats: SolveStats::default(),
        }
    }

    fn factor(&mut self, f: f64, v: &[f64]) -> Result<()> {
        let c1 = f * f + (1.0 - f) * (1.0 - f);
        let s2: f64 = v.iter().map(|&x| x * x).sum();
        self.f = f;
        self.v.resize(v.len(), 0.0);
        self.v.copy_from_slice(v);
        self.c1s2 = c1 * s2;
        self.c2 = 2.0 * f * (1.0 - f);
        self.ridge = two_term_ridge(f, v);
        self.g_valid = false;
        self.kind = self.policy.resolve(v.len());
        match self.kind {
            SolverKind::Dense => {
                two_term_gram_into(f, v, &mut self.g);
                self.g_valid = true;
                self.chol
                    .factor_regularized(&self.g, self.ridge)
                    .map_err(IcError::from)
            }
            SolverKind::Pcg => {
                self.diag.resize(v.len(), 0.0);
                for (d, &vk) in self.diag.iter_mut().zip(v.iter()) {
                    *d = self.c1s2 + self.c2 * vk * vk;
                }
                Ok(())
            }
        }
    }

    fn solve_into(&mut self, rhs: &[f64], out: &mut [f64]) -> Result<()> {
        match self.kind {
            SolverKind::Dense => {
                self.chol.solve_into(rhs, out).map_err(IcError::from)?;
                self.stats.dense_solves += 1;
            }
            SolverKind::Pcg => {
                let (c1s2, c2) = (self.c1s2, self.c2);
                let v = &self.v;
                let solve = self
                    .pcg
                    .solve(&self.diag, self.ridge, rhs, out, |x, y| {
                        let vx: f64 = v.iter().zip(x.iter()).map(|(&a, &b)| a * b).sum();
                        for ((yk, &xk), &vk) in y.iter_mut().zip(x.iter()).zip(v.iter()) {
                            *yk = c1s2 * xk + c2 * vk * vx;
                        }
                        Ok(())
                    })
                    .map_err(IcError::from)?;
                self.stats.pcg_solves += 1;
                self.stats.pcg_iterations += solve.iterations as u64;
                if !solve.converged {
                    self.stats.pcg_stalls += 1;
                }
            }
        }
        Ok(())
    }

    /// The materialized Gram matrix (for the NNLS fallback path), built
    /// lazily under the matrix-free policy.
    fn gram(&mut self) -> &Matrix {
        if !self.g_valid {
            two_term_gram_into(self.f, &self.v, &mut self.g);
            self.g_valid = true;
        }
        &self.g
    }

    fn note_fallback(&mut self) {
        self.stats.fallbacks += 1;
    }

    fn stats(&self) -> SolveStats {
        self.stats
    }
}

/// Right-hand side of the activity subproblem at one bin:
/// `rhs_k = f·Σ_j X_kj·P_j + (1−f)·Σ_i X_ik·P_i`, into a reused buffer.
fn activity_rhs_into(x: &TmSeries, bin: usize, f: f64, p: &[f64], rhs: &mut [f64]) {
    let n = x.nodes();
    let m = x.as_matrix();
    for (k, slot) in rhs.iter_mut().enumerate() {
        let mut fwd = 0.0;
        let mut rev = 0.0;
        for idx in 0..n {
            fwd += m[(k * n + idx, bin)] * p[idx]; // X_{k,idx}
            rev += m[(idx * n + k, bin)] * p[idx]; // X_{idx,k}
        }
        *slot = f * fwd + (1.0 - f) * rev;
    }
}

/// Right-hand side of the preference subproblem at one bin:
/// `rhs_l = f·Σ_i A_i·X_il + (1−f)·Σ_j A_j·X_lj`, into a reused buffer.
fn preference_rhs_into(x: &TmSeries, bin: usize, f: f64, a: &[f64], rhs: &mut [f64]) {
    let n = x.nodes();
    let m = x.as_matrix();
    for (l, slot) in rhs.iter_mut().enumerate() {
        let mut into_l = 0.0;
        let mut out_of_l = 0.0;
        for idx in 0..n {
            into_l += a[idx] * m[(idx * n + l, bin)]; // X_{idx,l}
            out_of_l += a[idx] * m[(l * n + idx, bin)]; // X_{l,idx}
        }
        *slot = f * into_l + (1.0 - f) * out_of_l;
    }
}

/// Solves one bin's activity with the shared factorization into `out`,
/// falling back to NNLS when the unconstrained solution leaves the
/// feasible orthant (rare; the only allocating path of the loop).
fn solve_activity_bin_into(gram: &mut TwoTermGram, rhs: &[f64], out: &mut [f64]) -> Result<()> {
    gram.solve_into(rhs, out)?;
    if out.iter().all(|&v| v >= 0.0) {
        return Ok(());
    }
    gram.note_fallback();
    let a = nnls_from_normal_equations(gram.gram(), rhs, NnlsOptions::default())
        .map_err(IcError::from)?;
    out.copy_from_slice(&a);
    Ok(())
}

/// Per-bin objective weights, into a reused buffer.
///
/// * `WeightedSse`: `w_t = 1/‖X(t)‖²` (zero-traffic bins get weight 0).
/// * `SumRelL2` (IRLS): `w_t = 1/(‖X(t)‖·max(‖r(t)‖, ε‖X(t)‖))`.
fn bin_weights_into(
    x: &TmSeries,
    objective: Objective,
    residual_norms: Option<&[f64]>,
    weights: &mut [f64],
) {
    let eps = 1e-6;
    for (t, slot) in weights.iter_mut().enumerate() {
        let norm = x.norm(t);
        *slot = if norm == 0.0 {
            0.0
        } else {
            match (objective, residual_norms) {
                (Objective::WeightedSse, _) | (Objective::SumRelL2, None) => 1.0 / (norm * norm),
                (Objective::SumRelL2, Some(r)) => 1.0 / (norm * r[t].max(eps * norm)),
            }
        };
    }
}

/// Closed-form `f` step over all bins: `X̂ = f·D + E` with
/// `D_ij = A_i P_j − A_j P_i` and `E_ij = A_j P_i`, so the least-squares
/// minimizer is `Σ w_t <X − E, D> / Σ w_t ‖D‖²`, clamped to `[0, 1]`.
fn solve_f(x: &TmSeries, activity: &Matrix, p: &[f64], weights: &[f64], prev_f: f64) -> f64 {
    let n = x.nodes();
    let m = x.as_matrix();
    let mut num = 0.0;
    let mut den = 0.0;
    for t in 0..x.bins() {
        let w = weights[t];
        if w == 0.0 {
            continue;
        }
        for i in 0..n {
            let ai = activity[(i, t)];
            for j in 0..n {
                let aj = activity[(j, t)];
                let d = ai * p[j] - aj * p[i];
                if d == 0.0 {
                    continue;
                }
                let e = aj * p[i];
                num += w * (m[(i * n + j, t)] - e) * d;
                den += w * d * d;
            }
        }
    }
    if den <= 0.0 {
        prev_f
    } else {
        (num / den).clamp(0.0, 1.0)
    }
}

fn validate_input(x: &TmSeries) -> Result<()> {
    if !x.is_physical() {
        return Err(IcError::BadData(
            "fit input must be finite and non-negative",
        ));
    }
    if (0..x.bins()).all(|t| x.total(t) == 0.0) {
        return Err(IcError::BadData("fit input carries no traffic"));
    }
    Ok(())
}

/// Resolves the initial `(f, P, A)` of a fit: the validated warm start
/// when [`FitOptions::initial`] is set, the Eq. 11–12 cold initialization
/// otherwise. Warm starts carry only `(f, P)` — activities are recomputed
/// by every fit's first activity step, so the activity seed always comes
/// from the marginal inversion at the chosen `f`.
fn initial_point(x: &TmSeries, options: &FitOptions) -> Result<(f64, Vec<f64>, Matrix)> {
    let Some(warm) = &options.initial else {
        let f = options.initial_f.clamp(0.0, 1.0);
        let (p, a) = initialize(x, f);
        return Ok((f, p, a));
    };
    if warm.preference.len() != x.nodes() {
        return Err(IcError::DimensionMismatch {
            context: "warm-start preference",
            expected: x.nodes(),
            actual: warm.preference.len(),
        });
    }
    if !warm.f.is_finite() {
        return Err(IcError::InvalidParameter {
            name: "warm_start.f",
            constraint: "must be finite",
        });
    }
    let mass: f64 = warm.preference.iter().sum();
    if warm
        .preference
        .iter()
        .any(|&v| !(v >= 0.0) || !v.is_finite())
        || !(mass > 0.0)
    {
        return Err(IcError::BadData(
            "warm-start preference must be finite, non-negative, with positive mass",
        ));
    }
    let f = warm.f.clamp(0.0, 1.0);
    let p = warm
        .preference
        .iter()
        .map(|&v| (v / mass).max(1e-12))
        .collect();
    let (_, a) = initialize(x, f);
    Ok((f, p, a))
}

/// Initial parameters from the paper's own marginal inversion (Eq. 11–12).
///
/// The model's marginals satisfy
/// `X_{i*} = f·A_i + (1−f)·P_i·ΣA` and `X_{*i} = f·P_i·ΣA + (1−f)·A_i`,
/// which invert (for `f ≠ 1/2`) to
///
/// ```text
/// A_i     = (f·X_{i*} − (1−f)·X_{*i}) / (2f − 1)        (Eq. 11)
/// P_i·ΣA  = (f·X_{*i} − (1−f)·X_{i*}) / (2f − 1)        (Eq. 12)
/// ```
///
/// Starting BCD from this inversion matters beyond convergence speed: the
/// bilinear model has a *mirror* stationary point `(f, A, P) →
/// (1−f, ~P, ~A)` when activities are nearly separable in node and time,
/// and a marginal-share initializer can land in the wrong basin. The
/// Eq. 11–12 inversion is basin-consistent with the supplied `f0`.
fn initialize(x: &TmSeries, f0: f64) -> (Vec<f64>, Matrix) {
    let n = x.nodes();
    let bins = x.bins();
    let denom = 2.0 * f0 - 1.0;
    let mi = x.mean_ingress();
    let me = x.mean_egress();

    let p_raw: Vec<f64> = if denom.abs() < 1e-3 {
        // f ≈ 1/2 degenerates the inversion; ingress and egress marginals
        // coincide in expectation, so either share works.
        mi.clone()
    } else {
        (0..n)
            .map(|i| ((f0 * me[i] - (1.0 - f0) * mi[i]) / denom).max(0.0))
            .collect()
    };
    let mass: f64 = p_raw.iter().sum();
    let p: Vec<f64> = if mass > 0.0 {
        p_raw.iter().map(|&v| (v / mass).max(1e-12)).collect()
    } else {
        vec![1.0 / n as f64; n]
    };

    let mut a = Matrix::zeros(n, bins);
    for t in 0..bins {
        let ing = x.ingress(t);
        let eg = x.egress(t);
        for i in 0..n {
            let v = if denom.abs() < 1e-3 {
                0.5 * (ing[i] + eg[i])
            } else {
                ((f0 * ing[i] - (1.0 - f0) * eg[i]) / denom).max(0.0)
            };
            a[(i, t)] = v;
        }
    }
    (p, a)
}

/// Fits the **stable-fP** model (Eq. 5) to a traffic-matrix series.
///
/// This is the paper's workhorse: Figures 3, 5, 6, 7, 8 and 9 are all built
/// from stable-fP fits of weekly data.
///
/// # Examples
///
/// ```
/// use ic_core::{fit_stable_fp, stable_fp_series, FitOptions, StableFpParams};
/// use ic_linalg::Matrix;
///
/// // Generate a small ground-truth IC series and re-fit it.
/// let truth = StableFpParams {
///     f: 0.25,
///     preference: vec![0.5, 0.3, 0.2],
///     activity: Matrix::from_rows(&[
///         &[100.0, 120.0],
///         &[50.0, 40.0],
///         &[10.0, 20.0],
///     ]).unwrap(),
/// };
/// let data = stable_fp_series(&truth, 300.0).unwrap();
/// let fit = fit_stable_fp(&data, FitOptions::default()).unwrap();
/// assert!(fit.final_objective() < 1e-3);
/// ```
pub fn fit_stable_fp(x: &TmSeries, options: FitOptions) -> Result<FitReport<StableFpParams>> {
    validate_input(x)?;
    let bins = x.bins();
    let n = x.nodes();
    let (mut f, mut p, mut activity) = initial_point(x, &options)?;
    let mut history = Vec::with_capacity(options.max_sweeps);
    let mut converged = false;
    let mut residual_norms: Option<Vec<f64>> = None;

    // Per-fit workspace: every per-bin buffer of the BCD inner loops lives
    // here, so the sweeps below are allocation-free after warm-up (the
    // NNLS fallback and the per-sweep objective evaluation excepted).
    let mut weights = vec![0.0; bins];
    let mut rhs = vec![0.0; n];
    let mut a_buf = vec![0.0; n];
    let mut gram = TwoTermGram::new(options.solver);
    let mut g = Matrix::zeros(n, n);
    let mut h = vec![0.0; n];

    for _sweep in 0..options.max_sweeps {
        bin_weights_into(
            x,
            options.objective,
            residual_norms.as_deref(),
            &mut weights,
        );

        // Activity step: shared factorization across bins.
        gram.factor(f, &p)?;
        for t in 0..bins {
            activity_rhs_into(x, t, f, &p, &mut rhs);
            solve_activity_bin_into(&mut gram, &rhs, &mut a_buf)?;
            for (i, &v) in a_buf.iter().enumerate() {
                activity[(i, t)] = v;
            }
        }

        // Preference step: accumulate weighted normal equations.
        let c1 = f * f + (1.0 - f) * (1.0 - f);
        let c2 = 2.0 * f * (1.0 - f);
        g.as_mut_slice().fill(0.0);
        h.fill(0.0);
        for t in 0..bins {
            let w = weights[t];
            if w == 0.0 {
                continue;
            }
            for (i, slot) in a_buf.iter_mut().enumerate() {
                *slot = activity[(i, t)];
            }
            let a_t = &a_buf;
            let s2: f64 = a_t.iter().map(|&v| v * v).sum();
            for k in 0..n {
                for l in 0..n {
                    g[(k, l)] += w * c2 * a_t[k] * a_t[l];
                }
                g[(k, k)] += w * c1 * s2;
            }
            preference_rhs_into(x, t, f, a_t, &mut rhs);
            for (hk, &r) in h.iter_mut().zip(rhs.iter()) {
                *hk += w * r;
            }
        }
        let p_new =
            nnls_from_normal_equations(&g, &h, NnlsOptions::default()).map_err(IcError::from)?;
        let mass: f64 = p_new.iter().sum();
        if mass > 0.0 {
            // Renormalize to the simplex, absorbing the scale into A.
            p = p_new.iter().map(|&v| v / mass).collect();
            activity.scale_in_place(mass);
        }

        // f step.
        if !options.fix_f {
            f = solve_f(x, &activity, &p, &weights, f);
        }

        // Evaluate objective.
        let params = StableFpParams {
            f,
            preference: p.clone(),
            activity: activity.clone(),
        };
        let pred = stable_fp_series(&params, x.bin_seconds())?;
        let obj = mean_rel_l2(x, &pred)?;
        if options.objective == Objective::SumRelL2 {
            let r: Vec<f64> = (0..bins)
                .map(|t| {
                    let n2 = x.nodes() * x.nodes();
                    let mut s = 0.0;
                    for row in 0..n2 {
                        let d = x.as_matrix()[(row, t)] - pred.as_matrix()[(row, t)];
                        s += d * d;
                    }
                    s.sqrt()
                })
                .collect();
            residual_norms = Some(r);
        }
        let improved = history
            .last()
            .map(|&prev: &f64| (prev - obj) > options.tolerance * prev.max(1e-12))
            .unwrap_or(true);
        history.push(obj);
        if !improved {
            converged = true;
            break;
        }
    }

    Ok(FitReport {
        params: StableFpParams {
            f,
            preference: p,
            activity,
        },
        objective_history: history,
        converged,
        solve_stats: gram.stats(),
    })
}

/// Fits the **stable-f** model (Eq. 4): constant `f`, per-bin activity and
/// preference. Used by the Section 6.3 estimation scenario analyses.
pub fn fit_stable_f(x: &TmSeries, options: FitOptions) -> Result<FitReport<StableFParams>> {
    validate_input(x)?;
    let n = x.nodes();
    let bins = x.bins();
    let (mut f, p_init, mut activity) = initial_point(x, &options)?;
    let mut preference = Matrix::zeros(n, bins);
    for t in 0..bins {
        for i in 0..n {
            preference[(i, t)] = p_init[i];
        }
    }
    let mut history = Vec::with_capacity(options.max_sweeps);
    let mut converged = false;

    // Reused per-bin buffers (see fit_stable_fp).
    let mut weights = vec![0.0; bins];
    let mut p_buf = vec![0.0; n];
    let mut a_buf = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut gram = TwoTermGram::new(options.solver);
    let mut g2 = Matrix::zeros(n, n);

    for _sweep in 0..options.max_sweeps {
        bin_weights_into(x, Objective::WeightedSse, None, &mut weights);
        for t in 0..bins {
            if weights[t] == 0.0 {
                continue;
            }
            // Per-bin activity step.
            for (i, slot) in p_buf.iter_mut().enumerate() {
                *slot = preference[(i, t)];
            }
            gram.factor(f, &p_buf)?;
            activity_rhs_into(x, t, f, &p_buf, &mut rhs);
            solve_activity_bin_into(&mut gram, &rhs, &mut a_buf)?;
            // Per-bin preference step.
            two_term_gram_into(f, &a_buf, &mut g2);
            preference_rhs_into(x, t, f, &a_buf, &mut rhs);
            let p_new = nnls_from_normal_equations(&g2, &rhs, NnlsOptions::default())
                .map_err(IcError::from)?;
            let mass: f64 = p_new.iter().sum();
            if mass > 0.0 {
                for (slot, &v) in p_buf.iter_mut().zip(p_new.iter()) {
                    *slot = v / mass;
                }
                for v in a_buf.iter_mut() {
                    *v *= mass;
                }
            }
            for i in 0..n {
                preference[(i, t)] = p_buf[i];
                activity[(i, t)] = a_buf[i];
            }
        }
        // Global f step.
        if !options.fix_f {
            // Reuse solve_f with the per-bin preference by averaging the
            // per-bin closed forms: accumulate num/den per bin.
            f = solve_f_per_bin_preference(x, &activity, &preference, &weights, f);
        }
        let params = StableFParams {
            f,
            preference: preference.clone(),
            activity: activity.clone(),
        };
        let pred = stable_f_series(&params, x.bin_seconds())?;
        let obj = mean_rel_l2(x, &pred)?;
        let improved = history
            .last()
            .map(|&prev: &f64| (prev - obj) > options.tolerance * prev.max(1e-12))
            .unwrap_or(true);
        history.push(obj);
        if !improved {
            converged = true;
            break;
        }
    }

    Ok(FitReport {
        params: StableFParams {
            f,
            preference,
            activity,
        },
        objective_history: history,
        converged,
        solve_stats: gram.stats(),
    })
}

/// f step when preference varies per bin.
fn solve_f_per_bin_preference(
    x: &TmSeries,
    activity: &Matrix,
    preference: &Matrix,
    weights: &[f64],
    prev_f: f64,
) -> f64 {
    let n = x.nodes();
    let m = x.as_matrix();
    let mut num = 0.0;
    let mut den = 0.0;
    for t in 0..x.bins() {
        let w = weights[t];
        if w == 0.0 {
            continue;
        }
        for i in 0..n {
            for j in 0..n {
                let d =
                    activity[(i, t)] * preference[(j, t)] - activity[(j, t)] * preference[(i, t)];
                if d == 0.0 {
                    continue;
                }
                let e = activity[(j, t)] * preference[(i, t)];
                num += w * (m[(i * n + j, t)] - e) * d;
                den += w * d * d;
            }
        }
    }
    if den <= 0.0 {
        prev_f
    } else {
        (num / den).clamp(0.0, 1.0)
    }
}

/// Fits the **time-varying** model (Eq. 3): per-bin `f(t)`, `A(t)`, `P(t)`.
///
/// Each bin is an independent small BCD problem; with `3n` parameters per
/// `n²` observations this is the loosest (best-fitting) family member.
pub fn fit_time_varying(x: &TmSeries, options: FitOptions) -> Result<FitReport<TimeVaryingParams>> {
    validate_input(x)?;
    let n = x.nodes();
    let bins = x.bins();
    let (f0, p_init, mut activity) = initial_point(x, &options)?;
    let mut fs = vec![f0; bins];
    let mut preference = Matrix::zeros(n, bins);
    for t in 0..bins {
        for i in 0..n {
            preference[(i, t)] = p_init[i];
        }
    }
    let mut history = Vec::with_capacity(options.max_sweeps);
    let mut converged = false;

    // Reused per-bin buffers (see fit_stable_fp).
    let mut p_buf = vec![0.0; n];
    let mut a_buf = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut gram = TwoTermGram::new(options.solver);
    let mut g2 = Matrix::zeros(n, n);

    for _sweep in 0..options.max_sweeps {
        for t in 0..bins {
            if x.norm(t) == 0.0 {
                continue;
            }
            for (i, slot) in p_buf.iter_mut().enumerate() {
                *slot = preference[(i, t)];
            }
            let mut f_t = fs[t];
            // Activity.
            gram.factor(f_t, &p_buf)?;
            activity_rhs_into(x, t, f_t, &p_buf, &mut rhs);
            solve_activity_bin_into(&mut gram, &rhs, &mut a_buf)?;
            // Preference.
            two_term_gram_into(f_t, &a_buf, &mut g2);
            preference_rhs_into(x, t, f_t, &a_buf, &mut rhs);
            let p_new = nnls_from_normal_equations(&g2, &rhs, NnlsOptions::default())
                .map_err(IcError::from)?;
            let mass: f64 = p_new.iter().sum();
            if mass > 0.0 {
                for (slot, &v) in p_buf.iter_mut().zip(p_new.iter()) {
                    *slot = v / mass;
                }
                a_buf.iter_mut().for_each(|v| *v *= mass);
            }
            // Per-bin f.
            if !options.fix_f {
                let mut num = 0.0;
                let mut den = 0.0;
                let m = x.as_matrix();
                for i in 0..n {
                    for j in 0..n {
                        let d = a_buf[i] * p_buf[j] - a_buf[j] * p_buf[i];
                        if d == 0.0 {
                            continue;
                        }
                        let e = a_buf[j] * p_buf[i];
                        num += (m[(i * n + j, t)] - e) * d;
                        den += d * d;
                    }
                }
                if den > 0.0 {
                    f_t = (num / den).clamp(0.0, 1.0);
                }
            }
            for i in 0..n {
                preference[(i, t)] = p_buf[i];
                activity[(i, t)] = a_buf[i];
            }
            fs[t] = f_t;
        }
        let params = TimeVaryingParams {
            f: fs.clone(),
            preference: preference.clone(),
            activity: activity.clone(),
        };
        let pred = time_varying_series(&params, x.bin_seconds())?;
        let obj = mean_rel_l2(x, &pred)?;
        let improved = history
            .last()
            .map(|&prev: &f64| (prev - obj) > options.tolerance * prev.max(1e-12))
            .unwrap_or(true);
        history.push(obj);
        if !improved {
            converged = true;
            break;
        }
    }

    Ok(FitReport {
        params: TimeVaryingParams {
            f: fs,
            preference,
            activity,
        },
        objective_history: history,
        converged,
        solve_stats: gram.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::simplified_ic;

    /// Builds an exact stable-fP series from known parameters.
    fn exact_series(f: f64, p: &[f64], activities: &[Vec<f64>]) -> TmSeries {
        let n = p.len();
        let bins = activities.len();
        let mut tm = TmSeries::zeros(n, bins, 300.0).unwrap();
        for (t, a) in activities.iter().enumerate() {
            let x = simplified_ic(f, a, p).unwrap();
            for i in 0..n {
                for j in 0..n {
                    tm.set(i, j, t, x[(i, j)]).unwrap();
                }
            }
        }
        tm
    }

    fn varied_activities(n: usize, bins: usize) -> Vec<Vec<f64>> {
        (0..bins)
            .map(|t| {
                (0..n)
                    .map(|i| 100.0 * (1.0 + i as f64) * (1.0 + 0.4 * ((t + i) as f64).sin().abs()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_exact_stable_fp_model() {
        let p = [0.5, 0.3, 0.15, 0.05];
        let acts = varied_activities(4, 12);
        let tm = exact_series(0.25, &p, &acts);
        let fit = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        assert!(
            fit.final_objective() < 1e-4,
            "objective {}",
            fit.final_objective()
        );
        assert!((fit.params.f - 0.25).abs() < 0.02, "f = {}", fit.params.f);
        for (got, want) in fit.params.preference.iter().zip(p.iter()) {
            assert!((got - want).abs() < 0.02, "P {got} vs {want}");
        }
    }

    #[test]
    fn objective_history_decreases() {
        let p = [0.4, 0.35, 0.25];
        let acts = varied_activities(3, 8);
        let tm = exact_series(0.22, &p, &acts);
        let fit = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        for w in fit.objective_history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "{:?}", fit.objective_history);
        }
    }

    #[test]
    fn preference_on_simplex_activity_nonnegative() {
        let p = [0.6, 0.3, 0.1];
        let acts = varied_activities(3, 6);
        let tm = exact_series(0.3, &p, &acts);
        let fit = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        let sum: f64 = fit.params.preference.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(fit.params.preference.iter().all(|&v| v >= 0.0));
        assert!(fit.params.activity.as_slice().iter().all(|&v| v >= 0.0));
        assert!(fit.params.validate().is_ok());
    }

    #[test]
    fn fix_f_is_respected() {
        let p = [0.5, 0.5];
        let acts = varied_activities(2, 5);
        let tm = exact_series(0.2, &p, &acts);
        let opts = FitOptions {
            initial_f: 0.4,
            fix_f: true,
            ..FitOptions::default()
        };
        let fit = fit_stable_fp(&tm, opts).unwrap();
        assert_eq!(fit.params.f, 0.4);
    }

    #[test]
    fn rejects_bad_input() {
        let tm = TmSeries::zeros(2, 2, 300.0).unwrap();
        assert!(fit_stable_fp(&tm, FitOptions::default()).is_err()); // no traffic
        let mut bad = TmSeries::zeros(2, 2, 300.0).unwrap();
        bad.set(0, 1, 0, -5.0).unwrap();
        assert!(fit_stable_fp(&bad, FitOptions::default()).is_err());
    }

    #[test]
    fn noisy_data_still_converges() {
        let p = [0.45, 0.3, 0.25];
        let acts = varied_activities(3, 10);
        let mut tm = exact_series(0.25, &p, &acts);
        // Deterministic multiplicative perturbation.
        for t in 0..tm.bins() {
            for i in 0..3 {
                for j in 0..3 {
                    let v = tm.get(i, j, t).unwrap();
                    let wiggle = 1.0 + 0.1 * (((i * 7 + j * 3 + t) % 5) as f64 - 2.0) / 2.0;
                    tm.set(i, j, t, v * wiggle).unwrap();
                }
            }
        }
        let fit = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        // Residual should be on the order of the injected noise, not above.
        assert!(fit.final_objective() < 0.12, "{}", fit.final_objective());
        assert!((fit.params.f - 0.25).abs() < 0.1);
    }

    #[test]
    fn sum_rel_l2_objective_also_fits() {
        let p = [0.5, 0.3, 0.2];
        let acts = varied_activities(3, 6);
        let tm = exact_series(0.25, &p, &acts);
        let opts = FitOptions {
            objective: Objective::SumRelL2,
            ..FitOptions::default()
        };
        let fit = fit_stable_fp(&tm, opts).unwrap();
        assert!(fit.final_objective() < 1e-3, "{}", fit.final_objective());
    }

    #[test]
    fn stable_f_fit_handles_drifting_preference() {
        // Ground truth with per-bin preference: stable-f should track it
        // while stable-fP cannot.
        let n = 3;
        let bins = 6;
        let mut tm = TmSeries::zeros(n, bins, 300.0).unwrap();
        for t in 0..bins {
            let drift = t as f64 / bins as f64;
            let p = [0.5 - 0.3 * drift, 0.3, 0.2 + 0.3 * drift];
            let a: Vec<f64> = (0..n).map(|i| 100.0 * (1.0 + i as f64)).collect();
            let x = simplified_ic(0.25, &a, &p).unwrap();
            for i in 0..n {
                for j in 0..n {
                    tm.set(i, j, t, x[(i, j)]).unwrap();
                }
            }
        }
        let sf = fit_stable_f(&tm, FitOptions::default()).unwrap();
        let sfp = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        let sf_obj = sf.objective_history.last().unwrap();
        let sfp_obj = sfp.final_objective();
        assert!(
            sf_obj < &(sfp_obj + 1e-12),
            "stable-f {sf_obj} should fit at least as well as stable-fP {sfp_obj}"
        );
        assert!(sf_obj < &1e-3, "stable-f should fit drifting P: {sf_obj}");
        assert!((sf.params.f - 0.25).abs() < 0.05);
    }

    #[test]
    fn time_varying_fits_per_bin_f() {
        let n = 3;
        let bins = 4;
        let mut tm = TmSeries::zeros(n, bins, 300.0).unwrap();
        let p = [0.5, 0.3, 0.2];
        for t in 0..bins {
            let f_t = 0.15 + 0.1 * t as f64; // 0.15, 0.25, 0.35, 0.45
            let a: Vec<f64> = (0..n).map(|i| 100.0 + 50.0 * i as f64).collect();
            let x = simplified_ic(f_t, &a, &p).unwrap();
            for i in 0..n {
                for j in 0..n {
                    tm.set(i, j, t, x[(i, j)]).unwrap();
                }
            }
        }
        let tv = fit_time_varying(&tm, FitOptions::default()).unwrap();
        let obj = tv.objective_history.last().unwrap();
        assert!(obj < &1e-4, "time-varying should fit exactly: {obj}");
        // Recovered f(t) should be increasing like the truth.
        let f = &tv.params.f;
        assert!(f[3] > f[0] + 0.15, "f(t) trend lost: {f:?}");
    }

    #[test]
    fn dof_ordering_implies_fit_ordering() {
        // On data that is NOT exactly IC, more degrees of freedom fit no
        // worse: time-varying <= stable-f <= stable-fP in final objective.
        let n = 3;
        let bins = 5;
        let mut tm = TmSeries::zeros(n, bins, 300.0).unwrap();
        for t in 0..bins {
            for i in 0..n {
                for j in 0..n {
                    // Structured but non-IC data.
                    let v = 10.0
                        + (i as f64 * 17.0 + j as f64 * 29.0 + t as f64 * 7.0)
                        + if i == j { 31.0 } else { 0.0 };
                    tm.set(i, j, t, v).unwrap();
                }
            }
        }
        let o_tv = *fit_time_varying(&tm, FitOptions::default())
            .unwrap()
            .objective_history
            .last()
            .unwrap();
        let o_sf = *fit_stable_f(&tm, FitOptions::default())
            .unwrap()
            .objective_history
            .last()
            .unwrap();
        let o_sfp = fit_stable_fp(&tm, FitOptions::default())
            .unwrap()
            .final_objective();
        assert!(o_tv <= o_sf + 1e-6, "tv {o_tv} vs sf {o_sf}");
        assert!(o_sf <= o_sfp + 1e-6, "sf {o_sf} vs sfp {o_sfp}");
    }

    #[test]
    fn warm_start_reaches_same_optimum_in_fewer_sweeps() {
        let p = [0.5, 0.3, 0.15, 0.05];
        let acts = varied_activities(4, 10);
        let tm = exact_series(0.25, &p, &acts);
        let cold = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        // Warm-start a second fit of (slightly shifted) data from the
        // first optimum: same objective, fewer sweeps.
        let shifted = {
            let mut s = tm.clone();
            for t in 0..s.bins() {
                for i in 0..4 {
                    for j in 0..4 {
                        let v = s.get(i, j, t).unwrap();
                        s.set(i, j, t, v * 1.05).unwrap();
                    }
                }
            }
            s
        };
        let warm = fit_stable_fp(&shifted, FitOptions::default().with_initial(&cold)).unwrap();
        let cold2 = fit_stable_fp(&shifted, FitOptions::default()).unwrap();
        assert!(
            (warm.final_objective() - cold2.final_objective()).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.final_objective(),
            cold2.final_objective()
        );
        assert!(
            warm.objective_history.len() <= cold2.objective_history.len(),
            "warm {} sweeps vs cold {}",
            warm.objective_history.len(),
            cold2.objective_history.len()
        );
        assert!((warm.params.f - cold2.params.f).abs() < 1e-3);
    }

    #[test]
    fn warm_start_honored_by_all_three_fits() {
        let p = [0.5, 0.3, 0.2];
        let acts = varied_activities(3, 6);
        let tm = exact_series(0.25, &p, &acts);
        let warm = WarmStart {
            f: 0.25,
            preference: p.to_vec(),
        };
        let opts = FitOptions::default().with_warm_start(warm);
        // Starting at the exact optimum, every variant must stay there.
        let sfp = fit_stable_fp(&tm, opts.clone()).unwrap();
        assert!(sfp.final_objective() < 1e-6, "{}", sfp.final_objective());
        let sf = fit_stable_f(&tm, opts.clone()).unwrap();
        assert!(sf.final_objective() < 1e-6, "{}", sf.final_objective());
        let tv = fit_time_varying(&tm, opts).unwrap();
        assert!(tv.final_objective() < 1e-6, "{}", tv.final_objective());
    }

    #[test]
    fn warm_start_validates_inputs() {
        let p = [0.6, 0.4];
        let acts = varied_activities(2, 4);
        let tm = exact_series(0.3, &p, &acts);
        // Wrong preference length.
        let bad = FitOptions::default().with_warm_start(WarmStart {
            f: 0.3,
            preference: vec![0.5; 3],
        });
        assert!(fit_stable_fp(&tm, bad).is_err());
        // Non-finite f.
        let bad = FitOptions::default().with_warm_start(WarmStart {
            f: f64::NAN,
            preference: vec![0.5, 0.5],
        });
        assert!(fit_stable_fp(&tm, bad).is_err());
        // Zero-mass preference.
        let bad = FitOptions::default().with_warm_start(WarmStart {
            f: 0.3,
            preference: vec![0.0, 0.0],
        });
        assert!(fit_stable_f(&tm, bad).is_err());
        // Negative preference entries.
        let bad = FitOptions::default().with_warm_start(WarmStart {
            f: 0.3,
            preference: vec![1.0, -0.5],
        });
        assert!(fit_time_varying(&tm, bad).is_err());
    }

    #[test]
    fn pcg_solver_matches_dense_bcd() {
        let p = [0.5, 0.3, 0.15, 0.05];
        let acts = varied_activities(4, 10);
        let tm = exact_series(0.25, &p, &acts);
        let dense =
            fit_stable_fp(&tm, FitOptions::default().with_solver(SolverPolicy::Dense)).unwrap();
        let pcg = fit_stable_fp(&tm, FitOptions::default().with_solver(SolverPolicy::Pcg)).unwrap();
        // The activity subproblem operator has exactly two distinct
        // eigenvalues, so CG converges essentially exactly and the two
        // descents track each other to tight tolerance.
        assert!((dense.params.f - pcg.params.f).abs() < 1e-6);
        for (a, b) in dense
            .params
            .preference
            .iter()
            .zip(pcg.params.preference.iter())
        {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!((dense.final_objective() - pcg.final_objective()).abs() < 1e-6);
        // Work is counted on the right ledger.
        assert!(dense.solve_stats.dense_solves > 0);
        assert_eq!(dense.solve_stats.pcg_solves, 0);
        assert!(pcg.solve_stats.pcg_solves > 0);
        assert!(pcg.solve_stats.pcg_iterations > 0);
        assert_eq!(pcg.solve_stats.dense_solves, 0);
        // Auto resolves dense at this size (4 nodes, far below threshold).
        let auto = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        assert_eq!(auto.solve_stats.pcg_solves, 0);
        assert_eq!(auto.params.f, dense.params.f);
    }

    #[test]
    fn predictions_round_trip() {
        let p = [0.6, 0.4];
        let acts = varied_activities(2, 4);
        let tm = exact_series(0.3, &p, &acts);
        let fit = fit_stable_fp(&tm, FitOptions::default()).unwrap();
        let pred = fit.predict(300.0).unwrap();
        assert_eq!(pred.bins(), tm.bins());
        assert_eq!(pred.nodes(), tm.nodes());
        let e = mean_rel_l2(&tm, &pred).unwrap();
        assert!((e - fit.final_objective()).abs() < 1e-12);
    }
}
