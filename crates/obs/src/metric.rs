//! Lock-free metric primitives: counters, gauges, fixed-bucket
//! histograms.
//!
//! Every handle is a plain atomic cell (or a fixed array of them), so the
//! record path is a handful of relaxed atomic operations — no locks, no
//! allocation, no branching beyond bucket selection. Metrics carry no
//! ordering semantics: they observe, they never synchronize.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic `u64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0.0_f64.to_bits()))
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of geometric buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 48;

/// Lowest bucket upper bound. With 48 power-of-two buckets the histogram
/// spans `1e-7` (100 ns — below the cost of the record itself) to
/// `~1.4e7` (half a year of seconds): every latency this workspace can
/// produce lands in a finite bucket.
const FIRST_UPPER_BOUND: f64 = 1e-7;

/// A fixed-bucket histogram with geometric (power-of-two) bucket bounds.
///
/// Designed for latencies in seconds but value-agnostic: any
/// non-negative finite `f64` records into the bucket whose upper bound
/// first reaches it. Quantiles ([`Histogram::percentile`]) are
/// nearest-rank over bucket counts and report the selected bucket's
/// upper bound — a conservative (never underestimating) answer with
/// bounded relative error 2x; the exact [`Histogram::max`] is tracked
/// separately.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            max_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// Upper bound of bucket `i` (`FIRST_UPPER_BOUND * 2^i`).
    pub fn bucket_upper_bound(i: usize) -> f64 {
        FIRST_UPPER_BOUND * (i as f64).exp2()
    }

    fn bucket_index(v: f64) -> usize {
        if !(v > FIRST_UPPER_BOUND) {
            return 0; // NaN and negatives land in bucket 0 defensively
        }
        let idx = (v / FIRST_UPPER_BOUND).log2().ceil();
        (idx as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation. Lock- and allocation-free.
    pub fn record(&self, v: f64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 add via CAS loop; contention is rare (one record per bin
        // or window) and the loop allocates nothing.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() / n as f64
        }
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile `q ∈ [0, 1]` over the bucket counts,
    /// reported as the selected bucket's upper bound and clamped to the
    /// exact max (NaN when empty).
    pub fn percentile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // The top bucket is effectively unbounded: report the
                // exact max instead of its nominal bound.
                if i == HISTOGRAM_BUCKETS - 1 {
                    return self.max();
                }
                return Self::bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median ([`Histogram::percentile`] at 0.5).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Per-bucket counts (render-side accessor).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.percentile(0.5).is_nan());
        assert!(h.mean().is_nan());
        for v in [1e-6, 2e-6, 4e-3, 0.5] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 0.504003).abs() < 1e-9);
        assert_eq!(h.max(), 0.5);
        assert!((h.mean() - 0.504003 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_conservative_within_a_bucket_factor() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(1e-1);
        }
        // p50 covers the 1ms mass: upper bound within 2x above.
        let p50 = h.p50();
        assert!((1e-3..=2e-3).contains(&p50), "p50 {p50}");
        // p95 and p99 land in the 100ms mass, clamped to the exact max.
        assert_eq!(h.p95(), 1e-1);
        assert_eq!(h.p99(), 1e-1);
        assert_eq!(h.percentile(1.0), 1e-1);
    }

    #[test]
    fn extreme_values_land_in_edge_buckets() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(1e12); // beyond the last bound: clamped to the top bucket
        assert_eq!(h.count(), 4);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 3);
        assert_eq!(counts[HISTOGRAM_BUCKETS - 1], 1);
        // The top-bucket quantile is clamped to the true max.
        assert_eq!(h.percentile(1.0), 1e12);
    }

    #[test]
    fn bucket_bounds_are_geometric() {
        assert_eq!(Histogram::bucket_upper_bound(0), 1e-7);
        assert_eq!(Histogram::bucket_upper_bound(1), 2e-7);
        let last = Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1);
        assert!(last > 1e7, "top bound {last}");
    }
}
