//! A bounded ring buffer of structured events.
//!
//! Events are for *rare, operator-meaningful* occurrences — drift
//! alerts, solver fallbacks and stalls, snapshot/restore, slow polls —
//! not per-bin telemetry (that is what histograms are for). The buffer
//! is bounded: once full, the oldest event is dropped, and the
//! monotonically increasing sequence number makes the drop visible to a
//! scraper.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonically increasing sequence number (gaps mean the ring
    /// dropped older events).
    pub seq: u64,
    /// Stable kebab-case kind string (e.g. `drift-alert`,
    /// `solver-fallback`, `snapshot`, `slow-poll`) — the greppable part.
    pub kind: &'static str,
    /// Free-form human-readable detail.
    pub message: String,
}

/// The bounded event ring.
///
/// Recording takes a short mutex (events are rare by contract) and one
/// `String`; never used on per-bin hot paths.
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    next_seq: u64,
    capacity: usize,
    buf: VecDeque<Event>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// An empty ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            inner: Mutex::new(Ring {
                next_seq: 0,
                capacity: capacity.max(1),
                buf: VecDeque::new(),
            }),
        }
    }

    /// Appends an event, dropping the oldest one when full. Returns the
    /// event's sequence number.
    pub fn record(&self, kind: &'static str, message: impl Into<String>) -> u64 {
        let mut ring = self.inner.lock().expect("event ring poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
        }
        let event = Event {
            seq,
            kind,
            message: message.into(),
        };
        ring.buf.push_back(event);
        seq
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let ring = self.inner.lock().expect("event ring poisoned");
        ring.buf.iter().cloned().collect()
    }

    /// Total events ever recorded (including dropped ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().expect("event ring poisoned").next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_keeps_sequence() {
        let log = EventLog::new(2);
        assert_eq!(log.record("snapshot", "tenant a"), 0);
        assert_eq!(log.record("restore", "tenant a"), 1);
        assert_eq!(log.record("drift-alert", "tenant b"), 2);
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[0].kind, "restore");
        assert_eq!(events[1].seq, 2);
        assert_eq!(events[1].message, "tenant b");
        assert_eq!(log.total_recorded(), 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let log = EventLog::new(0);
        log.record("a", "1");
        log.record("b", "2");
        let events = log.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "b");
    }
}
