//! The metrics registry: named, optionally labeled metric handles plus
//! the event ring.
//!
//! Registration is the cold path: it takes a mutex, allocates the key,
//! and returns an `Arc` handle. Callers register once (at construction /
//! tenant-registration time), stash the handle, and record through it
//! lock-free ever after. Registering the same `(name, labels)` twice
//! returns the same underlying metric, so independent layers can share a
//! series without coordination.

use crate::event::{Event, EventLog, DEFAULT_EVENT_CAPACITY};
use crate::metric::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A metric's identity: hierarchical dot-separated name plus sorted
/// `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Dot-separated hierarchical name (`pipeline.refine.seconds`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels for a canonical identity.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
}

/// The registry: one per process (or per [`Service`]), shared via `Arc`.
///
/// [`Service`]: https://docs.rs/ic-serve
#[derive(Debug)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
    events: EventLog,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with the default event-ring capacity.
    pub fn new() -> Self {
        MetricsRegistry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An empty registry whose event ring holds at most `capacity`
    /// events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            inner: Mutex::new(Inner::default()),
            events: EventLog::new(capacity),
        }
    }

    /// Registers (or fetches) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Registers (or fetches) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.counters.entry(key).or_default())
    }

    /// Registers (or fetches) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Registers (or fetches) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.gauges.entry(key).or_default())
    }

    /// Registers (or fetches) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Registers (or fetches) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.histograms.entry(key).or_default())
    }

    /// Records a structured event (see [`EventLog::record`]).
    pub fn event(&self, kind: &'static str, message: impl Into<String>) -> u64 {
        self.events.record(kind, message)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.snapshot()
    }

    /// Total events ever recorded (including ones the ring dropped).
    pub fn events_recorded(&self) -> u64 {
        self.events.total_recorded()
    }

    /// Snapshot of every registered metric, in deterministic (sorted)
    /// key order — the renderers' input.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect(),
        }
    }
}

/// A point-in-time listing of registered metrics (handles, not copies:
/// values are read at render time).
#[derive(Debug)]
pub struct MetricsSnapshot {
    /// Counters in sorted key order.
    pub counters: Vec<(MetricKey, Arc<Counter>)>,
    /// Gauges in sorted key order.
    pub gauges: Vec<(MetricKey, Arc<Gauge>)>,
    /// Histograms in sorted key order.
    pub histograms: Vec<(MetricKey, Arc<Histogram>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_key() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("serve.polls_total", &[("tenant", "a")]);
        let b = registry.counter_with("serve.polls_total", &[("tenant", "a")]);
        let other = registry.counter_with("serve.polls_total", &[("tenant", "b")]);
        a.inc();
        b.inc();
        other.add(7);
        assert_eq!(a.get(), 2);
        assert_eq!(other.get(), 7);
        // Same name, disjoint metric types coexist.
        registry.gauge("serve.polls_total").set(1.0);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.gauges.len(), 1);
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn label_order_does_not_split_series() {
        let registry = MetricsRegistry::new();
        let a = registry.histogram_with("h", &[("x", "1"), ("a", "2")]);
        let b = registry.histogram_with("h", &[("a", "2"), ("x", "1")]);
        a.record(1.0);
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn events_flow_through_the_registry() {
        let registry = MetricsRegistry::with_event_capacity(4);
        registry.event("drift-alert", "tenant=a window=3");
        let events = registry.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "drift-alert");
        assert_eq!(registry.events_recorded(), 1);
    }
}
