//! Renderings of a registry: Prometheus exposition text and JSON.
//!
//! Both renderings are deterministic (sorted key order from
//! [`MetricsRegistry::snapshot`]) so scrapes diff cleanly. Histograms
//! render as Prometheus *summaries* (pre-computed p50/p95/p99 quantiles
//! plus `_sum`/`_count`, with the exact max as a companion gauge) —
//! quantiles are computed server-side from the fixed buckets, so the
//! scraper needs no histogram_quantile machinery.

use crate::metric::Histogram;
use crate::registry::{MetricKey, MetricsRegistry};
use std::fmt::Write as _;

impl MetricsRegistry {
    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4). Dots in names become underscores
    /// (`pipeline.refine.seconds` → `pipeline_refine_seconds`).
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let mut last_type_header = String::new();
        for (key, counter) in &snap.counters {
            prom_type_header(&mut out, &mut last_type_header, &key.name, "counter");
            let _ = writeln!(
                out,
                "{}{} {}",
                prom_name(&key.name),
                prom_labels(&key.labels, &[]),
                counter.get()
            );
        }
        for (key, gauge) in &snap.gauges {
            prom_type_header(&mut out, &mut last_type_header, &key.name, "gauge");
            let _ = writeln!(
                out,
                "{}{} {}",
                prom_name(&key.name),
                prom_labels(&key.labels, &[]),
                prom_f64(gauge.get())
            );
        }
        for (key, histogram) in &snap.histograms {
            prom_type_header(&mut out, &mut last_type_header, &key.name, "summary");
            let name = prom_name(&key.name);
            for (q, v) in [
                ("0.5", histogram.p50()),
                ("0.95", histogram.p95()),
                ("0.99", histogram.p99()),
            ] {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    name,
                    prom_labels(&key.labels, &[("quantile", q)]),
                    prom_f64(v)
                );
            }
            let plain = prom_labels(&key.labels, &[]);
            let _ = writeln!(out, "{}_sum{} {}", name, plain, prom_f64(histogram.sum()));
            let _ = writeln!(out, "{}_count{} {}", name, plain, histogram.count());
            let _ = writeln!(out, "{}_max{} {}", name, plain, prom_f64(histogram.max()));
        }
        out
    }

    /// Renders every metric plus the retained events as a JSON object
    /// with `counters` / `gauges` / `histograms` / `events` arrays.
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n  \"counters\": [");
        for (i, (key, counter)) in snap.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{{}, \"value\": {}}}",
                json_key(key),
                counter.get()
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, (key, gauge)) in snap.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{{}, \"value\": {}}}",
                json_key(key),
                json_f64(gauge.get())
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, (key, histogram)) in snap.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{{}, {}}}",
                json_key(key),
                json_histogram(histogram)
            );
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, event) in self.events().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"seq\": {}, \"kind\": {}, \"message\": {}}}",
                event.seq,
                json_string(event.kind),
                json_string(&event.message)
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"events_recorded\": {}\n}}\n",
            self.events_recorded()
        );
        out
    }
}

/// Emits a `# TYPE` header when the (sanitized) metric name changes.
fn prom_type_header(out: &mut String, last: &mut String, name: &str, kind: &str) {
    let sanitized = prom_name(name);
    if *last != sanitized {
        let _ = writeln!(out, "# TYPE {sanitized} {kind}");
        *last = sanitized;
    }
}

/// Sanitizes a hierarchical name into the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders `{k="v",...}` (empty string when there are no labels).
fn prom_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    let push = |out: &mut String, k: &str, v: &str, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(out, "{}=\"{}\"", prom_name(k), prom_escape(v));
    };
    for (k, v) in labels {
        push(&mut out, k, v, &mut first);
    }
    for (k, v) in extra {
        push(&mut out, k, v, &mut first);
    }
    out.push('}');
    out
}

/// Escapes a label value (backslash, quote, newline).
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way Prometheus spells specials.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Formats an `f64` as JSON (`null` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes a JSON string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `"name": ..., "labels": {...}` for a metric key.
fn json_key(key: &MetricKey) -> String {
    let mut out = format!("\"name\": {}, \"labels\": {{", json_string(&key.name));
    for (i, (k, v)) in key.labels.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}{}: {}", json_string(k), json_string(v));
    }
    out.push('}');
    out
}

/// Renders a histogram's summary fields.
fn json_histogram(h: &Histogram) -> String {
    format!(
        "\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}",
        h.count(),
        json_f64(h.sum()),
        json_f64(h.mean()),
        json_f64(h.p50()),
        json_f64(h.p95()),
        json_f64(h.p99()),
        json_f64(h.max())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("serve.polls_total", &[("tenant", "pop\"west")])
            .add(3);
        registry.counter("serve.polls_total").add(9);
        registry.gauge("engine.workers").set(2.0);
        registry.histogram("pipeline.bin.seconds").record(1e-3);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE serve_polls_total counter\n"));
        // The type header appears once for the two-series counter.
        assert_eq!(text.matches("# TYPE serve_polls_total").count(), 1);
        assert!(text.contains("serve_polls_total 9\n"));
        assert!(text.contains("serve_polls_total{tenant=\"pop\\\"west\"} 3\n"));
        assert!(text.contains("# TYPE engine_workers gauge\n"));
        assert!(text.contains("engine_workers 2\n"));
        assert!(text.contains("# TYPE pipeline_bin_seconds summary\n"));
        assert!(text.contains("pipeline_bin_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("pipeline_bin_seconds_count 1\n"));
        assert!(text.contains("pipeline_bin_seconds_max 0.001\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!series.is_empty());
            assert!(value == "NaN" || value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn json_rendering_carries_metrics_and_events() {
        let registry = MetricsRegistry::new();
        registry.counter_with("c", &[("tenant", "a")]).inc();
        registry.gauge("g").set(f64::NAN);
        registry.histogram("h").record(2.0);
        registry.event("slow-poll", "poll took 2s\n(tenant \"a\")");
        let json = registry.render_json();
        assert!(json.contains("\"name\": \"c\""));
        assert!(json.contains("\"tenant\": \"a\""));
        assert!(json.contains("\"value\": null")); // NaN gauge
        assert!(json.contains("\"p99\": 2"));
        assert!(json.contains("\"kind\": \"slow-poll\""));
        assert!(json.contains("\\n(tenant \\\"a\\\")"));
        assert!(json.contains("\"events_recorded\": 1"));
    }

    #[test]
    fn name_sanitization_covers_edge_cases() {
        assert_eq!(
            prom_name("pipeline.refine.seconds"),
            "pipeline_refine_seconds"
        );
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name("a-b/c 9"), "a_b_c_9");
        assert_eq!(prom_name(""), "_");
    }
}
