//! `ic-obs`: a hand-rolled observability layer for the estimation stack.
//!
//! Three primitives, all allocation-free on the hot path once registered:
//!
//! * **Metrics** — a [`MetricsRegistry`] of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket [`Histogram`]s (p50/p95/p99/max).
//!   Registration (cold path) takes a lock and allocates; the returned
//!   `Arc` handles are lock-free atomics, so instrumented inner loops
//!   never contend or allocate.
//! * **Spans** — [`Span`] timers that record wall-clock durations into a
//!   histogram on drop. Hierarchical, dot-separated metric names
//!   (`pipeline.refine`, `solver.pcg`, `serve.poll.seconds`) organize
//!   them; per-entity breakdowns use labels
//!   (`serve.poll.seconds{tenant="pop-west"}`).
//! * **Events** — a bounded ring buffer of structured [`Event`]s (drift
//!   alerts, solver fallbacks/stalls, snapshot/restore, slow polls) with
//!   stable machine-greppable kind strings.
//!
//! The registry renders itself as Prometheus exposition text
//! ([`MetricsRegistry::render_prometheus`]) and as JSON
//! ([`MetricsRegistry::render_json`]); `ic-serve` exposes both over the
//! wire protocol's `Stats` request.
//!
//! Instrumentation in this workspace is **result-neutral by
//! construction**: the registry only ever observes values, so an
//! instrumented run is bit-identical to a bare one, and a disabled
//! registry is represented by absence (`Option<&MetricsRegistry>` /
//! `Option<Arc<...>>` threading) — the no-op path is a branch on `None`,
//! not a dynamic dispatch.
//!
//! # Examples
//!
//! ```
//! use ic_obs::{MetricsRegistry, Span};
//!
//! let registry = MetricsRegistry::new();
//! let polls = registry.counter("serve.polls_total");
//! let latency = registry.histogram("serve.poll.seconds");
//!
//! for _ in 0..4 {
//!     let _span = Span::start(&latency); // records on drop
//!     polls.inc();
//! }
//! assert_eq!(polls.get(), 4);
//! assert_eq!(latency.count(), 4);
//! let text = registry.render_prometheus();
//! assert!(text.contains("serve_polls_total 4"));
//! ```

pub mod event;
pub mod metric;
pub mod registry;
pub mod render;
pub mod span;

pub use event::{Event, EventLog, DEFAULT_EVENT_CAPACITY};
pub use metric::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{MetricKey, MetricsRegistry};
pub use span::Span;
