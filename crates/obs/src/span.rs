//! Span timers: wall-clock durations recorded into a histogram on drop.

use crate::metric::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// A timing guard. While alive it represents one in-flight operation;
/// dropping it records the elapsed seconds into the histogram it was
/// started against. A [`Span::noop`] (or a span started against `None`)
/// neither reads the clock nor records — the disabled path costs one
/// branch.
///
/// Spans are named by the histogram they record into; the workspace
/// convention is hierarchical dot-separated names (`pipeline.refine`,
/// `solver.pcg`, `serve.poll.seconds`) with labels for per-entity
/// breakdowns.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    timing: Option<(Instant, Arc<Histogram>)>,
}

impl Span {
    /// Starts a span recording into `histogram` on drop.
    pub fn start(histogram: &Arc<Histogram>) -> Span {
        Span {
            timing: Some((Instant::now(), Arc::clone(histogram))),
        }
    }

    /// Starts a span when a histogram is present; a no-op span otherwise.
    /// The idiom for `Option<&Arc<Histogram>>`-threaded instrumentation.
    pub fn maybe(histogram: Option<&Arc<Histogram>>) -> Span {
        match histogram {
            Some(h) => Span::start(h),
            None => Span::noop(),
        }
    }

    /// A span that records nothing.
    pub fn noop() -> Span {
        Span { timing: None }
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.timing.is_some()
    }

    /// Ends the span now (equivalent to dropping it), returning the
    /// recorded seconds (`None` for a no-op span).
    pub fn finish(mut self) -> Option<f64> {
        let (start, histogram) = self.timing.take()?;
        let secs = start.elapsed().as_secs_f64();
        histogram.record(secs);
        Some(secs)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, histogram)) = self.timing.take() {
            histogram.record(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop_and_finish() {
        let h = Arc::new(Histogram::new());
        {
            let span = Span::start(&h);
            assert!(span.is_recording());
        }
        assert_eq!(h.count(), 1);
        let secs = Span::start(&h).finish().unwrap();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn noop_span_records_nothing() {
        let h = Arc::new(Histogram::new());
        assert!(!Span::noop().is_recording());
        assert_eq!(Span::noop().finish(), None);
        {
            let _span = Span::maybe(None);
        }
        assert_eq!(h.count(), 0);
        {
            let _span = Span::maybe(Some(&h));
        }
        assert_eq!(h.count(), 1);
    }
}
