//! Allocation contract of the metric hot path.
//!
//! Registration is the cold path (it locks and allocates); *recording*
//! is the hot path threaded through per-bin estimation kernels, and it
//! must never allocate — otherwise "zero-overhead instrumentation" would
//! silently break the estimation stack's allocation-free warm loops.
//! A counting global allocator proves it.

use ic_obs::{MetricsRegistry, Span};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to `System` verbatim; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn recording_metrics_never_allocates() {
    // Cold path: registration may allocate freely.
    let registry = MetricsRegistry::new();
    let counter = registry.counter("test.counter");
    let gauge = registry.gauge("test.gauge");
    let histogram = registry.histogram_with("test.seconds", &[("k", "v")]);

    // Warm one full pass so lazily initialized state (if any) settles.
    counter.inc();
    counter.add(3);
    gauge.set(1.5);
    histogram.record(0.002);
    let span = Span::start(&histogram);
    let _ = span.finish();

    // Hot path: many records, zero allocations.
    let before = allocations();
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(i);
        gauge.set(i as f64);
        histogram.record(i as f64 * 1e-6);
        let span = Span::start(&histogram);
        drop(span); // records on drop
    }
    assert_eq!(
        allocations() - before,
        0,
        "metric recording allocated on the hot path"
    );
    assert_eq!(counter.get(), 4 + 10_000 + (0..10_000u64).sum::<u64>());
    assert_eq!(histogram.count(), 2 + 2 * 10_000);
}

#[test]
fn disabled_span_never_allocates() {
    let before = allocations();
    for _ in 0..10_000 {
        let span = Span::maybe(None);
        assert!(!span.is_recording());
        let _ = span.finish();
    }
    assert_eq!(allocations() - before, 0, "a no-op span allocated");
}
