//! Property-based tests for the linear-algebra substrate.
//!
//! These check the *defining axioms* of each kernel on randomized inputs:
//! QR reconstructs and orthogonalizes, the pseudo-inverse satisfies all
//! four Moore–Penrose conditions, NNLS satisfies KKT, and the simplex
//! projection lands on the simplex and is idempotent.

use ic_linalg::batch::{gather_lane, scatter_lane};
use ic_linalg::pinv::satisfies_moore_penrose;
use ic_linalg::qr::solve;
use ic_linalg::{
    nnls, project_to_simplex, pseudo_inverse, BlockJacobiPreconditioner, Cholesky, Matrix,
    NnlsOptions, NormalSolver, PcgBatchWorkspace, PcgNormalSolver, PcgWorkspace, Qr, SolveStats,
    SparseMatrix, Svd,
};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..7, 1usize..7).prop_map(|(m, n)| if m >= n { (m, n) } else { (n, m) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs((m, n) in small_shape(), seed in any::<u64>()) {
        let a = deterministic_matrix(m, n, seed);
        let qr = Qr::factor(&a).unwrap();
        let back = qr.q_thin().matmul(&qr.r()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8 * (1.0 + a.max_abs())));
    }

    #[test]
    fn qr_q_is_orthonormal((m, n) in small_shape(), seed in any::<u64>()) {
        let a = deterministic_matrix(m, n, seed);
        let q = Qr::factor(&a).unwrap().q_thin();
        let qtq = q.gram();
        // Columns associated with zero reflectors may be exactly e_j; the
        // Gram matrix is still near identity for full-rank random input.
        prop_assert!(qtq.approx_eq(&Matrix::identity(n), 1e-7));
    }

    #[test]
    fn svd_reconstructs(rows in 1usize..7, cols in 1usize..7, seed in any::<u64>()) {
        let a = deterministic_matrix(rows, cols, seed);
        let svd = Svd::factor(&a).unwrap();
        let back = svd.reconstruct().unwrap();
        prop_assert!(back.approx_eq(&a, 1e-7 * (1.0 + a.max_abs())));
    }

    #[test]
    fn svd_values_sorted_nonnegative(rows in 1usize..7, cols in 1usize..7, seed in any::<u64>()) {
        let a = deterministic_matrix(rows, cols, seed);
        let svd = Svd::factor(&a).unwrap();
        let s = svd.singular_values();
        prop_assert!(s.iter().all(|&x| x >= 0.0));
        prop_assert!(s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn pinv_satisfies_all_axioms(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let a = deterministic_matrix(rows, cols, seed);
        let p = pseudo_inverse(&a, None).unwrap();
        let scale = 1.0 + a.max_abs().max(p.max_abs());
        prop_assert!(satisfies_moore_penrose(&a, &p, 1e-6 * scale * scale));
    }

    #[test]
    fn nnls_is_feasible_and_kkt(rows in 1usize..7, cols in 1usize..5, seed in any::<u64>()) {
        let a = deterministic_matrix(rows, cols, seed);
        let b: Vec<f64> = deterministic_matrix(rows, 1, seed ^ 0x9e37_79b9).into_vec();
        let x = nnls(&a, &b, NnlsOptions::default()).unwrap();
        prop_assert!(x.iter().all(|&v| v >= 0.0));
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(ax.iter()).map(|(&bi, &axi)| bi - axi).collect();
        let w = a.matvec_transposed(&r).unwrap();
        let scale = 1.0 + a.max_abs() * (1.0 + b.iter().fold(0.0_f64, |m, &v| m.max(v.abs())));
        for (j, (&xj, &wj)) in x.iter().zip(w.iter()).enumerate() {
            if xj > 1e-8 {
                prop_assert!(wj.abs() <= 1e-5 * scale, "stationarity at {}: {}", j, wj);
            } else {
                prop_assert!(wj <= 1e-5 * scale, "dual feasibility at {}: {}", j, wj);
            }
        }
    }

    #[test]
    fn simplex_projection_lands_on_simplex(v in proptest::collection::vec(-5.0_f64..5.0, 1..12)) {
        let p = project_to_simplex(&v, 1.0);
        prop_assert_eq!(p.len(), v.len());
        prop_assert!(p.iter().all(|&x| x >= 0.0));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_projection_is_idempotent(v in proptest::collection::vec(-5.0_f64..5.0, 1..12)) {
        let p1 = project_to_simplex(&v, 1.0);
        let p2 = project_to_simplex(&p1, 1.0);
        for (a, b) in p1.iter().zip(p2.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_consistent_square_systems(n in 1usize..6, seed in any::<u64>()) {
        // Build a well-conditioned matrix: random + n * I.
        let mut a = deterministic_matrix(n, n, seed);
        for i in 0..n {
            let v = a[(i, i)] + 20.0;
            a[(i, i)] = v;
        }
        let x_true: Vec<f64> = deterministic_matrix(n, 1, seed ^ 0xdead_beef).into_vec();
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_is_associative(seed in any::<u64>()) {
        let a = deterministic_matrix(3, 4, seed);
        let b = deterministic_matrix(4, 2, seed ^ 1);
        let c = deterministic_matrix(2, 5, seed ^ 2);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-7 * (1.0 + left.max_abs())));
    }

    #[test]
    fn sparse_round_trips_dense(rows in 1usize..9, cols in 1usize..9, seed in any::<u64>()) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        prop_assert_eq!(s.to_dense(), d.clone());
        prop_assert_eq!(s.transpose().to_dense(), d.transpose());
        prop_assert_eq!(s.transpose().transpose().to_dense(), d);
    }

    #[test]
    fn sparse_matvec_agrees_with_dense(rows in 1usize..9, cols in 1usize..9, seed in any::<u64>()) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        let v: Vec<f64> = deterministic_matrix(cols, 1, seed ^ 0x5151).into_vec();
        let sparse = s.matvec(&v).unwrap();
        let dense = d.matvec(&v).unwrap();
        // Bit-for-bit: both kernels accumulate left-to-right over columns.
        prop_assert_eq!(sparse, dense);
    }

    #[test]
    fn sparse_matvec_transposed_agrees_with_dense(
        rows in 1usize..9, cols in 1usize..9, seed in any::<u64>()
    ) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        let v: Vec<f64> = deterministic_matrix(rows, 1, seed ^ 0xabcd).into_vec();
        // Bit-for-bit: both scatter row-by-row in the same order.
        prop_assert_eq!(s.matvec_transposed(&v).unwrap(), d.matvec_transposed(&v).unwrap());
    }

    #[test]
    fn sparse_awat_agrees_with_dense(rows in 1usize..7, cols in 1usize..9, seed in any::<u64>()) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        let w: Vec<f64> = deterministic_matrix(cols, 1, seed ^ 0x77)
            .into_vec()
            .iter()
            .map(|v| v.abs())
            .collect();
        // Dense reference: (A · diag(w)) · Aᵀ.
        let mut aw = d.clone();
        for i in 0..rows {
            for (j, v) in aw.row_mut(i).iter_mut().enumerate() {
                *v *= w[j];
            }
        }
        let expect = aw.matmul(&d.transpose()).unwrap();
        let got = s.awat(&w).unwrap();
        prop_assert!(
            got.approx_eq(&expect, 1e-12 * (1.0 + expect.max_abs())),
            "awat mismatch: {got} vs {expect}"
        );
    }

    #[test]
    fn sparse_stacking_and_slicing_agree_with_dense(
        rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()
    ) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        prop_assert_eq!(s.vstack(&s).unwrap().to_dense(), d.vstack(&d).unwrap());
        let keep: Vec<usize> = (0..rows).rev().collect();
        let sel = s.select_rows(&keep).unwrap().to_dense();
        for (new, &old) in keep.iter().enumerate() {
            prop_assert_eq!(sel.row(new), d.row(old));
        }
        let keep_cols: Vec<usize> = (0..cols).step_by(2).collect();
        let sel = s.select_cols(&keep_cols).unwrap().to_dense();
        for (new, &old) in keep_cols.iter().enumerate() {
            prop_assert_eq!(sel.col(new), d.col(old));
        }
    }

    /// Matrix-free PCG agrees with a dense Cholesky solve to ≤1e-8 on
    /// random SPD systems (`BᵀB + boost·I` for random B), applied only
    /// through the matvec closure.
    #[test]
    fn pcg_matches_cholesky_on_random_spd(
        n in 1usize..10,
        boost in 1.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let b_mat = deterministic_matrix(n, n, seed);
        let mut a = b_mat.gram();
        for i in 0..n {
            let v = a[(i, i)] + boost;
            a[(i, i)] = v;
        }
        let rhs: Vec<f64> = deterministic_matrix(n, 1, seed ^ 0x00c0_ffee).into_vec();
        let dense = Cholesky::factor(&a).unwrap().solve(&rhs).unwrap();
        let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        let mut ws = PcgWorkspace::new();
        let mut x = vec![0.0; n];
        let out = ws
            .solve(&diag, 0.0, &rhs, &mut x, |v, y| {
                y.copy_from_slice(&a.matvec(v).unwrap());
                Ok(())
            })
            .unwrap();
        prop_assert!(out.converged, "stalled after {} iterations", out.iterations);
        let scale = 1.0 + dense.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        for (got, want) in x.iter().zip(dense.iter()) {
            prop_assert!((got - want).abs() <= 1e-8 * scale, "pcg {got} vs dense {want}");
        }
    }

    /// The normal-equations PCG solver agrees with the exact solution of
    /// `(A·diag(w)·Aᵀ + scale·ridge·I) x = b` built densely, on random
    /// sparse operators with positive weights.
    #[test]
    fn pcg_normal_solver_matches_dense_normal_equations(
        rows in 1usize..6, cols in 1usize..9, seed in any::<u64>()
    ) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        if s.nnz() == 0 {
            // An all-zero operator leaves only the (denormal) ridge —
            // neither path has a meaningful answer there.
            return;
        }
        let at = s.transpose();
        let w: Vec<f64> = deterministic_matrix(cols, 1, seed ^ 0x9a9a)
            .into_vec()
            .iter()
            .map(|v| v.abs() + 0.1)
            .collect();
        let rhs: Vec<f64> = deterministic_matrix(rows, 1, seed ^ 0x55aa).into_vec();
        // Dense reference with the same scale-aware ridge.
        let ridge = 1e-10;
        let mut awat = s.awat(&w).unwrap();
        let scale = awat.max_abs().max(f64::MIN_POSITIVE);
        for i in 0..rows {
            let v = awat[(i, i)] + scale * ridge + scale * 1e-9;
            awat[(i, i)] = v;
        }
        // Rank-deficient beyond the ridge: the dense reference itself has
        // no unique answer — skip such draws.
        let Ok(chol) = Cholesky::factor(&awat) else {
            return;
        };
        let dense = chol.solve(&rhs).unwrap();
        // PCG against the same boosted operator, matrix-free.
        let mut diag = vec![0.0; rows];
        s.awat_diag_into(&w, &mut diag).unwrap();
        let mut ws = PcgWorkspace::new();
        let mut x = vec![0.0; rows];
        let mut scratch = vec![0.0; cols];
        let out = ws
            .solve(&diag, scale * ridge + scale * 1e-9, &rhs, &mut x, |v, y| {
                s.matvec_transposed_into(v, &mut scratch)?;
                for (t, &wi) in scratch.iter_mut().zip(w.iter()) {
                    *t *= wi;
                }
                s.matvec_into(&scratch, y)
            })
            .unwrap();
        prop_assert!(out.converged);
        let norm = 1.0 + dense.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        for (got, want) in x.iter().zip(dense.iter()) {
            prop_assert!((got - want).abs() <= 1e-8 * norm, "pcg {got} vs dense {want}");
        }
        // The trait-level solver runs the same math and counts its work.
        let mut stats = SolveStats::default();
        let mut via_trait = vec![0.0; rows];
        PcgNormalSolver::new()
            .solve_normal(&s, &at, &w, ridge, &rhs, &mut via_trait, &mut stats)
            .unwrap();
        prop_assert_eq!(stats.pcg_solves, 1);
        prop_assert!(via_trait.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn transpose_reverses_matmul(seed in any::<u64>()) {
        let a = deterministic_matrix(3, 4, seed);
        let b = deterministic_matrix(4, 2, seed ^ 7);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9 * (1.0 + lhs.max_abs())));
    }

    /// Every lane of the batched SoA matvec is *bit-identical* to the
    /// per-bin product, for any batch width (width 1 included): the
    /// batched kernel accumulates each lane in the per-bin order.
    #[test]
    fn batched_matvec_lanes_are_bit_identical_to_per_bin(
        rows in 1usize..9, cols in 1usize..9, batch in 1usize..9, seed in any::<u64>()
    ) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        let lanes = deterministic_lanes(cols, batch, seed ^ 0xb17c);
        let soa = pack_soa(&lanes, batch);
        let mut out = vec![0.0; rows * batch];
        s.matvec_batch_into(&soa, batch, &mut out).unwrap();
        for (k, lane) in lanes.iter().enumerate() {
            let per_bin = s.matvec(lane).unwrap();
            let mut got = vec![0.0; rows];
            gather_lane(&out, &mut got, k, batch);
            prop_assert_eq!(&got, &per_bin, "lane {} of width {}", k, batch);
        }
    }

    /// Batched transposed matvec: same bit-identity contract as the
    /// forward kernel (row-scatter preserves each lane's order).
    #[test]
    fn batched_transposed_matvec_lanes_are_bit_identical_to_per_bin(
        rows in 1usize..9, cols in 1usize..9, batch in 1usize..9, seed in any::<u64>()
    ) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        let lanes = deterministic_lanes(rows, batch, seed ^ 0x7a3d);
        let soa = pack_soa(&lanes, batch);
        let mut out = vec![0.0; cols * batch];
        s.matvec_transposed_batch_into(&soa, batch, &mut out).unwrap();
        for (k, lane) in lanes.iter().enumerate() {
            let per_bin = s.matvec_transposed(lane).unwrap();
            let mut got = vec![0.0; cols];
            gather_lane(&out, &mut got, k, batch);
            prop_assert_eq!(&got, &per_bin, "lane {} of width {}", k, batch);
        }
    }

    /// Every lane of the batched Jacobi-PCG solve is bit-identical to the
    /// per-bin [`PcgWorkspace`] solve of the same system — same iterate,
    /// same iteration count, same convergence flag — regardless of what
    /// the other lanes in the batch are doing.
    #[test]
    fn batched_pcg_lanes_are_bit_identical_to_per_bin_pcg(
        n in 1usize..8, batch in 1usize..6, boost in 1.0f64..20.0, seed in any::<u64>()
    ) {
        // One shared SPD operator (Gram + diagonal boost), B distinct
        // right-hand sides — the estimation workload's shape.
        let b_mat = deterministic_matrix(n, n, seed);
        let mut a = b_mat.gram();
        for i in 0..n {
            let v = a[(i, i)] + boost;
            a[(i, i)] = v;
        }
        let diag_one: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        let lanes = deterministic_lanes(n, batch, seed ^ 0x90c6);
        let soa_b = pack_soa(&lanes, batch);
        let soa_diag = pack_soa(&vec![diag_one.clone(); batch], batch);
        let ridge = vec![0.0; batch];
        let mut ws = PcgBatchWorkspace::new();
        let mut x = vec![0.0; n * batch];
        let mut lane_in = vec![0.0; n];
        let mut lane_out = vec![0.0; n];
        ws.solve(&soa_diag, &ridge, &soa_b, &mut x, batch, |v, y| {
            for k in 0..batch {
                gather_lane(v, &mut lane_in, k, batch);
                lane_out.copy_from_slice(&a.matvec(&lane_in).unwrap());
                scatter_lane(&lane_out, y, k, batch);
            }
            Ok(())
        }).unwrap();
        for (k, lane) in lanes.iter().enumerate() {
            let mut per_bin_ws = PcgWorkspace::new();
            let mut per_bin_x = vec![0.0; n];
            let out = per_bin_ws.solve(&diag_one, 0.0, lane, &mut per_bin_x, |v, y| {
                y.copy_from_slice(&a.matvec(v).unwrap());
                Ok(())
            }).unwrap();
            let mut got = vec![0.0; n];
            gather_lane(&x, &mut got, k, batch);
            prop_assert_eq!(&got, &per_bin_x, "iterate of lane {} of width {}", k, batch);
            prop_assert_eq!(ws.lane_iterations()[k], out.iterations);
            prop_assert_eq!(ws.lane_converged()[k], out.converged);
        }
    }

    /// Symmetric permutation only moves values (never recombines them),
    /// so permuting by a permutation and then by its inverse restores the
    /// matrix bit-identically, and every entry lands where the dense
    /// definition `out[i][j] = in[perm[i]][perm[j]]` says.
    #[test]
    fn symmetric_permutation_round_trips_bit_identically(
        n in 1usize..9, seed in any::<u64>()
    ) {
        let d = deterministic_sparse_dense(n, n, seed);
        let s = SparseMatrix::from_dense(&d);
        let perm = deterministic_perm(n, seed ^ 0x5eed);
        let p = s.permute_symmetric(&perm).unwrap();
        let pd = p.to_dense();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(pd[(i, j)], d[(perm[i], perm[j])]);
            }
        }
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        prop_assert_eq!(&p.permute_symmetric(&inv).unwrap(), &s);
        prop_assert_eq!(&s.permute_symmetric(&(0..n).collect::<Vec<_>>()).unwrap(), &s);
    }

    /// Block-Jacobi-preconditioned PCG converges to the same solution as
    /// scalar-Jacobi PCG (within 1e-10) on random weighted normal systems
    /// `(A·diag(w)·Aᵀ + ridge·I) x = b`, for arbitrary disjoint row
    /// blockings — the preconditioner changes the path, never the fixed
    /// point.
    #[test]
    fn block_jacobi_pcg_matches_scalar_jacobi(
        rows in 2usize..7, cols in 1usize..9, nblocks in 1usize..4, seed in any::<u64>()
    ) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        if s.nnz() == 0 {
            return; // ridge-only operator: nothing to compare
        }
        let w: Vec<f64> = deterministic_matrix(cols, 1, seed ^ 0xb10c)
            .into_vec()
            .iter()
            .map(|v| v.abs() + 0.1)
            .collect();
        let rhs: Vec<f64> = deterministic_matrix(rows, 1, seed ^ 0x1357).into_vec();
        let mut diag = vec![0.0; rows];
        s.awat_diag_into(&w, &mut diag).unwrap();
        let scale = diag.iter().fold(0.0_f64, |m, &v| m.max(v)).max(f64::MIN_POSITIVE);
        // A generous ridge keeps the operator well conditioned, so two
        // solves converged to the 1e-12 relative residual land within
        // 1e-10 of each other even on adversarial draws.
        let ridge = scale * 0.1;
        let mut x_scalar = vec![0.0; rows];
        {
            let mut scratch = vec![0.0; cols];
            let mut ws = PcgWorkspace::new();
            let out = ws.solve(&diag, ridge, &rhs, &mut x_scalar, |v, y| {
                s.matvec_transposed_into(v, &mut scratch)?;
                for (t, &wi) in scratch.iter_mut().zip(w.iter()) {
                    *t *= wi;
                }
                s.matvec_into(&scratch, y)
            }).unwrap();
            prop_assert!(out.converged, "scalar stalled after {}", out.iterations);
        }
        // Deterministic disjoint row blocking from the seed.
        let mut blocks = vec![Vec::new(); nblocks];
        for i in 0..rows {
            blocks[(i + seed as usize) % nblocks].push(i);
        }
        blocks.retain(|b: &Vec<usize>| !b.is_empty());
        let mut bj = BlockJacobiPreconditioner::new();
        bj.factor(&s, &w, ridge, &blocks).unwrap();
        let mut x_block = vec![0.0; rows];
        {
            let mut scratch = vec![0.0; cols];
            let mut ws = PcgWorkspace::new();
            let out = ws.solve_preconditioned(ridge, &rhs, &mut x_block, |v, y| {
                s.matvec_transposed_into(v, &mut scratch)?;
                for (t, &wi) in scratch.iter_mut().zip(w.iter()) {
                    *t *= wi;
                }
                s.matvec_into(&scratch, y)
            }, |r, z| bj.apply(r, z)).unwrap();
            prop_assert!(out.converged, "block stalled after {}", out.iterations);
        }
        let norm = x_scalar.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        for (a, b) in x_scalar.iter().zip(x_block.iter()) {
            prop_assert!(
                (a - b).abs() <= 1e-10 * (1.0 + norm),
                "scalar {} vs block {} (norm {})", a, b, norm
            );
        }
    }

    /// The `f32`-compute batched matvec stays within the documented
    /// reduced-precision envelope: each product is rounded to `f32`
    /// (relative error ~1e-7 per term, amplified by cancellation), while
    /// the `f64` accumulator keeps the sum itself full-precision. The
    /// bound below compares against the magnitude-sum of each output
    /// element, which is what single-precision products are relative to.
    #[test]
    fn batched_f32_matvec_is_within_documented_tolerance(
        rows in 1usize..9, cols in 1usize..9, batch in 1usize..9, seed in any::<u64>()
    ) {
        let d = deterministic_sparse_dense(rows, cols, seed);
        let s = SparseMatrix::from_dense(&d);
        let lanes = deterministic_lanes(cols, batch, seed ^ 0xf32f);
        let soa = pack_soa(&lanes, batch);
        let mut out = vec![0.0; rows * batch];
        s.matvec_batch_f32_into(&soa, batch, &mut out).unwrap();
        for (k, lane) in lanes.iter().enumerate() {
            let exact = s.matvec(lane).unwrap();
            let mut got = vec![0.0; rows];
            gather_lane(&out, &mut got, k, batch);
            for (i, (&g, &e)) in got.iter().zip(exact.iter()).enumerate() {
                // Magnitude sum of the row's products: the scale the
                // per-term f32 rounding is relative to.
                let (row_cols, row_vals) = s.row(i);
                let mag: f64 = row_cols.iter().zip(row_vals.iter())
                    .map(|(&c, &a)| (a * lane[c]).abs())
                    .sum();
                prop_assert!(
                    (g - e).abs() <= 1e-6 * (1.0 + mag),
                    "lane {} element {}: f32 {} vs f64 {} (scale {})", k, i, g, e, mag
                );
            }
        }
    }
}

/// Deterministic pseudo-random matrix from a seed (splitmix64), so proptest
/// shrinking stays meaningful.
fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z = z ^ (z >> 31);
        // Map to [-10, 10).
        (z as f64 / u64::MAX as f64) * 20.0 - 10.0
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data).expect("sized data")
}

/// Deterministic permutation of `0..n` from a seed (splitmix64-driven
/// Fisher–Yates).
fn deterministic_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// `batch` deterministic per-lane vectors of length `n`, decorrelated by
/// lane index.
fn deterministic_lanes(n: usize, batch: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..batch)
        .map(|k| deterministic_matrix(n, 1, seed ^ (k as u64).wrapping_mul(0x9e37)).into_vec())
        .collect()
}

/// Packs per-lane vectors into the SoA layout (`element c of lane k at
/// soa[c*B + k]`).
fn pack_soa(lanes: &[Vec<f64>], batch: usize) -> Vec<f64> {
    let n = lanes[0].len();
    let mut soa = vec![0.0; n * batch];
    for (k, lane) in lanes.iter().enumerate() {
        scatter_lane(lane, &mut soa, k, batch);
    }
    soa
}

/// Like [`deterministic_matrix`] but ~70% of the entries are exact zeros,
/// mimicking routing-matrix sparsity.
fn deterministic_sparse_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = deterministic_matrix(rows, cols, seed);
    let gate = deterministic_matrix(rows, cols, seed ^ 0x0f0f_f0f0);
    for (v, g) in m.as_mut_slice().iter_mut().zip(gate.as_slice().iter()) {
        if *g < 4.0 {
            // gate is uniform on [-10, 10): ~70% of entries zeroed.
            *v = 0.0;
        }
    }
    m
}
