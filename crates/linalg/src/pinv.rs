//! Moore–Penrose pseudo-inverse.
//!
//! Materializes `A⁺ = V Σ⁺ Uᵀ` from the Jacobi SVD. The stable-fP
//! estimation prior (paper Eq. 8) premultiplies ingress/egress counts by
//! `(QΦ)⁺` once per calibration week; materializing the pseudo-inverse and
//! reusing it across the week's bins is the efficient formulation.

use crate::matrix::Matrix;
use crate::svd::Svd;
use crate::Result;

/// Computes the Moore–Penrose pseudo-inverse of `a`.
///
/// Singular values at or below `tolerance` (default: LAPACK-style
/// `max(m,n)·eps·σ_max`) are treated as zero, which makes the routine safe
/// on the rank-deficient operators that arise from redundant
/// ingress/egress constraints.
///
/// # Examples
///
/// ```
/// use ic_linalg::{pseudo_inverse, Matrix};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]).unwrap();
/// let p = pseudo_inverse(&a, None).unwrap();
/// assert_eq!(p.shape(), (2, 3));
/// assert!((p[(1, 1)] - 0.5).abs() < 1e-12);
/// ```
pub fn pseudo_inverse(a: &Matrix, tolerance: Option<f64>) -> Result<Matrix> {
    let svd = Svd::factor(a)?;
    let tol = tolerance.unwrap_or_else(|| svd.default_tolerance());
    let (m, _) = a.shape();
    let k = svd.singular_values().len();
    // A⁺ = V Σ⁺ Uᵀ: build (Σ⁺ Uᵀ) first, then multiply by V.
    let mut sut = Matrix::zeros(k, m);
    for r in 0..k {
        let s = svd.singular_values()[r];
        if s > tol {
            for c in 0..m {
                sut[(r, c)] = svd.u()[(c, r)] / s;
            }
        }
    }
    svd.v().matmul(&sut)
}

/// Verifies the four Moore–Penrose conditions to tolerance `tol`.
///
/// Exposed so that property tests (and downstream sanity checks) can assert
/// the defining axioms:
/// 1. `A A⁺ A = A`
/// 2. `A⁺ A A⁺ = A⁺`
/// 3. `(A A⁺)ᵀ = A A⁺`
/// 4. `(A⁺ A)ᵀ = A⁺ A`
pub fn satisfies_moore_penrose(a: &Matrix, p: &Matrix, tol: f64) -> bool {
    let Ok(ap) = a.matmul(p) else { return false };
    let Ok(pa) = p.matmul(a) else { return false };
    let Ok(apa) = ap.matmul(a) else { return false };
    let Ok(pap) = pa.matmul(p) else { return false };
    apa.approx_eq(a, tol)
        && pap.approx_eq(p, tol)
        && ap.approx_eq(&ap.transpose(), tol)
        && pa.approx_eq(&pa.transpose(), tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let p = pseudo_inverse(&a, None).unwrap();
        let prod = a.matmul(&p).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn pinv_satisfies_moore_penrose_full_rank() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let p = pseudo_inverse(&a, None).unwrap();
        assert!(satisfies_moore_penrose(&a, &p, 1e-9));
    }

    #[test]
    fn pinv_satisfies_moore_penrose_rank_deficient() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[-1.0, -2.0, -3.0]]).unwrap();
        let p = pseudo_inverse(&a, None).unwrap();
        assert!(satisfies_moore_penrose(&a, &p, 1e-9));
    }

    #[test]
    fn pinv_of_zero_is_zero() {
        let a = Matrix::zeros(2, 3);
        let p = pseudo_inverse(&a, None).unwrap();
        assert_eq!(p.shape(), (3, 2));
        assert!(p.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pinv_of_wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0]]).unwrap();
        let p = pseudo_inverse(&a, None).unwrap();
        assert_eq!(p.shape(), (3, 2));
        assert!(satisfies_moore_penrose(&a, &p, 1e-9));
    }

    #[test]
    fn pinv_transpose_identity() {
        // (Aᵀ)⁺ = (A⁺)ᵀ.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let p1 = pseudo_inverse(&a.transpose(), None).unwrap();
        let p2 = pseudo_inverse(&a, None).unwrap().transpose();
        assert!(p1.approx_eq(&p2, 1e-9));
    }

    #[test]
    fn custom_tolerance_truncates_small_singular_values() {
        let a = Matrix::diag(&[1.0, 1e-13]);
        // Default tolerance keeps both; a coarse tolerance kills the small one.
        let p = pseudo_inverse(&a, Some(1e-6)).unwrap();
        assert!((p[(0, 0)] - 1.0).abs() < 1e-12);
        assert_eq!(p[(1, 1)], 0.0);
    }

    #[test]
    fn moore_penrose_check_rejects_wrong_inverse() {
        let a = Matrix::identity(2);
        let wrong = Matrix::filled(2, 2, 0.5);
        assert!(!satisfies_moore_penrose(&a, &wrong, 1e-9));
    }

    #[test]
    fn moore_penrose_check_rejects_shape_mismatch() {
        let a = Matrix::identity(2);
        let wrong = Matrix::zeros(3, 3);
        assert!(!satisfies_moore_penrose(&a, &wrong, 1e-9));
    }
}
