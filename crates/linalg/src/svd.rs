//! One-sided Jacobi singular value decomposition.
//!
//! The stable-fP estimation prior (paper Eq. 8–9) pseudo-inverts the
//! operator `QΦ`, which is rank-deficient whenever ingress and egress
//! counts carry redundant information (their totals always agree). A
//! rank-revealing SVD is therefore required; one-sided Jacobi is simple,
//! numerically robust, and plenty fast at traffic-matrix scales (a few
//! hundred columns).

use crate::matrix::{dot, norm2, Matrix};
use crate::{rank_tolerance, LinalgError, Result};

/// Thin singular value decomposition `A = U Σ Vᵀ`.
///
/// For an `m x n` input with `m >= n`: `U` is `m x n` with orthonormal
/// columns, `Σ` is the vector of `n` non-negative singular values in
/// non-increasing order, and `V` is `n x n` orthogonal. Inputs with
/// `m < n` are factored via the transpose.
///
/// # Examples
///
/// ```
/// use ic_linalg::{Matrix, Svd};
///
/// let a = Matrix::diag(&[3.0, 2.0]);
/// let svd = Svd::factor(&a).unwrap();
/// assert!((svd.singular_values()[0] - 3.0).abs() < 1e-12);
/// assert!((svd.singular_values()[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    sigma: Vec<f64>,
    v: Matrix,
    /// True when the factorization was computed on `Aᵀ` and U/V are swapped
    /// views of the original problem.
    transposed: bool,
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 60;

impl Svd {
    /// Computes the thin SVD of `a`.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument("svd: empty matrix"));
        }
        if !a.all_finite() {
            return Err(LinalgError::InvalidArgument(
                "svd: input contains non-finite values",
            ));
        }
        if m < n {
            let inner = Svd::factor(&a.transpose())?;
            return Ok(Svd {
                u: inner.v,
                sigma: inner.sigma,
                v: inner.u,
                transposed: true,
            });
        }
        // One-sided Jacobi: orthogonalize the columns of W = A V by plane
        // rotations accumulated into V.
        let mut w = a.clone();
        let mut v = Matrix::identity(n);
        let eps = 1e-15;
        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0_f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    let col_p: Vec<f64> = w.col(p);
                    let col_q: Vec<f64> = w.col(q);
                    let alpha = dot(&col_p, &col_p);
                    let beta = dot(&col_q, &col_q);
                    let gamma = dot(&col_p, &col_q);
                    if alpha * beta == 0.0 {
                        continue;
                    }
                    let denom = (alpha * beta).sqrt();
                    off = off.max(gamma.abs() / denom);
                    if gamma.abs() <= eps * denom {
                        continue;
                    }
                    // Jacobi rotation zeroing the (p,q) off-diagonal of WᵀW.
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        w[(i, p)] = c * wp - s * wq;
                        w[(i, q)] = s * wp + c * wq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if off <= eps {
                converged = true;
                break;
            }
        }
        if !converged {
            // One-sided Jacobi converges in practice well before MAX_SWEEPS
            // on finite input (validated above).
            return Err(LinalgError::NoConvergence {
                routine: "jacobi_svd",
                iterations: MAX_SWEEPS,
            });
        }
        // Extract singular values as column norms, normalize U, sort.
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n).map(|j| norm2(&w.col(j))).collect();
        order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).expect("finite norms"));
        let mut u = Matrix::zeros(m, n);
        let mut vv = Matrix::zeros(n, n);
        let mut sigma = vec![0.0; n];
        for (dst, &src) in order.iter().enumerate() {
            sigma[dst] = norms[src];
            if norms[src] > 0.0 {
                for i in 0..m {
                    u[(i, dst)] = w[(i, src)] / norms[src];
                }
            }
            for i in 0..n {
                vv[(i, dst)] = v[(i, src)];
            }
        }
        Ok(Svd {
            u,
            sigma,
            v: vv,
            transposed: false,
        })
    }

    /// Left singular vectors (orthonormal columns).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Singular values in non-increasing order.
    pub fn singular_values(&self) -> &[f64] {
        &self.sigma
    }

    /// Right singular vectors.
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Whether the decomposition was computed through the transpose.
    pub fn was_transposed(&self) -> bool {
        self.transposed
    }

    /// Numerical rank with a LAPACK-style tolerance.
    pub fn rank(&self) -> usize {
        let tol = self.default_tolerance();
        self.sigma.iter().filter(|&&s| s > tol).count()
    }

    /// The tolerance used by [`Svd::rank`] and pseudo-inversion.
    pub fn default_tolerance(&self) -> f64 {
        let largest = self.sigma.first().copied().unwrap_or(0.0);
        rank_tolerance(self.u.rows(), self.v.rows(), largest)
    }

    /// Condition number `σ_max / σ_min` (infinite for rank-deficient).
    pub fn condition_number(&self) -> f64 {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        let smin = self.sigma.last().copied().unwrap_or(0.0);
        if smin <= self.default_tolerance() {
            f64::INFINITY
        } else {
            smax / smin
        }
    }

    /// Reconstructs `A = U Σ Vᵀ` (mainly for testing and diagnostics).
    pub fn reconstruct(&self) -> Result<Matrix> {
        let us = {
            let mut us = self.u.clone();
            for j in 0..self.sigma.len() {
                for i in 0..us.rows() {
                    us[(i, j)] *= self.sigma[j];
                }
            }
            us
        };
        us.matmul(&self.v.transpose())
    }

    /// Applies the pseudo-inverse to a vector: `x = V Σ⁺ Uᵀ b`.
    ///
    /// Singular values at or below `tolerance` are treated as zero; pass
    /// `None` to use [`Svd::default_tolerance`].
    pub fn pinv_apply(&self, b: &[f64], tolerance: Option<f64>) -> Result<Vec<f64>> {
        if b.len() != self.u.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "pinv_apply",
                lhs: self.u.shape(),
                rhs: (b.len(), 1),
            });
        }
        let tol = tolerance.unwrap_or_else(|| self.default_tolerance());
        let utb = self.u.matvec_transposed(b)?;
        let scaled: Vec<f64> = utb
            .iter()
            .zip(self.sigma.iter())
            .map(|(&x, &s)| if s > tol { x / s } else { 0.0 })
            .collect();
        self.v.matvec(&scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::diag(&[1.0, 5.0, 3.0]);
        let svd = Svd::factor(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[0] - 5.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
        assert_eq!(svd.rank(), 3);
    }

    #[test]
    fn svd_reconstructs_general_matrix() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 10.0],
            &[1.0, -1.0, 0.5],
        ])
        .unwrap();
        let svd = Svd::factor(&a).unwrap();
        let back = svd.reconstruct().unwrap();
        assert!(back.approx_eq(&a, 1e-9));
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = Matrix::from_rows(&[
            &[2.0, 0.0, 1.0],
            &[-1.0, 3.0, 0.0],
            &[0.5, 1.0, 2.0],
            &[1.0, 1.0, 1.0],
        ])
        .unwrap();
        let svd = Svd::factor(&a).unwrap();
        assert!(svd.u().gram().approx_eq(&Matrix::identity(3), 1e-10));
        assert!(svd.v().gram().approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn rank_deficient_detected() {
        // Rank-1 matrix.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let svd = Svd::factor(&a).unwrap();
        assert_eq!(svd.rank(), 1);
        assert!(svd.condition_number().is_infinite());
    }

    #[test]
    fn wide_matrix_goes_through_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 2.0, 0.0]]).unwrap();
        let svd = Svd::factor(&a).unwrap();
        assert!(svd.was_transposed());
        let back = svd.reconstruct().unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn pinv_apply_solves_consistent_system() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]).unwrap();
        let svd = Svd::factor(&a).unwrap();
        let x = svd.pinv_apply(&[2.0, 8.0, 0.0], None).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pinv_apply_ignores_null_directions() {
        let a = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let svd = Svd::factor(&a).unwrap();
        let x = svd.pinv_apply(&[2.0], None).unwrap();
        // Minimum-norm solution of x + y = 2.
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pinv_apply_validates_length() {
        let svd = Svd::factor(&Matrix::identity(2)).unwrap();
        assert!(svd.pinv_apply(&[1.0, 2.0, 3.0], None).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Svd::factor(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(Svd::factor(&a).is_err());
    }

    #[test]
    fn zero_matrix_has_zero_rank() {
        let a = Matrix::zeros(3, 2);
        let svd = Svd::factor(&a).unwrap();
        assert_eq!(svd.rank(), 0);
        assert_eq!(svd.singular_values(), &[0.0, 0.0]);
    }
}
