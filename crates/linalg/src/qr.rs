//! Householder QR factorization and least-squares solves.
//!
//! The Section 5.1 fitting program reduces to a sequence of linear
//! least-squares sub-problems; the tomogravity refinement (Section 6) needs
//! minimum-norm solutions of consistent under-determined systems. Both are
//! served by this module's [`Qr`] factorization.

use crate::matrix::{axpy, dot, norm2, Matrix};
use crate::{rank_tolerance, LinalgError, Result};

/// Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// The factorization is stored compactly: the upper triangle of the working
/// matrix holds `R`, and the Householder vectors live below the diagonal
/// (LAPACK-style). `Q` is applied implicitly, never materialized, except by
/// [`Qr::q_thin`] for callers that need it.
///
/// # Examples
///
/// ```
/// use ic_linalg::{Matrix, Qr};
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]).unwrap();
/// let qr = Qr::factor(&a).unwrap();
/// let x = qr.solve_least_squares(&[2.0, 6.0, 5.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factor: R above the diagonal, Householder vectors below.
    packed: Matrix,
    /// Householder scalar coefficients tau_k.
    tau: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Qr {
    /// Factors `a` (requires `rows >= cols` and a non-empty matrix).
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument("qr: empty matrix"));
        }
        if m < n {
            return Err(LinalgError::InvalidArgument(
                "qr: requires rows >= cols (factor the transpose instead)",
            ));
        }
        let mut w = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector annihilating w[k+1.., k].
            let col: Vec<f64> = (k..m).map(|i| w[(i, k)]).collect();
            let alpha = norm2(&col);
            if alpha == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let a0 = col[0];
            let sign = if a0 >= 0.0 { 1.0 } else { -1.0 };
            let v0 = a0 + sign * alpha;
            // v = [1, col[1..]/v0]; beta = sign*alpha is the new diagonal.
            let mut v = vec![1.0];
            v.extend(col[1..].iter().map(|&c| c / v0));
            let vnorm2: f64 = v.iter().map(|&x| x * x).sum();
            tau[k] = 2.0 / vnorm2;
            // Store new column k: diagonal = -sign*alpha, below: v[1..].
            w[(k, k)] = -sign * alpha;
            for (off, &vv) in v.iter().enumerate().skip(1) {
                w[(k + off, k)] = vv;
            }
            // Apply reflector to the trailing columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for (off, &vv) in v.iter().enumerate() {
                    s += vv * w[(k + off, j)];
                }
                s *= tau[k];
                for (off, &vv) in v.iter().enumerate() {
                    w[(k + off, j)] -= s * vv;
                }
            }
        }
        Ok(Qr {
            packed: w,
            tau,
            rows: m,
            cols: n,
        })
    }

    /// Applies `Qᵀ` to a vector of length `rows` in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.rows, self.cols);
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.packed[(i, k)] * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.packed[(i, k)];
            }
        }
    }

    /// Applies `Q` to a vector of length `rows` in place.
    fn apply_q(&self, b: &mut [f64]) {
        let (m, n) = (self.rows, self.cols);
        for k in (0..n).rev() {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.packed[(i, k)] * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.packed[(i, k)];
            }
        }
    }

    /// Back-substitution `R x = y` over the leading `cols` entries of `y`.
    fn solve_r(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.cols;
        let tol = rank_tolerance(self.rows, n, self.r_max_abs());
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.packed[(i, i)];
            if rii.abs() <= tol {
                return Err(LinalgError::Singular);
            }
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    fn r_max_abs(&self) -> f64 {
        let mut m = 0.0_f64;
        for i in 0..self.cols {
            for j in i..self.cols {
                m = m.max(self.packed[(i, j)].abs());
            }
        }
        m
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// `b` must have length `rows`. Fails with [`LinalgError::Singular`]
    /// when `A` is numerically rank-deficient (use
    /// [`crate::pseudo_inverse`] in that case).
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        self.solve_r(&y)
    }

    /// Solves least squares for every column of `b`, returning an
    /// `cols x b.cols()` solution matrix.
    pub fn solve_least_squares_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve_matrix",
                lhs: (self.rows, self.cols),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_least_squares(&col)?;
            for (i, &xi) in x.iter().enumerate() {
                out[(i, j)] = xi;
            }
        }
        Ok(out)
    }

    /// Returns the thin `Q` factor (`rows x cols`, orthonormal columns).
    pub fn q_thin(&self) -> Matrix {
        let (m, n) = (self.rows, self.cols);
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            let mut e = vec![0.0; m];
            e[j] = 1.0;
            self.apply_q(&mut e);
            for i in 0..m {
                q[(i, j)] = e[i];
            }
        }
        q
    }

    /// Returns the square upper-triangular `R` factor (`cols x cols`).
    pub fn r(&self) -> Matrix {
        let n = self.cols;
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// Numerical rank estimate from the diagonal of `R`.
    pub fn rank(&self) -> usize {
        let tol = rank_tolerance(self.rows, self.cols, self.r_max_abs());
        (0..self.cols)
            .filter(|&i| self.packed[(i, i)].abs() > tol)
            .count()
    }
}

/// Solves a general linear system or least-squares problem `A x ≈ b`.
///
/// * `m >= n`: QR least squares (unique solution when `A` has full column
///   rank).
/// * `m < n`: minimum-norm solution of the under-determined system via QR of
///   `Aᵀ`: `x = Qᵀ…` (i.e. `x = Aᵀ (A Aᵀ)⁻¹ b` computed stably).
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op: "solve",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if m >= n {
        Qr::factor(a)?.solve_least_squares(b)
    } else {
        // Minimum-norm: factor Aᵀ = QR, then x = Q (Rᵀ)⁻¹ b.
        let at = a.transpose();
        let qr = Qr::factor(&at)?;
        // Forward-substitution on Rᵀ y = b.
        let r = qr.r();
        let k = r.rows();
        let tol = rank_tolerance(n, m, r.max_abs());
        let mut y = vec![0.0; k];
        for i in 0..k {
            let rii = r[(i, i)];
            if rii.abs() <= tol {
                return Err(LinalgError::Singular);
            }
            let mut s = b[i];
            for j in 0..i {
                s -= r[(j, i)] * y[j];
            }
            y[i] = s / rii;
        }
        // x = Q y (thin Q has shape n x m).
        let q = qr.q_thin();
        let mut x = vec![0.0; n];
        for i in 0..n {
            x[i] = dot(q.row(i), &y);
        }
        Ok(x)
    }
}

/// Residual `b − A x` as a fresh vector.
pub fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    let ax = a.matvec(x)?;
    if ax.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "residual",
            lhs: (ax.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    let mut r = b.to_vec();
    axpy(-1.0, &ax, &mut r);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() <= tol, "{a:?} !~ {b:?}");
        }
    }

    #[test]
    fn factor_rejects_bad_shapes() {
        assert!(Qr::factor(&Matrix::zeros(0, 0)).is_err());
        assert!(Qr::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn qr_reconstructs_a() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[3.0, -1.0, 1.0],
            &[0.0, 4.0, 2.0],
            &[2.0, 2.0, -3.0],
        ])
        .unwrap();
        let qr = Qr::factor(&a).unwrap();
        let q = qr.q_thin();
        let r = qr.r();
        let back = q.matmul(&r).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.0, 4.0]]).unwrap();
        let q = Qr::factor(&a).unwrap().q_thin();
        let qtq = q.gram();
        assert!(qtq.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        assert_close(&x, &x_true, 1e-12);
    }

    #[test]
    fn overdetermined_least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]).unwrap();
        let b = [6.0, 5.0, 7.0, 10.0];
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        // Known regression line: intercept 3.5, slope 1.4.
        assert_close(&x, &[3.5, 1.4], 1e-10);
    }

    #[test]
    fn least_squares_residual_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [1.0, 0.0, 2.0];
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        let r = residual(&a, &x, &b).unwrap();
        let atr = a.matvec_transposed(&r).unwrap();
        assert_close(&atr, &[0.0, 0.0], 1e-10);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(qr.rank(), 1);
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn underdetermined_minimum_norm_solution() {
        // x + y = 2 has minimum-norm solution (1, 1).
        let a = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let x = solve(&a, &[2.0]).unwrap();
        assert_close(&x, &[1.0, 1.0], 1e-12);
    }

    #[test]
    fn underdetermined_solution_satisfies_system() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 1.0], &[0.0, 1.0, -1.0, 2.0]]).unwrap();
        let b = [4.0, 1.0];
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert_close(&ax, &b, 1e-10);
        // Minimum-norm solution is in the row space: x = Aᵀ w for some w.
        // Verify by projecting x onto the null space and checking it is 0:
        // null-space component has zero dot with both rows, so check
        // ‖x‖² == ‖P_rowspace x‖² via solving AAᵀ w = Ax.
        let aat = a.matmul(&a.transpose()).unwrap();
        let w = solve(&aat, &ax).unwrap();
        let x_row = a.matvec_transposed(&w).unwrap();
        assert_close(&x, &x_row, 1e-8);
    }

    #[test]
    fn solve_validates_rhs_length() {
        let a = Matrix::identity(2);
        assert!(solve(&a, &[1.0]).is_err());
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0], &[0.0, 0.0]]).unwrap();
        let x = Qr::factor(&a)
            .unwrap()
            .solve_least_squares_matrix(&b)
            .unwrap();
        let expect = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap();
        assert!(x.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn rank_of_full_rank_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(Qr::factor(&a).unwrap().rank(), 2);
    }

    #[test]
    fn qr_on_zero_column() {
        // First column all zero: reflector is skipped (tau = 0).
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(qr.rank(), 1);
    }
}
