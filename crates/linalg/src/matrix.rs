//! Row-major dense matrix type and elementwise / BLAS-like operations.
//!
//! [`Matrix`] is the workhorse container for every numerical pipeline in the
//! workspace: traffic matrices organized as vectors, routing matrices,
//! design matrices of the fitting sub-problems, and the `Φ`/`Q` operators of
//! the stable-fP estimation prior all live in this type.

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// The storage is a single `Vec<f64>` of length `rows * cols`; element
/// `(i, j)` lives at index `i * cols + j`. Indexing via `m[(i, j)]` panics
/// on out-of-bounds exactly like slice indexing; all *algebraic* operations
/// return [`Result`] and never panic on shape errors.
///
/// # Examples
///
/// ```
/// use ic_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows *
    /// cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(
                "data length does not match rows * cols",
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the rows are ragged or
    /// the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidArgument("from_rows: empty input"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::InvalidArgument("from_rows: ragged rows"));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a column vector (shape `n x 1`) from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Builds a row vector (shape `1 x n`) from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    pub fn diag(values: &[f64]) -> Self {
        let n = values.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in values.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major storage.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows` (consistent with slice indexing).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh `Vec`.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Checked element access; `None` when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Sets element `(i, j)`, returning an error when out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        if i < self.rows && j < self.cols {
            self.data[i * self.cols + j] = value;
            Ok(())
        } else {
            Err(LinalgError::InvalidArgument("set: index out of bounds"))
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless
    /// `self.cols == rhs.rows`. The kernel is a cache-friendly i-k-j loop.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless `self.cols == v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = dot(row, v);
        }
        Ok(out)
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    ///
    /// Computed without materializing the transpose.
    pub fn matvec_transposed(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transposed",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &r) in out.iter_mut().zip(row.iter()) {
                *o += vi * r;
            }
        }
        Ok(out)
    }

    /// Computes the Gram matrix `selfᵀ * self` (symmetric `cols x cols`)
    /// without materializing the transpose.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for i in 0..self.rows {
            let row = &self.data[i * n..(i + 1) * n];
            for (a, &ra) in row.iter().enumerate() {
                if ra == 0.0 {
                    continue;
                }
                for (b, &rb) in row.iter().enumerate().skip(a) {
                    out.data[a * n + b] += ra * rb;
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..n {
            for b in (a + 1)..n {
                out.data[b * n + a] = out.data[a * n + b];
            }
        }
        out
    }

    /// Elementwise sum; shapes must match.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product; shapes must match.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every entry by `s`, in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(s);
        out
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        norm2(&self.data)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Per-row sums as a vector of length `rows`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Per-column sums as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`; row counts must match.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(rhs.row(i));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Vertical concatenation `[self ; rhs]`; column counts must match.
    ///
    /// This builds the block operator `Q = [H; G]` of the stable-fP prior
    /// (paper Section 6.2).
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + rhs.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// True when every entry is finite (no NaN / infinities).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Approximate equality: every entry within `tol` of `rhs`'s.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(rhs.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl core::fmt::Display for Matrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length (programmer error at call sites
/// inside this workspace; all external entry points validate shapes first).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm of a slice, computed with scaling to avoid overflow.
pub fn norm2(v: &[f64]) -> f64 {
    let max = v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
    if max == 0.0 || !max.is_finite() {
        return if max.is_finite() { 0.0 } else { f64::INFINITY };
    }
    let sum: f64 = v.iter().map(|&x| (x / max) * (x / max)).sum();
    max * sum.sqrt()
}

/// `axpy`: `y += alpha * x` over equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn indexing_round_trips() {
        let mut m = sample();
        assert_eq!(m[(1, 2)], 6.0);
        m[(1, 2)] = 9.0;
        assert_eq!(m[(1, 2)], 9.0);
        assert_eq!(m.get(5, 0), None);
        assert!(m.set(0, 0, 7.0).is_ok());
        assert!(m.set(9, 9, 7.0).is_err());
        assert_eq!(m[(0, 0)], 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(matches!(
            a.matmul(&a),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = sample();
        let v = [1.0, -1.0, 2.0];
        let got = m.matvec(&v).unwrap();
        assert_eq!(got, vec![5.0, 11.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = sample();
        let v = [1.0, 2.0];
        let got = m.matvec_transposed(&v).unwrap();
        let expect = m.transpose().matvec(&v).unwrap();
        assert_eq!(got, expect);
        assert!(m.matvec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = sample();
        let g = m.gram();
        let expect = m.transpose().matmul(&m).unwrap();
        assert!(g.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 10.0]);
        let c = Matrix::zeros(2, 2);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn scaling_and_map() {
        let mut a = Matrix::from_rows(&[&[1.0, -2.0]]).unwrap();
        a.scale_in_place(3.0);
        assert_eq!(a.as_slice(), &[3.0, -6.0]);
        assert_eq!(a.scaled(0.5).as_slice(), &[1.5, -3.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn norms_and_sums() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.sum(), 7.0);
        assert_eq!(m.max_abs(), 4.0);
        let s = sample();
        assert_eq!(s.row_sums(), vec![6.0, 15.0]);
        assert_eq!(s.col_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let c = Matrix::zeros(2, 3);
        assert!(a.hstack(&c).is_err());
        assert!(a.vstack(&c).is_err());
    }

    #[test]
    fn rows_cols_views() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn finite_checks() {
        let mut m = sample();
        assert!(m.all_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn norm2_handles_extremes() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        // Values that would overflow a naive sum of squares.
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!((n - big * core::f64::consts::SQRT_2).abs() / n < 1e-12);
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }

    #[test]
    fn diag_builds_diagonal() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.shape(), (3, 3));
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }
}
