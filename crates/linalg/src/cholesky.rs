//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The per-timestep activity solves of the Section 5.1 fitting program share
//! one normal-equations matrix `MᵀM` across all 2016 bins of a week; we
//! factor it once with [`Cholesky`] and back-substitute per bin, which is
//! what makes whole-week fits cheap.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use ic_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
/// let ch = Cholesky::factor(&a).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is trusted (callers in this workspace construct Gram
    /// matrices, which are symmetric by construction). Returns
    /// [`LinalgError::NotPositiveDefinite`] when a non-positive pivot is
    /// encountered.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::InvalidArgument("cholesky: matrix not square"));
        }
        if n == 0 {
            return Err(LinalgError::InvalidArgument("cholesky: empty matrix"));
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, i)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors with a ridge term: `A + ridge * I`.
    ///
    /// Used to regularize nearly-singular normal equations (e.g. a
    /// preference solve when one node carries no traffic).
    pub fn factor_regularized(a: &Matrix, ridge: f64) -> Result<Self> {
        if ridge < 0.0 {
            return Err(LinalgError::InvalidArgument(
                "cholesky: ridge must be non-negative",
            ));
        }
        let mut work = a.clone();
        let n = work.rows().min(work.cols());
        for i in 0..n {
            work[(i, i)] += ridge;
        }
        Cholesky::factor(&work)
    }

    /// Solves `A x = b` via forward + back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for (i, &v) in x.iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Determinant of `A`, computed as `Π L_ii²`.
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.l.rows() {
            let lii = self.l[(i, i)];
            d *= lii * lii;
        }
        d
    }

    /// Log-determinant of `A` (numerically safer than `det().ln()`).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a random-ish B, guaranteed SPD.
        let b = Matrix::from_rows(&[
            &[1.0, 2.0, 0.0],
            &[0.0, 1.0, 3.0],
            &[2.0, 0.0, 1.0],
            &[1.0, 1.0, 1.0],
        ])
        .unwrap();
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.l();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_round_trips() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = ch.solve(&b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(Cholesky::factor(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_negative_definite() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn ridge_rescues_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        let ch = Cholesky::factor_regularized(&a, 1e-6).unwrap();
        let x = ch.solve(&[2.0, 2.0]).unwrap();
        // Regularized solution is near (1, 1).
        assert!((x[0] - 1.0).abs() < 1e-3);
        assert!((x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_must_be_nonnegative() {
        let a = Matrix::identity(2);
        assert!(Cholesky::factor_regularized(&a, -1.0).is_err());
    }

    #[test]
    fn solve_validates_length() {
        let ch = Cholesky::factor(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = ch.solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-9));
        assert!(ch.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn determinant_of_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!((ch.det() - 1.0).abs() < 1e-12);
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Matrix::diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 24.0).abs() < 1e-9);
        assert!((ch.log_det() - 24.0_f64.ln()).abs() < 1e-12);
    }
}
