//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The per-timestep activity solves of the Section 5.1 fitting program share
//! one normal-equations matrix `MᵀM` across all 2016 bins of a week; we
//! factor it once with [`Cholesky`] and back-substitute per bin, which is
//! what makes whole-week fits cheap.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use ic_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
/// let ch = Cholesky::factor(&a).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is trusted (callers in this workspace construct Gram
    /// matrices, which are symmetric by construction). Returns
    /// [`LinalgError::NotPositiveDefinite`] when a non-positive pivot is
    /// encountered.
    pub fn factor(a: &Matrix) -> Result<Self> {
        validate_square(a)?;
        let mut l = a.clone();
        factor_in_place(&mut l)?;
        Ok(Cholesky { l })
    }

    /// Factors with a ridge term: `A + ridge * I`.
    ///
    /// Used to regularize nearly-singular normal equations (e.g. a
    /// preference solve when one node carries no traffic).
    pub fn factor_regularized(a: &Matrix, ridge: f64) -> Result<Self> {
        if ridge < 0.0 {
            return Err(LinalgError::InvalidArgument(
                "cholesky: ridge must be non-negative",
            ));
        }
        let mut work = a.clone();
        let n = work.rows().min(work.cols());
        for i in 0..n {
            work[(i, i)] += ridge;
        }
        Cholesky::factor(&work)
    }

    /// Solves `A x = b` via forward + back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.l.rows()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer (allocation-free;
    /// `x` may not alias `b`). Bit-identical to [`Cholesky::solve`].
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        solve_with_factor(&self.l, b, x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for (i, &v) in x.iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Determinant of `A`, computed as `Π L_ii²`.
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.l.rows() {
            let lii = self.l[(i, i)];
            d *= lii * lii;
        }
        d
    }

    /// Log-determinant of `A` (numerically safer than `det().ln()`).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

fn validate_square(a: &Matrix) -> Result<()> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::InvalidArgument("cholesky: matrix not square"));
    }
    if n == 0 {
        return Err(LinalgError::InvalidArgument("cholesky: empty matrix"));
    }
    Ok(())
}

/// In-place lower-triangular factorization: on entry `l` holds `A` (only
/// the lower triangle is read), on success it holds `L` with a zeroed
/// upper triangle.
fn factor_in_place(l: &mut Matrix) -> Result<()> {
    let n = l.rows();
    for i in 0..n {
        for j in 0..=i {
            let mut s = l[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[(i, i)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
        // Zero the stale upper-triangle entries of this row so `L` is a
        // proper lower-triangular matrix for consumers of [`Cholesky::l`].
        for j in (i + 1)..n {
            l[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Forward + back substitution with a given factor, into `x`.
///
/// Uses `x` as the intermediate buffer: the forward pass writes `y` into
/// `x`, and the backward pass overwrites each slot only after its original
/// `y` value has been consumed.
fn solve_with_factor(l: &Matrix, b: &[f64], x: &mut [f64]) -> Result<()> {
    let n = l.rows();
    if b.len() != n || x.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "cholesky_solve",
            lhs: (n, n),
            rhs: (b.len(), 1),
        });
    }
    // Forward: L y = b.
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    // Back: Lᵀ x = y.
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= l[(j, i)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(())
}

/// Reusable Cholesky storage for per-bin solves in hot loops.
///
/// [`Cholesky::factor`] allocates a fresh factor every call; estimation
/// pipelines factor one `A W Aᵀ` per time bin, so a week-long series would
/// allocate thousands of `rows²` buffers. `CholeskyWorkspace` keeps one
/// buffer alive and re-factors into it — allocation-free once warm.
///
/// # Examples
///
/// ```
/// use ic_linalg::{CholeskyWorkspace, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
/// let mut ws = CholeskyWorkspace::new();
/// ws.factor_regularized(&a, 0.0).unwrap();
/// let mut x = [0.0; 2];
/// ws.solve_into(&[8.0, 7.0], &mut x).unwrap();
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyWorkspace {
    l: Matrix,
    factored: bool,
}

impl Default for CholeskyWorkspace {
    fn default() -> Self {
        CholeskyWorkspace::new()
    }
}

impl CholeskyWorkspace {
    /// An empty workspace; buffers are sized on first factorization.
    pub fn new() -> Self {
        CholeskyWorkspace {
            l: Matrix::zeros(0, 0),
            factored: false,
        }
    }

    /// Factors `a + ridge·I` into the reusable buffer.
    ///
    /// Numerically identical to [`Cholesky::factor_regularized`]. On
    /// failure the workspace is left unfactored and subsequent solves
    /// error until the next successful factorization.
    pub fn factor_regularized(&mut self, a: &Matrix, ridge: f64) -> Result<()> {
        if ridge < 0.0 {
            return Err(LinalgError::InvalidArgument(
                "cholesky: ridge must be non-negative",
            ));
        }
        validate_square(a)?;
        self.factored = false;
        let n = a.rows();
        if self.l.shape() != (n, n) {
            self.l = Matrix::zeros(n, n);
        }
        self.l.as_mut_slice().copy_from_slice(a.as_slice());
        for i in 0..n {
            self.l[(i, i)] += ridge;
        }
        factor_in_place(&mut self.l)?;
        self.factored = true;
        Ok(())
    }

    /// Solves with the most recent factorization, into `x`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        if !self.factored {
            return Err(LinalgError::InvalidArgument(
                "cholesky workspace: no valid factorization",
            ));
        }
        solve_with_factor(&self.l, b, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a random-ish B, guaranteed SPD.
        let b = Matrix::from_rows(&[
            &[1.0, 2.0, 0.0],
            &[0.0, 1.0, 3.0],
            &[2.0, 0.0, 1.0],
            &[1.0, 1.0, 1.0],
        ])
        .unwrap();
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.l();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_round_trips() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = ch.solve(&b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(Cholesky::factor(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_negative_definite() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn workspace_matches_one_shot_factorization() {
        let a = spd3();
        let ch = Cholesky::factor_regularized(&a, 1e-6).unwrap();
        let mut ws = CholeskyWorkspace::new();
        ws.factor_regularized(&a, 1e-6).unwrap();
        let b = [1.0, 2.0, 3.0];
        let mut x = [0.0; 3];
        ws.solve_into(&b, &mut x).unwrap();
        assert_eq!(x.to_vec(), ch.solve(&b).unwrap());
        // Refactoring with a different matrix reuses the buffer.
        let a2 = Matrix::identity(3);
        ws.factor_regularized(&a2, 0.0).unwrap();
        ws.solve_into(&b, &mut x).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn workspace_guards_misuse() {
        let mut ws = CholeskyWorkspace::default();
        let mut x = [0.0; 2];
        assert!(ws.solve_into(&[1.0, 1.0], &mut x).is_err());
        assert!(ws.factor_regularized(&Matrix::zeros(2, 3), 0.0).is_err());
        assert!(ws.factor_regularized(&Matrix::identity(2), -1.0).is_err());
        // A failed factorization invalidates the workspace.
        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        ws.factor_regularized(&Matrix::identity(2), 0.0).unwrap();
        assert!(ws.factor_regularized(&indef, 0.0).is_err());
        assert!(ws.solve_into(&[1.0, 1.0], &mut x).is_err());
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = [0.5, -1.0, 2.0];
        let mut x = [0.0; 3];
        ch.solve_into(&b, &mut x).unwrap();
        assert_eq!(x.to_vec(), ch.solve(&b).unwrap());
        assert!(ch.solve_into(&b, &mut [0.0; 2]).is_err());
    }

    #[test]
    fn ridge_rescues_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        let ch = Cholesky::factor_regularized(&a, 1e-6).unwrap();
        let x = ch.solve(&[2.0, 2.0]).unwrap();
        // Regularized solution is near (1, 1).
        assert!((x[0] - 1.0).abs() < 1e-3);
        assert!((x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_must_be_nonnegative() {
        let a = Matrix::identity(2);
        assert!(Cholesky::factor_regularized(&a, -1.0).is_err());
    }

    #[test]
    fn solve_validates_length() {
        let ch = Cholesky::factor(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = ch.solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-9));
        assert!(ch.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn determinant_of_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!((ch.det() - 1.0).abs() < 1e-12);
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = Matrix::diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 24.0).abs() < 1e-9);
        assert!((ch.log_det() - 24.0_f64.ln()).abs() < 1e-12);
    }
}
