//! Pluggable solvers for the weighted normal equations.
//!
//! Every estimator in the workspace bottoms out in the same system: given
//! a sparse operator `A` and positive weights `w`, solve
//!
//! ```text
//! (A·diag(w)·Aᵀ + scale·ridge·I) x = b
//! ```
//!
//! where `scale` is the magnitude of the gram matrix, making the ridge
//! relative. [`NormalSolver`] abstracts *how* that system is solved so
//! upper layers (tomogravity, the BCD fits, the streaming pipeline) pick a
//! strategy per problem size instead of hard-coding one:
//!
//! * [`DenseNormalSolver`] — the original path: materialize `A W Aᵀ` via
//!   [`SparseMatrix::awat_into`] and factor it with
//!   [`crate::CholeskyWorkspace`], falling back to the SVD pseudo-inverse
//!   when the ridge cannot rescue rank deficiency. Exact and fast while
//!   `rows` is small; `O(rows²)` memory, `O(rows³)` time.
//! * [`PcgNormalSolver`] — matrix-free Jacobi-preconditioned conjugate
//!   gradients ([`crate::PcgWorkspace`]): the gram matrix is never formed,
//!   each iteration costs two CSR matvecs, and memory stays `O(rows +
//!   cols)`. This is what lets estimation scale to thousands of nodes.
//!
//! [`SolverPolicy`] selects between them ([`SolverPolicy::Auto`] switches
//! on row count), and [`NormalSolverWorkspace`] bundles both behind the
//! policy with cumulative, observable [`SolveStats`] — replacing the old
//! silent `pseudo_inverse` fallback with counted events.

use crate::batch::{gather_lane, scatter_lane, PcgBatchWorkspace, Precision};
use crate::matrix::Matrix;
use crate::pcg::PcgWorkspace;
use crate::pinv::pseudo_inverse;
use crate::precond::BlockJacobiPreconditioner;
use crate::sparse::SparseMatrix;
use crate::{CholeskyWorkspace, LinalgError, Result};

/// Which normal-equations solver a consumer should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverPolicy {
    /// Dense Cholesky below [`SolverPolicy::AUTO_DENSE_MAX_ROWS`] rows
    /// (bit-identical to the historical dense path), matrix-free PCG at or
    /// above it. The default.
    #[default]
    Auto,
    /// Always the dense Cholesky path.
    Dense,
    /// Always the matrix-free PCG path.
    Pcg,
}

impl SolverPolicy {
    /// Row-count threshold of [`SolverPolicy::Auto`]: systems with fewer
    /// rows than this are solved densely. A 200-node hierarchical topology
    /// stacks to well under this bound (so small problems keep their exact
    /// historical results); 1k+-node topologies cross it and go
    /// matrix-free.
    pub const AUTO_DENSE_MAX_ROWS: usize = 1024;

    /// Resolves the policy for a concrete system size.
    pub fn resolve(self, rows: usize) -> SolverKind {
        match self {
            SolverPolicy::Dense => SolverKind::Dense,
            SolverPolicy::Pcg => SolverKind::Pcg,
            SolverPolicy::Auto => {
                if rows < Self::AUTO_DENSE_MAX_ROWS {
                    SolverKind::Dense
                } else {
                    SolverKind::Pcg
                }
            }
        }
    }

    /// Stable lower-case name (CLI/report identifier).
    pub fn name(&self) -> &'static str {
        match self {
            SolverPolicy::Auto => "auto",
            SolverPolicy::Dense => "dense",
            SolverPolicy::Pcg => "pcg",
        }
    }
}

/// A concrete solver choice after policy resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Dense Cholesky on the materialized gram matrix.
    Dense,
    /// Matrix-free preconditioned conjugate gradients.
    Pcg,
}

/// Cumulative, observable solve counters.
///
/// Replaces the old silent failure modes: dense rank-deficiency fallbacks
/// to the SVD pseudo-inverse and PCG iteration-budget stalls are counted
/// here instead of disappearing. Aggregated per workspace and surfaced in
/// fit reports and the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Systems solved through the dense Cholesky path.
    pub dense_solves: u64,
    /// Systems solved through the matrix-free PCG path.
    pub pcg_solves: u64,
    /// Total PCG iterations (operator applications) across all solves.
    pub pcg_iterations: u64,
    /// PCG solves that exhausted their iteration budget and accepted the
    /// best iterate instead of meeting the residual threshold.
    pub pcg_stalls: u64,
    /// Dense solves where the ridged Cholesky failed and the SVD
    /// pseudo-inverse answered instead (formerly a silent event).
    pub fallbacks: u64,
}

impl SolveStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &SolveStats) {
        self.dense_solves += other.dense_solves;
        self.pcg_solves += other.pcg_solves;
        self.pcg_iterations += other.pcg_iterations;
        self.pcg_stalls += other.pcg_stalls;
        self.fallbacks += other.fallbacks;
    }

    /// Total systems solved.
    pub fn solves(&self) -> u64 {
        self.dense_solves + self.pcg_solves
    }

    /// The counters accrued since an `earlier` snapshot of the same
    /// cumulative stats (`self − earlier`, saturating per field) — how
    /// per-window/per-scenario solver health is carved out of the
    /// workspace-cumulative counters.
    pub fn since(&self, earlier: &SolveStats) -> SolveStats {
        SolveStats {
            dense_solves: self.dense_solves.saturating_sub(earlier.dense_solves),
            pcg_solves: self.pcg_solves.saturating_sub(earlier.pcg_solves),
            pcg_iterations: self.pcg_iterations.saturating_sub(earlier.pcg_iterations),
            pcg_stalls: self.pcg_stalls.saturating_sub(earlier.pcg_stalls),
            fallbacks: self.fallbacks.saturating_sub(earlier.fallbacks),
        }
    }
}

/// A solver for the weighted normal equations
/// `(A·diag(w)·Aᵀ + scale·ridge·I) x = b`.
///
/// `ridge` is relative: implementations multiply it by their estimate of
/// the gram matrix's magnitude (its largest absolute entry — which for a
/// PSD matrix lies on the diagonal, so the matrix-free path can compute it
/// without forming the matrix). `transpose` must be the precomputed
/// [`SparseMatrix::transpose`] of `a`, letting per-bin callers amortize
/// it. Implementations reuse internal buffers and are allocation-free
/// once warm at a fixed problem shape.
pub trait NormalSolver {
    /// Solves into `x` (length `a.rows()`), accumulating counters into
    /// `stats`.
    // Seven problem inputs plus the counter sink; bundling them into a
    // struct would force every per-bin caller to rebuild borrows it
    // already holds disjointly.
    #[allow(clippy::too_many_arguments)]
    fn solve_normal(
        &mut self,
        a: &SparseMatrix,
        transpose: &SparseMatrix,
        weights: &[f64],
        ridge: f64,
        b: &[f64],
        x: &mut [f64],
        stats: &mut SolveStats,
    ) -> Result<()>;
}

/// The historical dense path: materialize `A W Aᵀ`, ridge-regularized
/// Cholesky, SVD pseudo-inverse fallback on rank deficiency.
///
/// Numerically byte-for-byte the sequence `ic-estimation`'s tomogravity
/// used before the solver layer existed, so policies that resolve to
/// dense reproduce historical results exactly.
#[derive(Debug, Clone)]
pub struct DenseNormalSolver {
    awat: Matrix,
    chol: CholeskyWorkspace,
}

impl Default for DenseNormalSolver {
    fn default() -> Self {
        DenseNormalSolver::new()
    }
}

impl DenseNormalSolver {
    /// An empty solver; buffers are sized on first solve.
    pub fn new() -> Self {
        DenseNormalSolver {
            awat: Matrix::zeros(0, 0),
            chol: CholeskyWorkspace::new(),
        }
    }
}

impl NormalSolver for DenseNormalSolver {
    fn solve_normal(
        &mut self,
        a: &SparseMatrix,
        transpose: &SparseMatrix,
        weights: &[f64],
        ridge: f64,
        b: &[f64],
        x: &mut [f64],
        stats: &mut SolveStats,
    ) -> Result<()> {
        let rows = a.rows();
        if self.awat.shape() != (rows, rows) {
            self.awat = Matrix::zeros(rows, rows);
        }
        // A W Aᵀ in O(nnz) via the precomputed transpose.
        a.awat_into(weights, transpose, &mut self.awat)?;
        let scale = self.awat.max_abs().max(f64::MIN_POSITIVE);
        match self.chol.factor_regularized(&self.awat, scale * ridge) {
            Ok(()) => self.chol.solve_into(b, x)?,
            Err(_) => {
                // Rank-deficient beyond what the ridge absorbs: SVD route.
                stats.fallbacks += 1;
                let pinv = pseudo_inverse(&self.awat, None)?;
                let l = pinv.matvec(b)?;
                x.copy_from_slice(&l);
            }
        }
        stats.dense_solves += 1;
        Ok(())
    }
}

/// Matrix-free PCG on the weighted normal equations: the operator is
/// applied as `y = A·(w ⊙ (Aᵀv))` through the CSR `_into` kernels, the
/// Jacobi preconditioner comes from [`SparseMatrix::awat_diag_into`], and
/// the `rows×rows` gram matrix is never allocated.
#[derive(Debug, Clone, Default)]
pub struct PcgNormalSolver {
    pcg: PcgWorkspace,
    diag: Vec<f64>,
    scratch: Vec<f64>,
}

impl PcgNormalSolver {
    /// An empty solver; buffers are sized on first solve.
    pub fn new() -> Self {
        PcgNormalSolver::default()
    }
}

impl NormalSolver for PcgNormalSolver {
    fn solve_normal(
        &mut self,
        a: &SparseMatrix,
        transpose: &SparseMatrix,
        weights: &[f64],
        ridge: f64,
        b: &[f64],
        x: &mut [f64],
        stats: &mut SolveStats,
    ) -> Result<()> {
        let (rows, cols) = a.shape();
        if self.diag.len() != rows {
            self.diag.resize(rows, 0.0);
        }
        if self.scratch.len() != cols {
            self.scratch.resize(cols, 0.0);
        }
        a.awat_diag_into(weights, &mut self.diag)?;
        // The gram matrix is PSD, so its largest absolute entry is its
        // largest diagonal entry — the same scale the dense path reads
        // from the materialized matrix, available here in O(rows).
        let scale = self
            .diag
            .iter()
            .fold(0.0_f64, |m, &d| m.max(d))
            .max(f64::MIN_POSITIVE);
        let scratch = &mut self.scratch;
        let out = self.pcg.solve(&self.diag, scale * ridge, b, x, |v, y| {
            // tmp = Aᵀ·v through the precomputed transpose (gather),
            // then y = A·(w ⊙ tmp).
            transpose.matvec_into(v, scratch)?;
            for (s, &w) in scratch.iter_mut().zip(weights.iter()) {
                *s *= w;
            }
            a.matvec_into(scratch, y)
        })?;
        stats.pcg_solves += 1;
        stats.pcg_iterations += out.iterations as u64;
        if !out.converged {
            stats.pcg_stalls += 1;
        }
        Ok(())
    }
}

/// Both solver implementations behind one [`SolverPolicy`], with
/// cumulative [`SolveStats`] — the field the estimation workspaces hold.
///
/// Buffers on the unused side stay empty (both sides size lazily), so an
/// always-dense or always-PCG workload pays nothing for the other path.
#[derive(Debug, Clone, Default)]
pub struct NormalSolverWorkspace {
    policy: SolverPolicy,
    dense: DenseNormalSolver,
    pcg: PcgNormalSolver,
    batch: BatchSolveBuffers,
    stats: SolveStats,
    row_blocks: Option<Vec<Vec<usize>>>,
    bj: BlockJacobiPreconditioner,
}

/// Buffers of [`NormalSolverWorkspace::solve_batch`]: the batched PCG
/// state plus the per-lane gather/scatter scratch the dense per-lane
/// path uses. Empty until the first batched solve, so per-bin workloads
/// pay nothing for them.
#[derive(Debug, Clone, Default)]
struct BatchSolveBuffers {
    pcg: PcgBatchWorkspace,
    diag: Vec<f64>,
    scratch: Vec<f64>,
    ridge: Vec<f64>,
    lane_w: Vec<f64>,
    lane_b: Vec<f64>,
    lane_x: Vec<f64>,
    // Per-lane block-Jacobi state (each lane has its own weights, hence
    // its own factorization) plus gather/scatter scratch for the batched
    // preconditioner application. Empty unless row blocks are installed.
    bj_lanes: Vec<BlockJacobiPreconditioner>,
    lane_r: Vec<f64>,
    lane_z: Vec<f64>,
}

impl NormalSolverWorkspace {
    /// An empty workspace with the default ([`SolverPolicy::Auto`])
    /// policy.
    pub fn new() -> Self {
        NormalSolverWorkspace::default()
    }

    /// An empty workspace with the given policy.
    pub fn with_policy(policy: SolverPolicy) -> Self {
        NormalSolverWorkspace {
            policy,
            ..NormalSolverWorkspace::default()
        }
    }

    /// The active policy.
    pub fn policy(&self) -> SolverPolicy {
        self.policy
    }

    /// Changes the policy (existing buffers are kept).
    pub fn set_policy(&mut self, policy: SolverPolicy) {
        self.policy = policy;
    }

    /// Cumulative counters since construction (or the last
    /// [`reset_stats`](NormalSolverWorkspace::reset_stats)).
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Zeroes the counters.
    pub fn reset_stats(&mut self) {
        self.stats = SolveStats::default();
    }

    /// Installs (or clears) disjoint row blocks for block-Jacobi
    /// preconditioning of the PCG paths.
    ///
    /// With blocks installed, PCG solves precondition with per-block
    /// dense Cholesky inverses of `A·W·Aᵀ + ridge·I`
    /// ([`BlockJacobiPreconditioner`]) instead of the scalar diagonal —
    /// on partitioned operators this captures the intra-cluster coupling
    /// and cuts the iteration count. `None` (the default) keeps the
    /// historical scalar-Jacobi path bit-identical. The dense path
    /// ignores blocks (it factors the full gram matrix exactly).
    pub fn set_row_blocks(&mut self, blocks: Option<Vec<Vec<usize>>>) {
        self.row_blocks = blocks;
    }

    /// The installed block-Jacobi row blocks, if any.
    pub fn row_blocks(&self) -> Option<&[Vec<usize>]> {
        self.row_blocks.as_deref()
    }

    /// Solves the weighted normal equations with the solver the policy
    /// picks for this system's row count (see [`NormalSolver`] for the
    /// contract).
    #[allow(clippy::too_many_arguments)]
    pub fn solve(
        &mut self,
        a: &SparseMatrix,
        transpose: &SparseMatrix,
        weights: &[f64],
        ridge: f64,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<()> {
        match self.policy.resolve(a.rows()) {
            SolverKind::Dense => {
                self.dense
                    .solve_normal(a, transpose, weights, ridge, b, x, &mut self.stats)
            }
            SolverKind::Pcg => {
                if self.row_blocks.is_some() {
                    self.solve_pcg_block(a, transpose, weights, ridge, b, x)
                } else {
                    self.pcg
                        .solve_normal(a, transpose, weights, ridge, b, x, &mut self.stats)
                }
            }
        }
    }

    /// The block-Jacobi PCG path: same operator, scale, and absolute
    /// ridge as [`PcgNormalSolver`], preconditioned with the installed
    /// row blocks instead of the scalar diagonal.
    fn solve_pcg_block(
        &mut self,
        a: &SparseMatrix,
        transpose: &SparseMatrix,
        weights: &[f64],
        ridge: f64,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<()> {
        let NormalSolverWorkspace {
            pcg: solver,
            bj,
            row_blocks,
            stats,
            ..
        } = self;
        let blocks = row_blocks
            .as_deref()
            .expect("solve_pcg_block called without row blocks");
        let (rows, cols) = a.shape();
        if solver.diag.len() != rows {
            solver.diag.resize(rows, 0.0);
        }
        if solver.scratch.len() != cols {
            solver.scratch.resize(cols, 0.0);
        }
        a.awat_diag_into(weights, &mut solver.diag)?;
        let scale = solver
            .diag
            .iter()
            .fold(0.0_f64, |m, &d| m.max(d))
            .max(f64::MIN_POSITIVE);
        let ridge_abs = scale * ridge;
        bj.factor(a, weights, ridge_abs, blocks)?;
        let scratch = &mut solver.scratch;
        let out = solver.pcg.solve_preconditioned(
            ridge_abs,
            b,
            x,
            |v, y| {
                transpose.matvec_into(v, scratch)?;
                for (s, &w) in scratch.iter_mut().zip(weights.iter()) {
                    *s *= w;
                }
                a.matvec_into(scratch, y)
            },
            |r, z| bj.apply(r, z),
        )?;
        stats.pcg_solves += 1;
        stats.pcg_iterations += out.iterations as u64;
        if !out.converged {
            stats.pcg_stalls += 1;
        }
        Ok(())
    }

    /// Solves `batch` independent weighted normal systems sharing the
    /// operator `a` in one call: `weights`, `b` and `x` are SoA vectors
    /// (lane `k` of element `i` at `i·batch + k`; see [`crate::batch`]),
    /// and lane `k` receives the solution of
    /// `(A·diag(w_k)·Aᵀ + scale_k·ridge·I) x_k = b_k` — with `scale_k`
    /// the magnitude of lane `k`'s gram matrix, exactly as the per-bin
    /// [`NormalSolverWorkspace::solve`] would compute it.
    ///
    /// Under [`SolverKind::Pcg`] all lanes advance through one batched
    /// operator application per iteration ([`PcgBatchWorkspace`]), so one
    /// CSR traversal serves the whole batch; each lane remains
    /// bit-identical to its per-bin solve, and `precision` opts the
    /// operator products into the f32-compute/f64-accumulate kernels
    /// (documented ~1e-6 relative accuracy; the preconditioner, dot
    /// products and iterates stay `f64`). Under [`SolverKind::Dense`] the
    /// lanes are factored one at a time through the dense path — batching
    /// buys nothing for an `O(rows³)` factorization, but the call keeps
    /// one entry point and identical per-lane results; `precision` is
    /// ignored there. Counters accumulate as `batch` individual solves.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_batch(
        &mut self,
        a: &SparseMatrix,
        transpose: &SparseMatrix,
        weights: &[f64],
        ridge: f64,
        b: &[f64],
        x: &mut [f64],
        batch: usize,
        precision: Precision,
    ) -> Result<()> {
        if batch == 0 {
            return Err(LinalgError::InvalidArgument(
                "solve_batch: zero batch width",
            ));
        }
        let (rows, cols) = a.shape();
        if weights.len() != cols * batch || b.len() != rows * batch || x.len() != rows * batch {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_batch",
                lhs: (weights.len(), b.len()),
                rhs: (x.len(), batch),
            });
        }
        let bufs = &mut self.batch;
        match self.policy.resolve(rows) {
            SolverKind::Dense => {
                bufs.lane_w.resize(cols, 0.0);
                bufs.lane_b.resize(rows, 0.0);
                bufs.lane_x.resize(rows, 0.0);
                for k in 0..batch {
                    gather_lane(weights, &mut bufs.lane_w, k, batch);
                    gather_lane(b, &mut bufs.lane_b, k, batch);
                    self.dense.solve_normal(
                        a,
                        transpose,
                        &bufs.lane_w,
                        ridge,
                        &bufs.lane_b,
                        &mut bufs.lane_x,
                        &mut self.stats,
                    )?;
                    scatter_lane(&bufs.lane_x, x, k, batch);
                }
                Ok(())
            }
            SolverKind::Pcg => {
                bufs.diag.resize(rows * batch, 0.0);
                bufs.scratch.resize(cols * batch, 0.0);
                bufs.ridge.resize(batch, 0.0);
                a.awat_diag_batch_into(weights, batch, &mut bufs.diag)?;
                // Per-lane scale from the lane's own diagonal, in the
                // same ascending-row fold order as the per-bin path.
                for (k, rk) in bufs.ridge.iter_mut().enumerate() {
                    let scale = bufs
                        .diag
                        .iter()
                        .skip(k)
                        .step_by(batch)
                        .fold(0.0_f64, |m, &d| m.max(d))
                        .max(f64::MIN_POSITIVE);
                    *rk = scale * ridge;
                }
                let out = if let Some(blocks) = self.row_blocks.as_deref() {
                    // Block-Jacobi: each lane owns a factorization of its
                    // own weighted blocks; the batched preconditioner
                    // application gathers each lane, solves, scatters.
                    bufs.bj_lanes
                        .resize_with(batch, BlockJacobiPreconditioner::new);
                    bufs.lane_w.resize(cols, 0.0);
                    for k in 0..batch {
                        gather_lane(weights, &mut bufs.lane_w, k, batch);
                        let ridge_abs = bufs.ridge[k];
                        bufs.bj_lanes[k].factor(a, &bufs.lane_w, ridge_abs, blocks)?;
                    }
                    bufs.lane_r.resize(rows, 0.0);
                    bufs.lane_z.resize(rows, 0.0);
                    let scratch = &mut bufs.scratch;
                    let bj_lanes = &mut bufs.bj_lanes;
                    let lane_r = &mut bufs.lane_r;
                    let lane_z = &mut bufs.lane_z;
                    bufs.pcg.solve_preconditioned(
                        &bufs.ridge,
                        b,
                        x,
                        batch,
                        |v, y| match precision {
                            Precision::F64 => {
                                transpose.matvec_batch_into(v, batch, scratch)?;
                                for (s, &w) in scratch.iter_mut().zip(weights.iter()) {
                                    *s *= w;
                                }
                                a.matvec_batch_into(scratch, batch, y)
                            }
                            Precision::F32 => {
                                transpose.matvec_batch_f32_into(v, batch, scratch)?;
                                for (s, &w) in scratch.iter_mut().zip(weights.iter()) {
                                    *s *= w;
                                }
                                a.matvec_batch_f32_into(scratch, batch, y)
                            }
                        },
                        |r, z| {
                            for (k, bj) in bj_lanes.iter_mut().enumerate() {
                                gather_lane(r, lane_r, k, batch);
                                bj.apply(lane_r, lane_z)?;
                                scatter_lane(lane_z, z, k, batch);
                            }
                            Ok(())
                        },
                    )?
                } else {
                    let scratch = &mut bufs.scratch;
                    bufs.pcg.solve(
                        &bufs.diag,
                        &bufs.ridge,
                        b,
                        x,
                        batch,
                        |v, y| match precision {
                            Precision::F64 => {
                                transpose.matvec_batch_into(v, batch, scratch)?;
                                for (s, &w) in scratch.iter_mut().zip(weights.iter()) {
                                    *s *= w;
                                }
                                a.matvec_batch_into(scratch, batch, y)
                            }
                            Precision::F32 => {
                                transpose.matvec_batch_f32_into(v, batch, scratch)?;
                                for (s, &w) in scratch.iter_mut().zip(weights.iter()) {
                                    *s *= w;
                                }
                                a.matvec_batch_f32_into(scratch, batch, y)
                            }
                        },
                    )?
                };
                self.stats.pcg_solves += out.lanes as u64;
                self.stats.pcg_iterations += out.total_iterations;
                self.stats.pcg_stalls += out.stalled_lanes;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_system() -> (SparseMatrix, SparseMatrix, Vec<f64>, Vec<f64>) {
        // A 3x5 operator with full row rank.
        let d = Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0, 1.0],
            &[0.0, 3.0, 0.0, 1.0, 0.0],
            &[1.0, 1.0, 0.0, 0.0, 2.0],
        ])
        .unwrap();
        let a = SparseMatrix::from_dense(&d);
        let at = a.transpose();
        let w = vec![0.5, 1.0, 2.0, 0.25, 1.5];
        let b = vec![3.0, -1.0, 2.0];
        (a, at, w, b)
    }

    #[test]
    fn dense_and_pcg_agree() {
        let (a, at, w, b) = sample_system();
        let mut stats = SolveStats::default();
        let mut xd = vec![0.0; 3];
        DenseNormalSolver::new()
            .solve_normal(&a, &at, &w, 1e-10, &b, &mut xd, &mut stats)
            .unwrap();
        let mut xp = vec![0.0; 3];
        PcgNormalSolver::new()
            .solve_normal(&a, &at, &w, 1e-10, &b, &mut xp, &mut stats)
            .unwrap();
        for (d, p) in xd.iter().zip(xp.iter()) {
            assert!((d - p).abs() < 1e-8, "dense {d} vs pcg {p}");
        }
        assert_eq!(stats.dense_solves, 1);
        assert_eq!(stats.pcg_solves, 1);
        assert!(stats.pcg_iterations > 0);
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(stats.solves(), 2);
    }

    #[test]
    fn policy_resolution() {
        assert_eq!(SolverPolicy::Dense.resolve(1 << 20), SolverKind::Dense);
        assert_eq!(SolverPolicy::Pcg.resolve(1), SolverKind::Pcg);
        assert_eq!(SolverPolicy::Auto.resolve(1023), SolverKind::Dense);
        assert_eq!(SolverPolicy::Auto.resolve(1024), SolverKind::Pcg);
        assert_eq!(SolverPolicy::default(), SolverPolicy::Auto);
        assert_eq!(SolverPolicy::Auto.name(), "auto");
        assert_eq!(SolverPolicy::Dense.name(), "dense");
        assert_eq!(SolverPolicy::Pcg.name(), "pcg");
    }

    #[test]
    fn workspace_dispatches_and_counts() {
        let (a, at, w, b) = sample_system();
        let mut ws = NormalSolverWorkspace::with_policy(SolverPolicy::Pcg);
        assert_eq!(ws.policy(), SolverPolicy::Pcg);
        let mut x = vec![0.0; 3];
        ws.solve(&a, &at, &w, 1e-10, &b, &mut x).unwrap();
        assert_eq!(ws.stats().pcg_solves, 1);
        assert_eq!(ws.stats().dense_solves, 0);
        ws.set_policy(SolverPolicy::Auto); // 3 rows < threshold: dense
        ws.solve(&a, &at, &w, 1e-10, &b, &mut x).unwrap();
        assert_eq!(ws.stats().dense_solves, 1);
        ws.reset_stats();
        assert_eq!(ws.stats(), SolveStats::default());
    }

    #[test]
    fn dense_fallback_is_counted() {
        // diag(1, -1) is indefinite: Cholesky must fail deterministically
        // and the pseudo-inverse path must answer and be counted.
        let a = SparseMatrix::from_dense(&Matrix::identity(2));
        let at = a.transpose();
        let w = vec![1.0, -1.0];
        let b = vec![2.0, -3.0];
        let mut stats = SolveStats::default();
        let mut x = vec![0.0; 2];
        DenseNormalSolver::new()
            .solve_normal(&a, &at, &w, 0.0, &b, &mut x, &mut stats)
            .unwrap();
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.dense_solves, 1);
        let back = a.awat(&w).unwrap().matvec(&x).unwrap();
        for (got, want) in back.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_batch_matches_per_lane_bitwise_both_kinds() {
        let (a, at, w, b) = sample_system();
        let batch = 3;
        // Three lanes with different weights and right-hand sides.
        let lane_ws: Vec<Vec<f64>> = (0..batch)
            .map(|k| w.iter().map(|&v| v * (1.0 + k as f64 * 0.5)).collect())
            .collect();
        let lane_bs: Vec<Vec<f64>> = (0..batch)
            .map(|k| b.iter().map(|&v| v - k as f64).collect())
            .collect();
        let mut w_soa = vec![0.0; 5 * batch];
        let mut b_soa = vec![0.0; 3 * batch];
        for k in 0..batch {
            scatter_lane(&lane_ws[k], &mut w_soa, k, batch);
            scatter_lane(&lane_bs[k], &mut b_soa, k, batch);
        }
        for policy in [SolverPolicy::Dense, SolverPolicy::Pcg] {
            let mut ws = NormalSolverWorkspace::with_policy(policy);
            let mut x_soa = vec![0.0; 3 * batch];
            ws.solve_batch(
                &a,
                &at,
                &w_soa,
                1e-10,
                &b_soa,
                &mut x_soa,
                batch,
                Precision::F64,
            )
            .unwrap();
            let mut lane_x = vec![0.0; 3];
            let mut per_bin = NormalSolverWorkspace::with_policy(policy);
            for k in 0..batch {
                let mut want = vec![0.0; 3];
                per_bin
                    .solve(&a, &at, &lane_ws[k], 1e-10, &lane_bs[k], &mut want)
                    .unwrap();
                gather_lane(&x_soa, &mut lane_x, k, batch);
                assert_eq!(lane_x, want, "{policy:?} lane {k} diverged from per-bin");
            }
            // Counters accumulate as `batch` individual solves.
            assert_eq!(ws.stats(), per_bin.stats(), "{policy:?} stats diverged");
            assert_eq!(ws.stats().solves(), batch as u64);
        }
    }

    #[test]
    fn solve_batch_f32_mode_stays_close() {
        let (a, at, w, b) = sample_system();
        let mut exact = NormalSolverWorkspace::with_policy(SolverPolicy::Pcg);
        let mut x64 = vec![0.0; 3];
        exact.solve(&a, &at, &w, 1e-10, &b, &mut x64).unwrap();
        let mut ws = NormalSolverWorkspace::with_policy(SolverPolicy::Pcg);
        let mut x32 = vec![0.0; 3];
        ws.solve_batch(&a, &at, &w, 1e-10, &b, &mut x32, 1, Precision::F32)
            .unwrap();
        let scale = x64.iter().fold(1.0_f64, |m, &v| m.max(v.abs()));
        for (e, g) in x64.iter().zip(x32.iter()) {
            assert!(
                (e - g).abs() <= 1e-4 * scale,
                "f32 batched solve drifted: {e} vs {g}"
            );
        }
    }

    #[test]
    fn solve_batch_rejects_bad_shapes() {
        let (a, at, w, b) = sample_system();
        let mut ws = NormalSolverWorkspace::new();
        let mut x = vec![0.0; 3];
        assert!(ws
            .solve_batch(&a, &at, &w, 1e-10, &b, &mut x, 0, Precision::F64)
            .is_err());
        assert!(ws
            .solve_batch(&a, &at, &w, 1e-10, &b, &mut x, 2, Precision::F64)
            .is_err());
        assert!(ws
            .solve_batch(&a, &at, &w[..3], 1e-10, &b, &mut x, 1, Precision::F64)
            .is_err());
    }

    /// A 6x4 operator whose gram splits into two tightly coupled 3-row
    /// blocks with weak cross-coupling — the shape a partitioned topology
    /// produces.
    fn clustered_system() -> (SparseMatrix, SparseMatrix, Vec<f64>, Vec<f64>) {
        let d = Matrix::from_rows(&[
            &[2.0, 1.0, 0.0, 0.0],
            &[1.0, 2.0, 0.0, 0.0],
            &[0.5, 0.5, 0.1, 0.0],
            &[0.0, 0.0, 2.0, 1.0],
            &[0.0, 0.0, 1.0, 2.0],
            &[0.0, 0.1, 0.5, 0.5],
        ])
        .unwrap();
        let a = SparseMatrix::from_dense(&d);
        let at = a.transpose();
        let w = vec![1.0, 0.5, 2.0, 1.5];
        let b = vec![3.0, -1.0, 2.0, 0.5, -2.0, 1.0];
        (a, at, w, b)
    }

    #[test]
    fn row_blocks_cut_iterations_and_match_scalar() {
        let (a, at, w, b) = clustered_system();
        let mut scalar = NormalSolverWorkspace::with_policy(SolverPolicy::Pcg);
        let mut x_scalar = vec![0.0; 6];
        scalar.solve(&a, &at, &w, 1e-10, &b, &mut x_scalar).unwrap();
        let mut block = NormalSolverWorkspace::with_policy(SolverPolicy::Pcg);
        block.set_row_blocks(Some(vec![vec![0, 1, 2], vec![3, 4, 5]]));
        assert_eq!(block.row_blocks().unwrap().len(), 2);
        let mut x_block = vec![0.0; 6];
        block.solve(&a, &at, &w, 1e-10, &b, &mut x_block).unwrap();
        assert_eq!(block.stats().pcg_solves, 1);
        assert_eq!(block.stats().pcg_stalls, 0);
        assert!(
            block.stats().pcg_iterations < scalar.stats().pcg_iterations,
            "block-Jacobi should iterate less: {} vs {}",
            block.stats().pcg_iterations,
            scalar.stats().pcg_iterations
        );
        for (s, bl) in x_scalar.iter().zip(x_block.iter()) {
            assert!((s - bl).abs() <= 1e-10 * (1.0 + s.abs()), "{s} vs {bl}");
        }
        // Clearing the blocks restores the scalar path bit-identically.
        block.set_row_blocks(None);
        block.reset_stats();
        let mut x_again = vec![0.0; 6];
        block.solve(&a, &at, &w, 1e-10, &b, &mut x_again).unwrap();
        assert_eq!(x_again, x_scalar);
        assert_eq!(block.stats(), scalar.stats());
    }

    #[test]
    fn batched_row_blocks_match_per_bin_block_solves() {
        let (a, at, w, b) = clustered_system();
        let batch = 2;
        let lane_ws: Vec<Vec<f64>> = (0..batch)
            .map(|k| w.iter().map(|&v| v * (1.0 + k as f64)).collect())
            .collect();
        let lane_bs: Vec<Vec<f64>> = (0..batch)
            .map(|k| b.iter().map(|&v| v + k as f64 * 0.5).collect())
            .collect();
        let mut w_soa = vec![0.0; 4 * batch];
        let mut b_soa = vec![0.0; 6 * batch];
        for k in 0..batch {
            scatter_lane(&lane_ws[k], &mut w_soa, k, batch);
            scatter_lane(&lane_bs[k], &mut b_soa, k, batch);
        }
        let blocks = vec![vec![0usize, 1, 2], vec![3, 4, 5]];
        let mut ws = NormalSolverWorkspace::with_policy(SolverPolicy::Pcg);
        ws.set_row_blocks(Some(blocks.clone()));
        let mut x_soa = vec![0.0; 6 * batch];
        ws.solve_batch(
            &a,
            &at,
            &w_soa,
            1e-10,
            &b_soa,
            &mut x_soa,
            batch,
            Precision::F64,
        )
        .unwrap();
        let mut per_bin = NormalSolverWorkspace::with_policy(SolverPolicy::Pcg);
        per_bin.set_row_blocks(Some(blocks));
        let mut lane_x = vec![0.0; 6];
        for k in 0..batch {
            let mut want = vec![0.0; 6];
            per_bin
                .solve(&a, &at, &lane_ws[k], 1e-10, &lane_bs[k], &mut want)
                .unwrap();
            gather_lane(&x_soa, &mut lane_x, k, batch);
            for (got, w) in lane_x.iter().zip(want.iter()) {
                assert!(
                    (got - w).abs() <= 1e-12 * (1.0 + w.abs()),
                    "lane {k}: {got} vs {w}"
                );
            }
        }
        assert_eq!(ws.stats().pcg_solves, batch as u64);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SolveStats {
            dense_solves: 1,
            pcg_solves: 2,
            pcg_iterations: 30,
            pcg_stalls: 1,
            fallbacks: 0,
        };
        let b = SolveStats {
            dense_solves: 10,
            pcg_solves: 1,
            pcg_iterations: 5,
            pcg_stalls: 0,
            fallbacks: 3,
        };
        a.merge(&b);
        assert_eq!(a.dense_solves, 11);
        assert_eq!(a.pcg_solves, 3);
        assert_eq!(a.pcg_iterations, 35);
        assert_eq!(a.pcg_stalls, 1);
        assert_eq!(a.fallbacks, 3);
    }
}
