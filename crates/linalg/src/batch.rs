//! Batched (structure-of-arrays) execution primitives.
//!
//! The estimation workloads are *series* of independent per-bin solves
//! over one shared operator. Executing them one bin at a time re-walks
//! the CSR index structure per bin; laying B right-hand sides out
//! column-major — element `c` of lane `k` lives at `v[c*B + k]` — lets a
//! single index traversal serve all B bins with a contiguous B-wide inner
//! loop the compiler autovectorizes (see the `*_batch_into` kernels on
//! [`crate::SparseMatrix`]).
//!
//! [`PcgBatchWorkspace`] runs B independent Jacobi-preconditioned CG
//! solves through one batched operator application per outer iteration,
//! with per-lane convergence masks: each lane performs exactly the
//! arithmetic [`crate::PcgWorkspace`] would perform on it alone (same
//! accumulation orders, same stopping rule), so every lane's iterate is
//! bit-identical to the corresponding per-bin solve — for any batch
//! width, on any thread.
//!
//! [`Precision`] selects an opt-in reduced-precision mode for the batched
//! operator products (compute in `f32`, accumulate in `f64`), trading a
//! documented ~1e-6 relative accuracy for bandwidth.

use crate::pcg::{PCG_MAX_ITERATIONS, PCG_REL_TOLERANCE};
use crate::{LinalgError, Result};

/// Floating-point mode of the batched operator products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full `f64` arithmetic — bit-identical to the per-bin kernels. The
    /// default.
    #[default]
    F64,
    /// Products computed in `f32`, accumulated in `f64` (the batched CSR
    /// `*_batch_f32_into` kernels). Halves the multiply bandwidth at a
    /// relative accuracy of roughly `1e-6` (single-precision rounding of
    /// each product; the `f64` accumulator avoids cancellation growth).
    F32,
}

impl Precision {
    /// Stable lower-case name (CLI/report identifier).
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// How the estimation layers batch bins through the SoA kernels.
///
/// The default (`width == 1`, [`Precision::F64`]) executes exactly the
/// historical per-bin arithmetic; wider batches amortize the CSR index
/// traversal over `width` bins per operator application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    width: usize,
    precision: Precision,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            width: 1,
            precision: Precision::F64,
        }
    }
}

impl BatchOptions {
    /// Per-bin execution (`width == 1`, full precision) — the default.
    pub fn new() -> Self {
        BatchOptions::default()
    }

    /// Sets the batch width (clamped to at least 1): how many bins share
    /// one kernel traversal.
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width.max(1);
        self
    }

    /// Sets the floating-point mode of the batched operator products.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The batch width (≥ 1).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The floating-point mode.
    pub fn precision(&self) -> Precision {
        self.precision
    }
}

/// Outcome of one [`PcgBatchWorkspace::solve`] call, summarizing all
/// lanes; per-lane detail stays readable on the workspace
/// ([`PcgBatchWorkspace::lane_iterations`] /
/// [`PcgBatchWorkspace::lane_converged`]) so the summary allocates
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcgBatchSolve {
    /// Lanes solved (the batch width).
    pub lanes: usize,
    /// Total operator applications summed over lanes, counting each lane
    /// only up to its own stopping iteration — the same quantity `B`
    /// per-bin [`crate::PcgSolve::iterations`] values would sum to.
    pub total_iterations: u64,
    /// Lanes that stopped without meeting the residual threshold.
    pub stalled_lanes: u64,
}

impl PcgBatchSolve {
    /// True when every lane converged.
    pub fn all_converged(&self) -> bool {
        self.stalled_lanes == 0
    }
}

/// Reusable buffers for batched Jacobi-preconditioned conjugate
/// gradients: B independent solves advanced in lockstep through one
/// batched operator application per iteration.
///
/// All vectors are SoA (`len == n·B`, lane `k` of element `i` at
/// `i·B + k`). Lane-local arithmetic — dot products, axpy updates, the
/// stopping test — is strided per lane in the same order the per-bin
/// [`crate::PcgWorkspace`] uses, and a lane freezes the moment its own
/// residual passes (or its curvature check fails), so each lane is
/// bit-identical to the per-bin solve regardless of what the other lanes
/// do. Allocation-free once warm at a fixed `(n, B)`.
#[derive(Debug, Clone, Default)]
pub struct PcgBatchWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    // Per-lane scalar state.
    rz: Vec<f64>,
    tol2: Vec<f64>,
    active: Vec<bool>,
    iterations: Vec<usize>,
    converged: Vec<bool>,
}

impl PcgBatchWorkspace {
    /// An empty workspace; buffers are sized on first solve.
    pub fn new() -> Self {
        PcgBatchWorkspace::default()
    }

    /// Operator applications lane `k` performed in the last solve.
    pub fn lane_iterations(&self) -> &[usize] {
        &self.iterations
    }

    /// Whether lane `k` met the residual threshold in the last solve.
    pub fn lane_converged(&self) -> &[bool] {
        &self.converged
    }

    /// Solves `(M_k + ridge[k]·I) x_k = b_k` for `k in 0..batch`, where
    /// `apply` computes all B products `y_k = M_k·v_k` over SoA vectors
    /// and `diag` holds the B (unridged) operator diagonals SoA — the
    /// per-lane Jacobi preconditioners.
    ///
    /// Each lane starts from `x_k = 0` and iterates until its own
    /// residual drops below [`PCG_REL_TOLERANCE`]`·‖b_k‖` or the shared
    /// budget of `2·n` applications (capped at [`PCG_MAX_ITERATIONS`]) is
    /// spent; frozen lanes are masked out of all updates while the
    /// remaining lanes keep iterating. Zero right-hand sides short-circuit
    /// per lane (0 iterations, converged). Non-positive preconditioner
    /// entries fall back to the identity scaling for that coordinate,
    /// exactly as in the per-bin solver.
    pub fn solve(
        &mut self,
        diag: &[f64],
        ridge: &[f64],
        b: &[f64],
        x: &mut [f64],
        batch: usize,
        mut apply: impl FnMut(&[f64], &mut [f64]) -> Result<()>,
    ) -> Result<PcgBatchSolve> {
        if batch == 0 {
            return Err(LinalgError::InvalidArgument("pcg_batch: zero batch width"));
        }
        let nb = b.len();
        if nb == 0 || !nb.is_multiple_of(batch) {
            return Err(LinalgError::InvalidArgument(
                "pcg_batch: rhs length must be a positive multiple of the batch width",
            ));
        }
        let n = nb / batch;
        if x.len() != nb || diag.len() != nb || ridge.len() != batch {
            return Err(LinalgError::ShapeMismatch {
                op: "pcg_batch_solve",
                lhs: (nb, batch),
                rhs: (x.len(), diag.len()),
            });
        }
        if ridge.iter().any(|r| !(*r >= 0.0)) {
            return Err(LinalgError::InvalidArgument(
                "pcg_batch: ridge must be non-negative",
            ));
        }
        self.ensure(nb, batch);
        let precond = |diag_i: f64, ridge_k: f64| {
            let m = diag_i + ridge_k;
            if m > 0.0 && m.is_finite() {
                m
            } else {
                1.0
            }
        };

        // Per lane: x = 0, r = b, zero-rhs short-circuit, tolerance.
        x.fill(0.0);
        self.r.copy_from_slice(b);
        let mut live = 0usize;
        for k in 0..batch {
            let b_norm2 = dot_lane(b, b, k, batch);
            self.iterations[k] = 0;
            if b_norm2 == 0.0 {
                self.active[k] = false;
                self.converged[k] = true;
            } else {
                self.active[k] = true;
                self.converged[k] = false;
                self.tol2[k] = PCG_REL_TOLERANCE * PCG_REL_TOLERANCE * b_norm2;
                live += 1;
            }
        }
        if live == 0 {
            return Ok(self.summary(batch));
        }
        // z = r ⊘ precond, p = z, rz = r·z — per lane.
        for k in 0..batch {
            if !self.active[k] {
                continue;
            }
            let rk = ridge[k];
            for i in 0..n {
                let idx = i * batch + k;
                self.z[idx] = self.r[idx] / precond(diag[idx], rk);
            }
            self.rz[k] = dot_lane(&self.r, &self.z, k, batch);
        }
        self.p.copy_from_slice(&self.z);
        let max_iterations = (2 * n).clamp(32, PCG_MAX_ITERATIONS);
        for iteration in 1..=max_iterations {
            apply(&self.p, &mut self.ap)?;
            for k in 0..batch {
                if !self.active[k] {
                    continue;
                }
                let rk = ridge[k];
                if rk > 0.0 {
                    for i in 0..n {
                        let idx = i * batch + k;
                        self.ap[idx] += rk * self.p[idx];
                    }
                }
                let pap = dot_lane(&self.p, &self.ap, k, batch);
                if !(pap > 0.0) || !pap.is_finite() {
                    // Loss of positive definiteness in this lane: freeze
                    // it on its best iterate; the other lanes continue.
                    self.active[k] = false;
                    self.iterations[k] = iteration;
                    continue;
                }
                let alpha = self.rz[k] / pap;
                for i in 0..n {
                    let idx = i * batch + k;
                    x[idx] += alpha * self.p[idx];
                }
                for i in 0..n {
                    let idx = i * batch + k;
                    self.r[idx] -= alpha * self.ap[idx];
                }
                if dot_lane(&self.r, &self.r, k, batch) <= self.tol2[k] {
                    self.active[k] = false;
                    self.iterations[k] = iteration;
                    self.converged[k] = true;
                    continue;
                }
                for i in 0..n {
                    let idx = i * batch + k;
                    self.z[idx] = self.r[idx] / precond(diag[idx], rk);
                }
                let rz_next = dot_lane(&self.r, &self.z, k, batch);
                let beta = rz_next / self.rz[k];
                self.rz[k] = rz_next;
                for i in 0..n {
                    let idx = i * batch + k;
                    self.p[idx] = self.z[idx] + beta * self.p[idx];
                }
            }
            if !self.active.iter().any(|&a| a) {
                break;
            }
        }
        for k in 0..batch {
            if self.active[k] {
                // Budget exhausted with the lane still live: a stall, on
                // its best iterate, exactly as per-bin.
                self.active[k] = false;
                self.iterations[k] = max_iterations;
            }
        }
        Ok(self.summary(batch))
    }

    /// Solves `(M_k + ridge[k]·I) x_k = b_k` for `k in 0..batch` with a
    /// caller-supplied preconditioner: `apply` computes all B products
    /// `y_k = M_k·v_k` over SoA vectors exactly as in
    /// [`PcgBatchWorkspace::solve`], and `precond` computes all B
    /// applications `z_k = P_k⁻¹·r_k` over SoA vectors, where each `P_k`
    /// is an SPD approximation of `M_k + ridge[k]·I` (e.g. a per-lane
    /// block-Jacobi [`crate::BlockJacobiPreconditioner`]).
    ///
    /// Same starts, stopping rules, freezing semantics, and shared
    /// iteration budget as [`PcgBatchWorkspace::solve`]; the only
    /// structural difference is that the preconditioner application is
    /// batched into one call per outer iteration (covering every lane,
    /// frozen lanes included — their residuals are fixed so the extra
    /// work is redundant but harmless). A lane whose preconditioner is
    /// not positive definite on its running residual freezes on its best
    /// iterate, as with an indefinite operator.
    pub fn solve_preconditioned(
        &mut self,
        ridge: &[f64],
        b: &[f64],
        x: &mut [f64],
        batch: usize,
        mut apply: impl FnMut(&[f64], &mut [f64]) -> Result<()>,
        mut precond: impl FnMut(&[f64], &mut [f64]) -> Result<()>,
    ) -> Result<PcgBatchSolve> {
        if batch == 0 {
            return Err(LinalgError::InvalidArgument("pcg_batch: zero batch width"));
        }
        let nb = b.len();
        if nb == 0 || !nb.is_multiple_of(batch) {
            return Err(LinalgError::InvalidArgument(
                "pcg_batch: rhs length must be a positive multiple of the batch width",
            ));
        }
        let n = nb / batch;
        if x.len() != nb || ridge.len() != batch {
            return Err(LinalgError::ShapeMismatch {
                op: "pcg_batch_solve_preconditioned",
                lhs: (nb, batch),
                rhs: (x.len(), ridge.len()),
            });
        }
        if ridge.iter().any(|r| !(*r >= 0.0)) {
            return Err(LinalgError::InvalidArgument(
                "pcg_batch: ridge must be non-negative",
            ));
        }
        self.ensure(nb, batch);

        // Per lane: x = 0, r = b, zero-rhs short-circuit, tolerance.
        x.fill(0.0);
        self.r.copy_from_slice(b);
        let mut live = 0usize;
        for k in 0..batch {
            let b_norm2 = dot_lane(b, b, k, batch);
            self.iterations[k] = 0;
            if b_norm2 == 0.0 {
                self.active[k] = false;
                self.converged[k] = true;
            } else {
                self.active[k] = true;
                self.converged[k] = false;
                self.tol2[k] = PCG_REL_TOLERANCE * PCG_REL_TOLERANCE * b_norm2;
                live += 1;
            }
        }
        if live == 0 {
            return Ok(self.summary(batch));
        }
        // z = P⁻¹ r (all lanes at once), p = z, rz = r·z per lane.
        precond(&self.r, &mut self.z)?;
        for k in 0..batch {
            if !self.active[k] {
                continue;
            }
            let rz = dot_lane(&self.r, &self.z, k, batch);
            if !(rz > 0.0) || !rz.is_finite() {
                // Non-SPD preconditioner on this lane: freeze on x = 0.
                self.active[k] = false;
                continue;
            }
            self.rz[k] = rz;
        }
        self.p.copy_from_slice(&self.z);
        let max_iterations = (2 * n).clamp(32, PCG_MAX_ITERATIONS);
        for iteration in 1..=max_iterations {
            if !self.active.iter().any(|&a| a) {
                break;
            }
            apply(&self.p, &mut self.ap)?;
            // First per-lane sweep: step and test the residual.
            for k in 0..batch {
                if !self.active[k] {
                    continue;
                }
                let rk = ridge[k];
                if rk > 0.0 {
                    for i in 0..n {
                        let idx = i * batch + k;
                        self.ap[idx] += rk * self.p[idx];
                    }
                }
                let pap = dot_lane(&self.p, &self.ap, k, batch);
                if !(pap > 0.0) || !pap.is_finite() {
                    // Loss of positive definiteness in this lane: freeze
                    // it on its best iterate; the other lanes continue.
                    self.active[k] = false;
                    self.iterations[k] = iteration;
                    continue;
                }
                let alpha = self.rz[k] / pap;
                for i in 0..n {
                    let idx = i * batch + k;
                    x[idx] += alpha * self.p[idx];
                }
                for i in 0..n {
                    let idx = i * batch + k;
                    self.r[idx] -= alpha * self.ap[idx];
                }
                if dot_lane(&self.r, &self.r, k, batch) <= self.tol2[k] {
                    self.active[k] = false;
                    self.iterations[k] = iteration;
                    self.converged[k] = true;
                }
            }
            if !self.active.iter().any(|&a| a) {
                break;
            }
            // One batched preconditioner application serves every live
            // lane, then the second per-lane sweep updates directions.
            precond(&self.r, &mut self.z)?;
            for k in 0..batch {
                if !self.active[k] {
                    continue;
                }
                let rz_next = dot_lane(&self.r, &self.z, k, batch);
                if !(rz_next > 0.0) || !rz_next.is_finite() {
                    self.active[k] = false;
                    self.iterations[k] = iteration;
                    continue;
                }
                let beta = rz_next / self.rz[k];
                self.rz[k] = rz_next;
                for i in 0..n {
                    let idx = i * batch + k;
                    self.p[idx] = self.z[idx] + beta * self.p[idx];
                }
            }
        }
        for k in 0..batch {
            if self.active[k] {
                // Budget exhausted with the lane still live: a stall, on
                // its best iterate, exactly as per-bin.
                self.active[k] = false;
                self.iterations[k] = max_iterations;
            }
        }
        Ok(self.summary(batch))
    }

    fn summary(&self, batch: usize) -> PcgBatchSolve {
        PcgBatchSolve {
            lanes: batch,
            total_iterations: self.iterations[..batch].iter().map(|&i| i as u64).sum(),
            stalled_lanes: self.converged[..batch].iter().filter(|&&c| !c).count() as u64,
        }
    }

    fn ensure(&mut self, nb: usize, batch: usize) {
        if self.r.len() != nb {
            self.r.resize(nb, 0.0);
            self.z.resize(nb, 0.0);
            self.p.resize(nb, 0.0);
            self.ap.resize(nb, 0.0);
        }
        if self.rz.len() != batch {
            self.rz.resize(batch, 0.0);
            self.tol2.resize(batch, 0.0);
            self.active.resize(batch, false);
            self.iterations.resize(batch, 0);
            self.converged.resize(batch, false);
        }
    }
}

/// Strided per-lane dot product over SoA vectors — the same sequential
/// accumulation order the per-bin solver's contiguous dot uses, which is
/// what makes each lane bit-identical to its per-bin run.
fn dot_lane(a: &[f64], b: &[f64], k: usize, batch: usize) -> f64 {
    a.iter()
        .skip(k)
        .step_by(batch)
        .zip(b.iter().skip(k).step_by(batch))
        .map(|(&x, &y)| x * y)
        .sum()
}

/// Interleaves `lane` into lane `k` of the SoA vector `soa`
/// (`soa[i*batch + k] = lane[i]`).
pub fn scatter_lane(lane: &[f64], soa: &mut [f64], k: usize, batch: usize) {
    for (i, &v) in lane.iter().enumerate() {
        soa[i * batch + k] = v;
    }
}

/// Extracts lane `k` of the SoA vector `soa` into `lane`
/// (`lane[i] = soa[i*batch + k]`).
pub fn gather_lane(soa: &[f64], lane: &mut [f64], k: usize, batch: usize) {
    for (i, slot) in lane.iter_mut().enumerate() {
        *slot = soa[i * batch + k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, PcgWorkspace};

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let data: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let b = Matrix::from_vec(n, n, data).unwrap();
        let mut a = b.gram();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    }

    fn diag_of(a: &Matrix) -> Vec<f64> {
        (0..a.rows()).map(|i| a[(i, i)]).collect()
    }

    /// Batched solve over B copies of different SPD systems must be
    /// bit-identical per lane to B per-bin solves.
    #[test]
    fn lanes_match_per_bin_bitwise() {
        let n = 7;
        let batch = 4;
        let systems: Vec<Matrix> = (0..batch).map(|k| spd(n, 100 + k as u64)).collect();
        let rhs: Vec<Vec<f64>> = (0..batch)
            .map(|k| {
                (0..n)
                    .map(|i| (i as f64 + 1.0) * (k as f64 - 1.5))
                    .collect()
            })
            .collect();
        let ridges = [0.0, 1e-6, 0.5, 1e-9];

        // SoA inputs.
        let mut diag = vec![0.0; n * batch];
        let mut b = vec![0.0; n * batch];
        for k in 0..batch {
            scatter_lane(&diag_of(&systems[k]), &mut diag, k, batch);
            scatter_lane(&rhs[k], &mut b, k, batch);
        }
        let mut ws = PcgBatchWorkspace::new();
        let mut x = vec![0.0; n * batch];
        let mut lane_in = vec![0.0; n];
        let out = ws
            .solve(&diag, &ridges, &b, &mut x, batch, |v, y| {
                for (k, sys) in systems.iter().enumerate() {
                    gather_lane(v, &mut lane_in, k, batch);
                    scatter_lane(&sys.matvec(&lane_in).unwrap(), y, k, batch);
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(out.lanes, batch);
        assert!(out.all_converged());

        let mut lane_x = vec![0.0; n];
        for k in 0..batch {
            let mut per_bin = PcgWorkspace::new();
            let mut want = vec![0.0; n];
            let solved = per_bin
                .solve(
                    &diag_of(&systems[k]),
                    ridges[k],
                    &rhs[k],
                    &mut want,
                    |v, y| {
                        y.copy_from_slice(&systems[k].matvec(v).unwrap());
                        Ok(())
                    },
                )
                .unwrap();
            gather_lane(&x, &mut lane_x, k, batch);
            assert_eq!(lane_x, want, "lane {k} diverged from per-bin");
            assert_eq!(ws.lane_iterations()[k], solved.iterations, "lane {k} iters");
            assert_eq!(ws.lane_converged()[k], solved.converged, "lane {k} flag");
        }
        assert_eq!(
            out.total_iterations,
            ws.lane_iterations().iter().map(|&i| i as u64).sum::<u64>()
        );
    }

    /// A lane with b = 0 short-circuits (x = 0, 0 iterations) without
    /// disturbing the live lanes.
    #[test]
    fn zero_rhs_lane_short_circuits() {
        let n = 5;
        let batch = 2;
        let sys = spd(n, 3);
        let mut diag = vec![0.0; n * batch];
        let mut b = vec![0.0; n * batch];
        scatter_lane(&diag_of(&sys), &mut diag, 0, batch);
        scatter_lane(&diag_of(&sys), &mut diag, 1, batch);
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        scatter_lane(&rhs, &mut b, 0, batch);
        // Lane 1 stays all-zero.
        let mut ws = PcgBatchWorkspace::new();
        let mut x = vec![1.0; n * batch];
        let mut lane_in = vec![0.0; n];
        let out = ws
            .solve(&diag, &[0.0, 0.0], &b, &mut x, batch, |v, y| {
                for k in 0..batch {
                    gather_lane(v, &mut lane_in, k, batch);
                    scatter_lane(&sys.matvec(&lane_in).unwrap(), y, k, batch);
                }
                Ok(())
            })
            .unwrap();
        assert!(out.all_converged());
        assert_eq!(ws.lane_iterations()[1], 0);
        let mut lane_x = vec![0.0; n];
        gather_lane(&x, &mut lane_x, 1, batch);
        assert_eq!(lane_x, vec![0.0; n]);
        gather_lane(&x, &mut lane_x, 0, batch);
        assert!(lane_x.iter().any(|&v| v != 0.0));
    }

    /// An all-zero batch never applies the operator.
    #[test]
    fn all_zero_batch_skips_operator() {
        let mut ws = PcgBatchWorkspace::new();
        let mut x = vec![9.0; 6];
        let out = ws
            .solve(&[1.0; 6], &[0.0, 0.0], &[0.0; 6], &mut x, 2, |_, _| {
                panic!("operator must not be applied for an all-zero batch")
            })
            .unwrap();
        assert_eq!(out.total_iterations, 0);
        assert!(out.all_converged());
        assert_eq!(x, [0.0; 6]);
    }

    /// An indefinite lane stalls without corrupting the SPD lane next to
    /// it.
    #[test]
    fn indefinite_lane_stalls_in_isolation() {
        let n = 4;
        let batch = 2;
        let sys = spd(n, 11);
        let mut diag = vec![0.0; n * batch];
        scatter_lane(&diag_of(&sys), &mut diag, 0, batch);
        scatter_lane(&vec![-1.0; n], &mut diag, 1, batch);
        let mut b = vec![0.0; n * batch];
        let rhs: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        scatter_lane(&rhs, &mut b, 0, batch);
        scatter_lane(&rhs, &mut b, 1, batch);
        let mut ws = PcgBatchWorkspace::new();
        let mut x = vec![0.0; n * batch];
        let mut lane_in = vec![0.0; n];
        let out = ws
            .solve(&diag, &[0.0, 0.0], &b, &mut x, batch, |v, y| {
                gather_lane(v, &mut lane_in, 0, batch);
                scatter_lane(&sys.matvec(&lane_in).unwrap(), y, 0, batch);
                // Lane 1 applies -I.
                for i in 0..n {
                    y[i * batch + 1] = -v[i * batch + 1];
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(out.stalled_lanes, 1);
        assert!(ws.lane_converged()[0]);
        assert!(!ws.lane_converged()[1]);
        // The SPD lane still matches its per-bin solve bitwise.
        let mut per_bin = PcgWorkspace::new();
        let mut want = vec![0.0; n];
        per_bin
            .solve(&diag_of(&sys), 0.0, &rhs, &mut want, |v, y| {
                y.copy_from_slice(&sys.matvec(v).unwrap());
                Ok(())
            })
            .unwrap();
        let mut lane_x = vec![0.0; n];
        gather_lane(&x, &mut lane_x, 0, batch);
        assert_eq!(lane_x, want);
        gather_lane(&x, &mut lane_x, 1, batch);
        assert!(lane_x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_bad_arguments() {
        let mut ws = PcgBatchWorkspace::new();
        let ok = |_: &[f64], _: &mut [f64]| Ok(());
        let mut x = vec![0.0; 4];
        // Zero batch width.
        assert!(ws.solve(&[1.0; 4], &[], &[1.0; 4], &mut x, 0, ok).is_err());
        // Length not a multiple of the width.
        assert!(ws
            .solve(&[1.0; 3], &[0.0, 0.0], &[1.0; 3], &mut x[..3], 2, ok)
            .is_err());
        // Mismatched x / diag / ridge lengths.
        assert!(ws
            .solve(&[1.0; 4], &[0.0, 0.0], &[1.0; 4], &mut x[..2], 2, ok)
            .is_err());
        assert!(ws
            .solve(&[1.0; 2], &[0.0, 0.0], &[1.0; 4], &mut x, 2, ok)
            .is_err());
        assert!(ws
            .solve(&[1.0; 4], &[0.0], &[1.0; 4], &mut x, 2, ok)
            .is_err());
        // Negative / NaN ridge.
        assert!(ws
            .solve(&[1.0; 4], &[0.0, -1.0], &[1.0; 4], &mut x, 2, ok)
            .is_err());
        assert!(ws
            .solve(&[1.0; 4], &[f64::NAN, 0.0], &[1.0; 4], &mut x, 2, ok)
            .is_err());
    }

    #[test]
    fn options_defaults_and_setters() {
        let o = BatchOptions::default();
        assert_eq!(o.width(), 1);
        assert_eq!(o.precision(), Precision::F64);
        let o = BatchOptions::new()
            .with_width(0)
            .with_precision(Precision::F32);
        assert_eq!(o.width(), 1, "width clamps to >= 1");
        assert_eq!(o.precision(), Precision::F32);
        assert_eq!(BatchOptions::new().with_width(16).width(), 16);
        assert_eq!(Precision::F64.name(), "f64");
        assert_eq!(Precision::F32.name(), "f32");
    }
}
