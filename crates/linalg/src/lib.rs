//! # ic-linalg — dense linear algebra substrate
//!
//! Self-contained dense linear algebra over `f64`, written from scratch for
//! the independent-connection traffic-matrix toolkit. The traffic-matrix
//! fitting and estimation pipelines need a small but non-trivial set of
//! numerical kernels:
//!
//! * a row-major dense [`Matrix`] with the usual arithmetic ([`matrix`]),
//! * Householder QR factorization and least-squares solves ([`qr`]),
//! * Cholesky factorization for symmetric positive-definite systems
//!   ([`cholesky`]),
//! * a one-sided Jacobi SVD and the Moore–Penrose pseudo-inverse used by the
//!   stable-fP estimation prior (paper Eq. 8–9) ([`svd`], [`pinv`]),
//! * Lawson–Hanson non-negative least squares for the activity/preference
//!   sub-problems of the Section 5.1 fitting program ([`mod@nnls`]),
//! * Euclidean projection onto the probability simplex for the preference
//!   constraint `ΣP = 1, P ≥ 0` ([`simplex`]).
//!
//! ## Design notes
//!
//! Following the smoltcp design ethos, this crate favours simplicity and
//! robustness over cleverness: no `unsafe`, no SIMD intrinsics, no
//! type-level tricks. All routines are deterministic. Errors are reported
//! through [`LinalgError`]; the library never panics on user input except
//! for internal invariant violations (which are bugs).
//!
//! ## What is implemented / omitted
//!
//! Implemented: everything the traffic-matrix pipelines need (see above),
//! plus a CSR [`SparseMatrix`] ([`sparse`]) — routing matrices of
//! production-scale topologies are overwhelmingly sparse, and the
//! estimation hot path (tomogravity's `A W Aᵀ`, link-count matvecs) runs
//! on the sparse representation.
//! Omitted: complex scalars, LU with pivoting (Cholesky + QR cover all
//! solves we perform), and eigendecomposition (not needed).

pub mod batch;
pub mod cholesky;
pub mod matrix;
pub mod nnls;
pub mod pcg;
pub mod pinv;
pub mod precond;
pub mod qr;
pub mod simplex;
pub mod solver;
pub mod sparse;
pub mod svd;

pub use batch::{BatchOptions, PcgBatchSolve, PcgBatchWorkspace, Precision};
pub use cholesky::{Cholesky, CholeskyWorkspace};
pub use matrix::Matrix;
pub use nnls::{nnls, NnlsOptions};
pub use pcg::{PcgSolve, PcgWorkspace, PCG_MAX_ITERATIONS, PCG_REL_TOLERANCE};
pub use pinv::pseudo_inverse;
pub use precond::BlockJacobiPreconditioner;
pub use qr::Qr;
pub use simplex::project_to_simplex;
pub use solver::{
    DenseNormalSolver, NormalSolver, NormalSolverWorkspace, PcgNormalSolver, SolveStats,
    SolverKind, SolverPolicy,
};
pub use sparse::SparseMatrix;
pub use svd::Svd;

// Send/Sync audit for the parallel execution engine: every matrix type
// and reusable workspace crossing `ic-engine` worker boundaries must be
// plain owned data. A non-`Send` field sneaking in (an `Rc`, a raw
// pointer cache, ...) turns this into a compile error here rather than a
// trait-bound error deep inside a downstream crate.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Matrix>();
    _assert_send_sync::<SparseMatrix>();
    _assert_send_sync::<Cholesky>();
    _assert_send_sync::<CholeskyWorkspace>();
    _assert_send_sync::<Qr>();
    _assert_send_sync::<Svd>();
    _assert_send_sync::<PcgWorkspace>();
    _assert_send_sync::<PcgBatchWorkspace>();
    _assert_send_sync::<BlockJacobiPreconditioner>();
    _assert_send_sync::<BatchOptions>();
    _assert_send_sync::<Precision>();
    _assert_send_sync::<DenseNormalSolver>();
    _assert_send_sync::<PcgNormalSolver>();
    _assert_send_sync::<NormalSolverWorkspace>();
    _assert_send_sync::<SolverPolicy>();
    _assert_send_sync::<SolveStats>();
    _assert_send_sync::<LinalgError>();
};

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) where a
    /// non-singular matrix is required.
    Singular,
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Routine name.
        routine: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was out of the routine's domain (e.g. empty matrix).
    InvalidArgument(&'static str),
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} did not converge after {iterations} iterations"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, LinalgError>;

/// Machine-epsilon-scaled tolerance used across the crate for rank
/// decisions: `max(m, n) * eps * largest_singular_value`, following LAPACK
/// conventions.
pub(crate) fn rank_tolerance(rows: usize, cols: usize, largest: f64) -> f64 {
    rows.max(cols) as f64 * f64::EPSILON * largest.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::Singular);
    }

    #[test]
    fn error_display_covers_all_variants() {
        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::NotPositiveDefinite
            .to_string()
            .contains("positive definite"));
        assert!(LinalgError::NoConvergence {
            routine: "jacobi_svd",
            iterations: 30
        }
        .to_string()
        .contains("jacobi_svd"));
        assert!(LinalgError::InvalidArgument("empty")
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn rank_tolerance_scales_with_dimension() {
        let t1 = rank_tolerance(10, 10, 1.0);
        let t2 = rank_tolerance(100, 10, 1.0);
        assert!(t2 > t1);
    }

    #[test]
    fn rank_tolerance_positive_for_zero_matrix() {
        assert!(rank_tolerance(3, 3, 0.0) > 0.0);
    }
}
