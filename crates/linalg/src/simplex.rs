//! Euclidean projection onto the probability simplex.
//!
//! The preference vector of the IC model is constrained to `P ≥ 0,
//! ΣP = 1` (paper Section 5.1). The fitting program mostly enforces this by
//! rescaling (the model is scale-invariant in `(A, P)` jointly), but the
//! projection is also exposed for estimators that need a hard projection
//! step, and is a useful primitive in its own right.
//!
//! Algorithm: the O(n log n) sort-based method of Held, Wolfe & Crowder
//! (1974), as popularized by Duchi et al. (2008).

/// Projects `v` onto the simplex `{x : x ≥ 0, Σx = radius}` in Euclidean
/// distance, returning the projection.
///
/// `radius` must be positive and finite; non-finite input entries are
/// treated as 0 (a defensive choice documented here rather than a panic,
/// since upstream estimators can produce NaNs on degenerate weeks).
///
/// # Examples
///
/// ```
/// use ic_linalg::project_to_simplex;
///
/// let p = project_to_simplex(&[0.5, 0.5, 0.5], 1.0);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn project_to_simplex(v: &[f64], radius: f64) -> Vec<f64> {
    assert!(
        radius > 0.0 && radius.is_finite(),
        "simplex radius must be positive and finite"
    );
    let n = v.len();
    if n == 0 {
        return Vec::new();
    }
    let clean: Vec<f64> = v
        .iter()
        .map(|&x| if x.is_finite() { x } else { 0.0 })
        .collect();
    // Sort descending.
    let mut u = clean.clone();
    u.sort_by(|a, b| b.partial_cmp(a).expect("cleaned values are finite"));
    // Find rho = max{ j : u_j - (Σ_{k<=j} u_k - radius)/j > 0 }.
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (j, &uj) in u.iter().enumerate() {
        cumsum += uj;
        let candidate = (cumsum - radius) / (j as f64 + 1.0);
        if uj - candidate > 0.0 {
            rho = j + 1;
            theta = candidate;
        }
    }
    if rho == 0 {
        // All mass collapses onto the largest coordinate (can only happen
        // with pathological inputs); distribute uniformly as a safe default.
        return vec![radius / n as f64; n];
    }
    clean.iter().map(|&x| (x - theta).max(0.0)).collect()
}

/// Normalizes a non-negative vector to sum to one.
///
/// Returns `None` if the sum is not positive (all-zero or negative mass),
/// in which case callers typically fall back to the uniform distribution.
pub fn normalize_to_unit_sum(v: &[f64]) -> Option<Vec<f64>> {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        Some(v.iter().map(|&x| x / sum).collect())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on_simplex(p: &[f64], radius: f64) -> bool {
        p.iter().all(|&x| x >= -1e-12) && (p.iter().sum::<f64>() - radius).abs() < 1e-9
    }

    #[test]
    fn already_on_simplex_is_fixed_point() {
        let p = [0.2, 0.3, 0.5];
        let proj = project_to_simplex(&p, 1.0);
        for (a, b) in p.iter().zip(proj.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_input_projects_uniformly() {
        let proj = project_to_simplex(&[7.0, 7.0, 7.0, 7.0], 1.0);
        assert!(on_simplex(&proj, 1.0));
        for &x in &proj {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_entries_are_zeroed() {
        let proj = project_to_simplex(&[1.0, -100.0], 1.0);
        assert!(on_simplex(&proj, 1.0));
        assert_eq!(proj[1], 0.0);
        assert!((proj[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn respects_custom_radius() {
        let proj = project_to_simplex(&[1.0, 2.0, 3.0], 6.0);
        assert!(on_simplex(&proj, 6.0));
        // Input already sums to 6 and is non-negative: fixed point.
        assert!((proj[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn projection_is_closest_point() {
        // Compare against a brute-force grid for a 2-simplex.
        let v = [0.9, 0.4];
        let proj = project_to_simplex(&v, 1.0);
        let d_proj: f64 = v
            .iter()
            .zip(proj.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let mut best = f64::INFINITY;
        let steps = 2000;
        for i in 0..=steps {
            let x0 = i as f64 / steps as f64;
            let x1 = 1.0 - x0;
            let d = (v[0] - x0).powi(2) + (v[1] - x1).powi(2);
            best = best.min(d);
        }
        assert!(d_proj <= best + 1e-6);
    }

    #[test]
    fn handles_nan_input_defensively() {
        let proj = project_to_simplex(&[f64::NAN, 1.0], 1.0);
        assert!(on_simplex(&proj, 1.0));
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(project_to_simplex(&[], 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_panics() {
        project_to_simplex(&[1.0], 0.0);
    }

    #[test]
    fn normalize_happy_path() {
        let p = normalize_to_unit_sum(&[2.0, 2.0]).unwrap();
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn normalize_rejects_zero_mass() {
        assert!(normalize_to_unit_sum(&[0.0, 0.0]).is_none());
        assert!(normalize_to_unit_sum(&[]).is_none());
    }

    #[test]
    fn normalize_rejects_infinite_mass() {
        assert!(normalize_to_unit_sum(&[f64::INFINITY, 1.0]).is_none());
    }
}
