//! Lawson–Hanson non-negative least squares.
//!
//! The Section 5.1 fitting program constrains activities and preferences to
//! be non-negative. Its block-coordinate sub-problems are therefore NNLS
//! problems `min ‖A x − b‖₂ s.t. x ≥ 0`; this module implements the
//! classic active-set algorithm of Lawson & Hanson (1974), which is exact
//! for these small, well-conditioned systems.

use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::{LinalgError, Result};

/// Options controlling the NNLS active-set iteration.
#[derive(Debug, Clone, Copy)]
pub struct NnlsOptions {
    /// Maximum outer iterations; the default `3 * n` follows common
    /// practice (scipy uses the same bound).
    pub max_iterations: Option<usize>,
    /// Dual-feasibility tolerance for termination.
    pub tolerance: f64,
}

impl Default for NnlsOptions {
    fn default() -> Self {
        NnlsOptions {
            max_iterations: None,
            tolerance: 1e-10,
        }
    }
}

/// Solves `min ‖A x − b‖₂` subject to `x ≥ 0`.
///
/// Returns the optimal `x`. The active-set method maintains a passive set
/// `P` of coordinates allowed to be positive; at each step it solves the
/// unconstrained least-squares problem restricted to `P` and walks toward
/// it while keeping feasibility.
///
/// # Examples
///
/// ```
/// use ic_linalg::{nnls, Matrix, NnlsOptions};
///
/// // Unconstrained optimum is x = (-1, 2); NNLS clips the first coordinate.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
/// let x = nnls(&a, &[-1.0, 2.0], NnlsOptions::default()).unwrap();
/// assert_eq!(x[0], 0.0);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// ```
pub fn nnls(a: &Matrix, b: &[f64], options: NnlsOptions) -> Result<Vec<f64>> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op: "nnls",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let max_iter = options.max_iterations.unwrap_or(3 * n.max(8));
    let tol = options.tolerance;

    let mut x = vec![0.0; n];
    let mut passive = vec![false; n];
    // Dual vector w = Aᵀ (b − A x); at the solution w ≤ 0 on the active set.
    let mut iterations = 0usize;
    loop {
        let ax = a.matvec(&x)?;
        let resid: Vec<f64> = b
            .iter()
            .zip(ax.iter())
            .map(|(&bi, &axi)| bi - axi)
            .collect();
        let w = a.matvec_transposed(&resid)?;
        // Pick the most violating active coordinate.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if !passive[j] && w[j] > tol {
                match best {
                    Some((_, wv)) if wv >= w[j] => {}
                    _ => best = Some((j, w[j])),
                }
            }
        }
        let Some((enter, _)) = best else {
            return Ok(x); // KKT satisfied.
        };
        passive[enter] = true;

        // Inner loop: solve restricted LS, backtrack while infeasible.
        loop {
            iterations += 1;
            if iterations > max_iter {
                return Err(LinalgError::NoConvergence {
                    routine: "nnls",
                    iterations: max_iter,
                });
            }
            let idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            let z = solve_subproblem(a, b, &idx)?;
            if z.iter().all(|&v| v > tol) {
                // Fully feasible step.
                x.fill(0.0);
                for (&j, &zj) in idx.iter().zip(z.iter()) {
                    x[j] = zj;
                }
                break;
            }
            // Backtrack: find the largest alpha keeping x + alpha (z - x) >= 0.
            let mut alpha = f64::INFINITY;
            for (&j, &zj) in idx.iter().zip(z.iter()) {
                if zj <= tol {
                    let xj = x[j];
                    let denom = xj - zj;
                    if denom > 0.0 {
                        alpha = alpha.min(xj / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (&j, &zj) in idx.iter().zip(z.iter()) {
                x[j] += alpha * (zj - x[j]);
            }
            // Move zeroed coordinates back to the active set.
            for &j in &idx {
                if x[j] <= tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }
    }
}

/// Unconstrained least squares restricted to the columns in `idx`.
fn solve_subproblem(a: &Matrix, b: &[f64], idx: &[usize]) -> Result<Vec<f64>> {
    let m = a.rows();
    let k = idx.len();
    let mut sub = Matrix::zeros(m, k);
    for i in 0..m {
        let row = a.row(i);
        for (c, &j) in idx.iter().enumerate() {
            sub[(i, c)] = row[j];
        }
    }
    match Qr::factor(&sub).and_then(|qr| qr.solve_least_squares(b)) {
        Ok(z) => Ok(z),
        Err(LinalgError::Singular) => {
            // Degenerate passive set (collinear columns): fall back to the
            // minimum-norm solution via the pseudo-inverse.
            let p = crate::pinv::pseudo_inverse(&sub, None)?;
            p.matvec(b)
        }
        Err(e) => Err(e),
    }
}

/// Convenience wrapper: NNLS against normal equations `(AᵀA) x = Aᵀb` when
/// the caller has already accumulated the Gram matrix `ata` and moment
/// vector `atb`.
///
/// This is used by the preference solve of the fitting program, which
/// accumulates normal equations across thousands of time bins without ever
/// materializing the tall design matrix. Since `AᵀA` is SPD (or nearly so),
/// we synthesize a square-root factor via Cholesky with a tiny ridge and
/// run standard NNLS on it.
pub fn nnls_from_normal_equations(
    ata: &Matrix,
    atb: &[f64],
    options: NnlsOptions,
) -> Result<Vec<f64>> {
    let n = ata.rows();
    if ata.cols() != n {
        return Err(LinalgError::InvalidArgument(
            "nnls_from_normal_equations: Gram matrix must be square",
        ));
    }
    if atb.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "nnls_from_normal_equations",
            lhs: ata.shape(),
            rhs: (atb.len(), 1),
        });
    }
    // Scale-aware ridge keeps the factorization stable without visibly
    // perturbing the solution.
    let scale = ata.max_abs().max(f64::MIN_POSITIVE);
    let ridge = scale * 1e-12;
    let chol = crate::cholesky::Cholesky::factor_regularized(ata, ridge)?;
    // A = Lᵀ reproduces AᵀA = L Lᵀ; the matching rhs is b' = L⁻¹ (Aᵀ b).
    let l = chol.l();
    let n_ = l.rows();
    let mut bprime = vec![0.0; n_];
    for i in 0..n_ {
        let mut s = atb[i];
        for j in 0..i {
            s -= l[(i, j)] * bprime[j];
        }
        bprime[i] = s / l[(i, i)];
    }
    nnls(&l.transpose(), &bprime, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_optimum_feasible() {
        // If the LS optimum is already non-negative, NNLS returns it.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x_true = [2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = nnls(&a, &b, NnlsOptions::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn clips_negative_coordinates() {
        let a = Matrix::identity(3);
        let x = nnls(&a, &[-5.0, 0.0, 7.0], NnlsOptions::default()).unwrap();
        assert_eq!(x[0], 0.0);
        assert_eq!(x[1], 0.0);
        assert!((x[2] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn classic_lawson_hanson_example() {
        let a =
            Matrix::from_rows(&[&[1.0, 1.0, 2.0], &[10.0, 11.0, -9.0], &[-1.0, 0.0, 0.0]]).unwrap();
        let b = [-1.0, 11.0, 0.0];
        let x = nnls(&a, &b, NnlsOptions::default()).unwrap();
        // Solution must be feasible and satisfy KKT: Aᵀ(b−Ax) ≤ 0 where x=0,
        // = 0 where x>0.
        assert!(x.iter().all(|&v| v >= 0.0));
        let r: Vec<f64> = {
            let ax = a.matvec(&x).unwrap();
            b.iter()
                .zip(ax.iter())
                .map(|(&bi, &axi)| bi - axi)
                .collect()
        };
        let w = a.matvec_transposed(&r).unwrap();
        for (j, (&xj, &wj)) in x.iter().zip(w.iter()).enumerate() {
            if xj > 1e-9 {
                assert!(wj.abs() < 1e-7, "coordinate {j}: w = {wj}");
            } else {
                assert!(wj <= 1e-7, "coordinate {j}: w = {wj}");
            }
        }
    }

    #[test]
    fn nnls_never_beats_unconstrained_ls_but_is_close_when_feasible() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0], &[0.5, 0.5]]).unwrap();
        let b = [4.0, 3.0, 1.0];
        let x = nnls(&a, &b, NnlsOptions::default()).unwrap();
        let ls = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        if ls.iter().all(|&v| v >= 0.0) {
            for (xn, xl) in x.iter().zip(ls.iter()) {
                assert!((xn - xl).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let x = nnls(&a, &[0.0, 0.0], NnlsOptions::default()).unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn validates_shapes() {
        let a = Matrix::identity(2);
        assert!(nnls(&a, &[1.0], NnlsOptions::default()).is_err());
    }

    #[test]
    fn empty_columns_gives_empty_solution() {
        let a = Matrix::zeros(3, 0);
        let x = nnls(&a, &[1.0, 2.0, 3.0], NnlsOptions::default()).unwrap();
        assert!(x.is_empty());
    }

    #[test]
    fn handles_collinear_columns() {
        // Columns 0 and 1 are identical: solution mass is split or placed on
        // one of them; residual must still be optimal.
        let a = Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let b = [2.0, 2.0, 5.0];
        let x = nnls(&a, &b, NnlsOptions::default()).unwrap();
        assert!((x[0] + x[1] - 2.0).abs() < 1e-8);
        assert!((x[2] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn normal_equations_variant_matches_direct() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 0.5], &[0.3, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        let direct = nnls(&a, &b, NnlsOptions::default()).unwrap();
        let ata = a.gram();
        let atb = a.matvec_transposed(&b).unwrap();
        let viane = nnls_from_normal_equations(&ata, &atb, NnlsOptions::default()).unwrap();
        for (d, v) in direct.iter().zip(viane.iter()) {
            assert!((d - v).abs() < 1e-6, "direct {direct:?} vs NE {viane:?}");
        }
    }

    #[test]
    fn normal_equations_validates_shapes() {
        let ata = Matrix::zeros(2, 3);
        assert!(nnls_from_normal_equations(&ata, &[1.0, 2.0], NnlsOptions::default()).is_err());
        let ata = Matrix::identity(2);
        assert!(nnls_from_normal_equations(&ata, &[1.0], NnlsOptions::default()).is_err());
    }

    #[test]
    fn iteration_budget_respected() {
        let a = Matrix::identity(2);
        let opts = NnlsOptions {
            max_iterations: Some(0),
            tolerance: 1e-10,
        };
        assert!(matches!(
            nnls(&a, &[1.0, 1.0], opts),
            Err(LinalgError::NoConvergence { .. })
        ));
    }
}
