//! Matrix-free preconditioned conjugate gradients for SPD systems.
//!
//! The tomogravity normal equations `(A·diag(w)·Aᵀ + λI) x = b` only ever
//! touch the operator through matvecs, so past a few hundred links the
//! dense `rows x rows` gram matrix ([`crate::sparse::SparseMatrix::awat_into`]
//! into [`crate::Cholesky`]) is pure overhead: `O(rows²)` memory and
//! `O(rows³)` factorization for a system whose matrix-vector product costs
//! `O(nnz)`. [`PcgWorkspace`] solves such systems without materializing
//! the matrix at all — the caller supplies the operator as a closure (two
//! CSR matvecs for the tomogravity case) plus its diagonal, and the solver
//! runs Jacobi-preconditioned CG over caller-invisible reusable buffers.
//!
//! Mirroring [`crate::CholeskyWorkspace`], the workspace is
//! allocation-free once warm: buffers are sized on first use and reused
//! across bins. All arithmetic is sequential and deterministic — equal
//! inputs produce bit-identical iterates on any thread.

use crate::{LinalgError, Result};

/// Default relative-residual convergence threshold: iteration stops when
/// `‖r‖ ≤ PCG_REL_TOLERANCE · ‖b‖`. Tight enough that PCG solutions agree
/// with a dense Cholesky solve to well under 1e-8 on the well-conditioned
/// ridged systems the estimation pipelines produce.
pub const PCG_REL_TOLERANCE: f64 = 1e-12;

/// Absolute cap on operator applications per solve, on top of the
/// size-relative `2·n` budget. On well-conditioned ridged systems PCG
/// converges in far fewer iterations; on ill-conditioned ones (heavy-tailed
/// traffic weights drive the gram matrix's spectrum apart) the tolerance can
/// be unreachable in floating point, and without an absolute cap a
/// 5k-node solve would burn `2·n ≈ 20k` iterations of `O(nnz)` work to gain
/// nothing over the iterate it had at one thousand. Capped solves surface as
/// `converged: false` and are counted as stalls by the estimation layers.
pub const PCG_MAX_ITERATIONS: usize = 1000;

/// Outcome of one [`PcgWorkspace::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcgSolve {
    /// Operator applications performed.
    pub iterations: usize,
    /// False when the iteration budget ran out before the residual
    /// threshold was met; the best iterate so far is still written to `x`,
    /// and the caller decides whether "close" is good enough (the
    /// estimation pipelines count such stalls instead of failing).
    pub converged: bool,
}

/// Reusable buffers for Jacobi-preconditioned conjugate gradients.
///
/// # Examples
///
/// ```
/// use ic_linalg::{Matrix, PcgWorkspace};
///
/// // Solve (A + 0·I) x = b for SPD A through its matvec only.
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
/// let diag = [4.0, 3.0];
/// let mut ws = PcgWorkspace::new();
/// let mut x = [0.0; 2];
/// let out = ws
///     .solve(&diag, 0.0, &[1.0, 2.0], &mut x, |v, y| {
///         y.copy_from_slice(&a.matvec(v).unwrap());
///         Ok(())
///     })
///     .unwrap();
/// assert!(out.converged);
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PcgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl PcgWorkspace {
    /// An empty workspace; buffers are sized on first solve.
    pub fn new() -> Self {
        PcgWorkspace::default()
    }

    /// Solves `(M + ridge·I) x = b` where `apply` computes `y = M·v` and
    /// `diag` holds the (unridged) diagonal of `M`, used as the Jacobi
    /// preconditioner.
    ///
    /// Starts from `x = 0` and iterates until the residual drops below
    /// [`PCG_REL_TOLERANCE`]`·‖b‖` or the budget of `2·n` applications
    /// (capped at [`PCG_MAX_ITERATIONS`]) is spent, whichever comes
    /// first; the returned [`PcgSolve`] reports which. Non-positive preconditioner entries (an all-zero operator
    /// row with zero ridge) fall back to the identity scaling for that
    /// coordinate.
    pub fn solve(
        &mut self,
        diag: &[f64],
        ridge: f64,
        b: &[f64],
        x: &mut [f64],
        mut apply: impl FnMut(&[f64], &mut [f64]) -> Result<()>,
    ) -> Result<PcgSolve> {
        let n = b.len();
        if n == 0 {
            return Err(LinalgError::InvalidArgument("pcg: empty system"));
        }
        if x.len() != n || diag.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "pcg_solve",
                lhs: (n, 1),
                rhs: (x.len(), diag.len()),
            });
        }
        if !(ridge >= 0.0) {
            return Err(LinalgError::InvalidArgument(
                "pcg: ridge must be non-negative",
            ));
        }
        self.ensure(n);
        let precond = |diag_i: f64| {
            let m = diag_i + ridge;
            if m > 0.0 && m.is_finite() {
                m
            } else {
                1.0
            }
        };

        // x = 0, r = b.
        x.fill(0.0);
        self.r.copy_from_slice(b);
        let b_norm2 = dot(b, b);
        if b_norm2 == 0.0 {
            return Ok(PcgSolve {
                iterations: 0,
                converged: true,
            });
        }
        let tol2 = PCG_REL_TOLERANCE * PCG_REL_TOLERANCE * b_norm2;
        for ((z, &r), &d) in self.z.iter_mut().zip(self.r.iter()).zip(diag.iter()) {
            *z = r / precond(d);
        }
        self.p.copy_from_slice(&self.z);
        let mut rz = dot(&self.r, &self.z);
        let max_iterations = (2 * n).clamp(32, PCG_MAX_ITERATIONS);
        for iteration in 1..=max_iterations {
            apply(&self.p, &mut self.ap)?;
            if ridge > 0.0 {
                for (ap, &p) in self.ap.iter_mut().zip(self.p.iter()) {
                    *ap += ridge * p;
                }
            }
            let pap = dot(&self.p, &self.ap);
            if !(pap > 0.0) || !pap.is_finite() {
                // Loss of positive definiteness in finite arithmetic:
                // stop with the best iterate so far rather than diverge.
                return Ok(PcgSolve {
                    iterations: iteration,
                    converged: false,
                });
            }
            let alpha = rz / pap;
            for (xi, &pi) in x.iter_mut().zip(self.p.iter()) {
                *xi += alpha * pi;
            }
            for (ri, &api) in self.r.iter_mut().zip(self.ap.iter()) {
                *ri -= alpha * api;
            }
            if dot(&self.r, &self.r) <= tol2 {
                return Ok(PcgSolve {
                    iterations: iteration,
                    converged: true,
                });
            }
            for ((z, &r), &d) in self.z.iter_mut().zip(self.r.iter()).zip(diag.iter()) {
                *z = r / precond(d);
            }
            let rz_next = dot(&self.r, &self.z);
            let beta = rz_next / rz;
            rz = rz_next;
            for (p, &z) in self.p.iter_mut().zip(self.z.iter()) {
                *p = z + beta * *p;
            }
        }
        Ok(PcgSolve {
            iterations: max_iterations,
            converged: false,
        })
    }

    /// Solves `(M + ridge·I) x = b` with a caller-supplied preconditioner:
    /// `apply` computes `y = M·v` exactly as in [`PcgWorkspace::solve`],
    /// and `precond` computes `z = P⁻¹·r` for an SPD approximation `P` of
    /// `M + ridge·I` (e.g. the block-Jacobi
    /// [`crate::BlockJacobiPreconditioner`]).
    ///
    /// Same start, stopping rule and iteration budget as
    /// [`PcgWorkspace::solve`]; the existing scalar-Jacobi path is left
    /// untouched (and bit-identical) — this is the generalization the
    /// multilevel estimation work rides, where per-cluster diagonal
    /// blocks capture the coupling a scalar preconditioner misses. A
    /// preconditioner that is not positive definite on the running
    /// residual surfaces as a non-converged solve on the best iterate, as
    /// with an indefinite operator.
    pub fn solve_preconditioned(
        &mut self,
        ridge: f64,
        b: &[f64],
        x: &mut [f64],
        mut apply: impl FnMut(&[f64], &mut [f64]) -> Result<()>,
        mut precond: impl FnMut(&[f64], &mut [f64]) -> Result<()>,
    ) -> Result<PcgSolve> {
        let n = b.len();
        if n == 0 {
            return Err(LinalgError::InvalidArgument("pcg: empty system"));
        }
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "pcg_solve_preconditioned",
                lhs: (n, 1),
                rhs: (x.len(), 1),
            });
        }
        if !(ridge >= 0.0) {
            return Err(LinalgError::InvalidArgument(
                "pcg: ridge must be non-negative",
            ));
        }
        self.ensure(n);

        // x = 0, r = b.
        x.fill(0.0);
        self.r.copy_from_slice(b);
        let b_norm2 = dot(b, b);
        if b_norm2 == 0.0 {
            return Ok(PcgSolve {
                iterations: 0,
                converged: true,
            });
        }
        let tol2 = PCG_REL_TOLERANCE * PCG_REL_TOLERANCE * b_norm2;
        precond(&self.r, &mut self.z)?;
        self.p.copy_from_slice(&self.z);
        let mut rz = dot(&self.r, &self.z);
        if !(rz > 0.0) || !rz.is_finite() {
            // The preconditioner is not SPD on this residual; x = 0 is
            // the best iterate we can certify.
            return Ok(PcgSolve {
                iterations: 0,
                converged: false,
            });
        }
        let max_iterations = (2 * n).clamp(32, PCG_MAX_ITERATIONS);
        for iteration in 1..=max_iterations {
            apply(&self.p, &mut self.ap)?;
            if ridge > 0.0 {
                for (ap, &p) in self.ap.iter_mut().zip(self.p.iter()) {
                    *ap += ridge * p;
                }
            }
            let pap = dot(&self.p, &self.ap);
            if !(pap > 0.0) || !pap.is_finite() {
                return Ok(PcgSolve {
                    iterations: iteration,
                    converged: false,
                });
            }
            let alpha = rz / pap;
            for (xi, &pi) in x.iter_mut().zip(self.p.iter()) {
                *xi += alpha * pi;
            }
            for (ri, &api) in self.r.iter_mut().zip(self.ap.iter()) {
                *ri -= alpha * api;
            }
            if dot(&self.r, &self.r) <= tol2 {
                return Ok(PcgSolve {
                    iterations: iteration,
                    converged: true,
                });
            }
            precond(&self.r, &mut self.z)?;
            let rz_next = dot(&self.r, &self.z);
            if !(rz_next > 0.0) || !rz_next.is_finite() {
                return Ok(PcgSolve {
                    iterations: iteration,
                    converged: false,
                });
            }
            let beta = rz_next / rz;
            rz = rz_next;
            for (p, &z) in self.p.iter_mut().zip(self.z.iter()) {
                *p = z + beta * *p;
            }
        }
        Ok(PcgSolve {
            iterations: max_iterations,
            converged: false,
        })
    }

    fn ensure(&mut self, n: usize) {
        if self.r.len() != n {
            self.r.resize(n, 0.0);
            self.z.resize(n, 0.0);
            self.p.resize(n, 0.0);
            self.ap.resize(n, 0.0);
        }
    }
}

/// Sequential dot product — deterministic accumulation order.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cholesky, Matrix};

    fn spd(n: usize, seed: u64) -> Matrix {
        // Bᵀ B + I for a deterministic pseudo-random B — guaranteed SPD.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let data: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let b = Matrix::from_vec(n, n, data).unwrap();
        let mut a = b.gram();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    }

    fn diag_of(a: &Matrix) -> Vec<f64> {
        (0..a.rows()).map(|i| a[(i, i)]).collect()
    }

    #[test]
    fn matches_cholesky_on_spd_systems() {
        for n in [1, 2, 5, 12] {
            let a = spd(n, 42 + n as u64);
            let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let dense = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
            let mut ws = PcgWorkspace::new();
            let mut x = vec![0.0; n];
            let out = ws
                .solve(&diag_of(&a), 0.0, &b, &mut x, |v, y| {
                    y.copy_from_slice(&a.matvec(v).unwrap());
                    Ok(())
                })
                .unwrap();
            assert!(out.converged, "n={n} stalled after {}", out.iterations);
            for (got, want) in x.iter().zip(dense.iter()) {
                assert!((got - want).abs() < 1e-9, "n={n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn ridge_shifts_the_operator() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]).unwrap();
        let ridge = 3.0;
        let mut ws = PcgWorkspace::new();
        let mut x = [0.0; 2];
        let out = ws
            .solve(&diag_of(&a), ridge, &[10.0, 16.0], &mut x, |v, y| {
                y.copy_from_slice(&a.matvec(v).unwrap());
                Ok(())
            })
            .unwrap();
        assert!(out.converged);
        // (2+3)x0 = 10, (5+3)x1 = 16.
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let mut ws = PcgWorkspace::new();
        let mut x = [7.0; 3];
        let out = ws
            .solve(&[1.0; 3], 0.0, &[0.0; 3], &mut x, |_, _| {
                panic!("operator must not be applied for b = 0")
            })
            .unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
        assert_eq!(x, [0.0; 3]);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_and_resizes() {
        let a5 = spd(5, 7);
        let a3 = spd(3, 9);
        let b5: Vec<f64> = (0..5).map(|i| 1.0 + i as f64).collect();
        let b3 = vec![1.0, -2.0, 0.5];
        let mut ws = PcgWorkspace::new();
        let mut x = vec![0.0; 5];
        for (a, b) in [(&a5, &b5), (&a3, &b3), (&a5, &b5)] {
            let n = a.rows();
            x.resize(n, 0.0);
            let apply = |v: &[f64], y: &mut [f64]| {
                y.copy_from_slice(&a.matvec(v).unwrap());
                Ok(())
            };
            ws.solve(&diag_of(a), 1e-9, b, &mut x, apply).unwrap();
            let mut x2 = vec![0.0; n];
            let mut fresh = PcgWorkspace::new();
            fresh.solve(&diag_of(a), 1e-9, b, &mut x2, apply).unwrap();
            assert_eq!(x, x2, "reused workspace must match a fresh one");
        }
    }

    #[test]
    fn rejects_bad_arguments() {
        let mut ws = PcgWorkspace::new();
        let ok = |_: &[f64], _: &mut [f64]| Ok(());
        let mut x = [0.0; 2];
        assert!(ws.solve(&[], 0.0, &[], &mut [], ok).is_err());
        assert!(ws.solve(&[1.0], 0.0, &[1.0, 1.0], &mut x, ok).is_err());
        assert!(ws
            .solve(&[1.0, 1.0], -1.0, &[1.0, 1.0], &mut x, ok)
            .is_err());
        assert!(ws
            .solve(&[1.0, 1.0], f64::NAN, &[1.0, 1.0], &mut x, ok)
            .is_err());
    }

    #[test]
    fn operator_errors_propagate() {
        let mut ws = PcgWorkspace::new();
        let mut x = [0.0; 2];
        let err = ws
            .solve(&[1.0, 1.0], 0.0, &[1.0, 1.0], &mut x, |_, _| {
                Err(LinalgError::InvalidArgument("boom"))
            })
            .unwrap_err();
        assert!(matches!(err, LinalgError::InvalidArgument("boom")));
    }

    #[test]
    fn indefinite_operator_reports_stall_not_divergence() {
        // -I is not PSD: p·Ap < 0 on the first iteration.
        let mut ws = PcgWorkspace::new();
        let mut x = [0.0; 2];
        let out = ws
            .solve(&[-1.0, -1.0], 0.0, &[1.0, 1.0], &mut x, |v, y| {
                for (yi, &vi) in y.iter_mut().zip(v.iter()) {
                    *yi = -vi;
                }
                Ok(())
            })
            .unwrap();
        assert!(!out.converged);
        assert!(x.iter().all(|v| v.is_finite()));
    }
}
