//! Compressed sparse row (CSR) matrices for the estimation hot path.
//!
//! Routing matrices are overwhelmingly sparse: a column of `R` holds one
//! entry per hop of one OD pair's path, so the density of a realistic
//! `links x n²` routing matrix falls like `1/links`. The dense kernels in
//! [`crate::matrix`] make every tomogravity/IPF/fit iteration
//! `O(links · n²)` regardless; [`SparseMatrix`] restores the
//! `O(nnz)` cost that lets the pipelines reach hundreds-of-nodes
//! topologies.
//!
//! The format is classic CSR: `row_ptr` (length `rows + 1`) delimits each
//! row's slice of `col_idx`/`values`, with column indices strictly
//! increasing inside a row. All operations are deterministic and
//! allocation-free in their `_into` variants, which is what the per-bin
//! estimation workspaces build on.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// A sparse, row-major (CSR) matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use ic_linalg::{Matrix, SparseMatrix};
///
/// let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 3.0]]).unwrap();
/// let s = SparseMatrix::from_dense(&d);
/// assert_eq!(s.nnz(), 3);
/// assert_eq!(s.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 3.0]);
/// assert_eq!(s.to_dense(), d);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Creates an empty `rows x cols` matrix (no stored entries).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from a dense one, dropping exact zeros.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates are summed and entries
    /// that cancel to exactly zero are dropped. Returns
    /// [`LinalgError::InvalidArgument`] when an index is out of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        for (r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::InvalidArgument(
                    "from_triplets: index out of bounds",
                ));
            }
            if v != 0.0 {
                entries.push((r, c, v));
            }
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates, then drop anything that cancelled to exactly
        // zero so nnz/density/equality reflect the stored values.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|e| e.1).collect();
        let values = merged.iter().map(|e| e.2).collect();
        Ok(SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Materializes the dense equivalent.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let row = out.row_mut(i);
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                row[c] += v;
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored: `nnz / (rows * cols)` (0 for an empty
    /// shape).
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Row `i` as parallel `(column indices, values)` slices.
    ///
    /// # Panics
    /// Panics if `i >= rows` (consistent with slice indexing).
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Copies column `j` into a dense vector (an `O(nnz)` scan; use the
    /// transpose for repeated column access).
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            if let Ok(k) = cols.binary_search(&j) {
                out[i] = vals[k];
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product into a caller-provided buffer
    /// (allocation-free).
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if v.len() != self.cols || out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        for (i, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut s = 0.0;
            for (&c, &a) in cols.iter().zip(vals.iter()) {
                s += a * v[c];
            }
            *o = s;
        }
        Ok(())
    }

    /// Transposed matrix-vector product `selfᵀ * v`, computed by row
    /// scatter (no transpose materialized).
    pub fn matvec_transposed(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.cols];
        self.matvec_transposed_into(v, &mut out)?;
        Ok(out)
    }

    /// Transposed matrix-vector product into a caller-provided buffer.
    pub fn matvec_transposed_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if v.len() != self.rows || out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_matvec_transposed",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&c, &a) in cols.iter().zip(vals.iter()) {
                out[c] += vi * a;
            }
        }
        Ok(())
    }

    /// Returns the transpose as a new CSR matrix (counting sort; `O(nnz +
    /// rows + cols)`).
    pub fn transpose(&self) -> SparseMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let pos = next[c];
                next[c] += 1;
                col_idx[pos] = i;
                values[pos] = v;
            }
        }
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Computes `self · diag(weights) · selfᵀ` as a dense `rows x rows`
    /// matrix (the tomogravity normal-equations operator `A W Aᵀ`).
    ///
    /// The result is small and dense even when `self` is huge and sparse,
    /// so dense output is the right container. `transpose` must be the
    /// precomputed [`SparseMatrix::transpose`] of `self`; passing it in
    /// lets per-bin callers amortize the transposition.
    pub fn awat_into(
        &self,
        weights: &[f64],
        transpose: &SparseMatrix,
        out: &mut Matrix,
    ) -> Result<()> {
        if weights.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_awat",
                lhs: self.shape(),
                rhs: (weights.len(), 1),
            });
        }
        if transpose.shape() != (self.cols, self.rows) || out.shape() != (self.rows, self.rows) {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_awat",
                lhs: transpose.shape(),
                rhs: out.shape(),
            });
        }
        out.as_mut_slice().fill(0.0);
        for r1 in 0..self.rows {
            let (cols, vals) = self.row(r1);
            let out_row = out.row_mut(r1);
            for (&c, &v1) in cols.iter().zip(vals.iter()) {
                let coeff = v1 * weights[c];
                if coeff == 0.0 {
                    continue;
                }
                let (r2s, v2s) = transpose.row(c);
                for (&r2, &v2) in r2s.iter().zip(v2s.iter()) {
                    out_row[r2] += coeff * v2;
                }
            }
        }
        Ok(())
    }

    /// Convenience allocating form of [`SparseMatrix::awat_into`].
    pub fn awat(&self, weights: &[f64]) -> Result<Matrix> {
        let t = self.transpose();
        let mut out = Matrix::zeros(self.rows, self.rows);
        self.awat_into(weights, &t, &mut out)?;
        Ok(out)
    }

    /// Writes the diagonal of `self · diag(weights) · selfᵀ` into `out`
    /// without materializing the `rows x rows` matrix:
    /// `out[r] = Σ_c a_rc² · w_c`, an `O(nnz)` scan.
    ///
    /// This is the Jacobi preconditioner of the matrix-free PCG solver;
    /// for a PSD operator it also bounds the largest entry of the full
    /// gram matrix (the maximum of a PSD matrix lies on its diagonal), so
    /// the scale-aware ridge can be chosen from it alone.
    pub fn awat_diag_into(&self, weights: &[f64], out: &mut [f64]) -> Result<()> {
        if weights.len() != self.cols || out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_awat_diag",
                lhs: self.shape(),
                rhs: (weights.len(), out.len()),
            });
        }
        for (i, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut s = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                s += v * v * weights[c];
            }
            *o = s;
        }
        Ok(())
    }

    /// Shared shape validation of the batched SoA kernels: `v` must hold
    /// `v_len_per_lane · batch` values and `out` `out_len_per_lane ·
    /// batch`.
    fn check_batch(
        &self,
        op: &'static str,
        v: &[f64],
        v_len: usize,
        out: &[f64],
        out_len: usize,
        batch: usize,
    ) -> Result<()> {
        if batch == 0 {
            return Err(LinalgError::InvalidArgument("batch width must be positive"));
        }
        if v.len() != v_len * batch || out.len() != out_len * batch {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: (v.len(), out.len()),
            });
        }
        Ok(())
    }

    /// Batched matrix-vector product over `batch` right-hand sides laid
    /// out structure-of-arrays: element `c` of lane `k` lives at
    /// `v[c*batch + k]`, and `out[i*batch + k]` receives `(self · v_k)[i]`.
    ///
    /// One CSR index traversal serves all lanes — the inner loop runs over
    /// the `batch` contiguous lane values of each stored entry, which is
    /// what the compiler autovectorizes. Each lane accumulates in the same
    /// order as [`SparseMatrix::matvec_into`], so every lane's result is
    /// bit-identical to the per-bin product, for any batch width.
    pub fn matvec_batch_into(&self, v: &[f64], batch: usize, out: &mut [f64]) -> Result<()> {
        self.check_batch("sparse_matvec_batch", v, self.cols, out, self.rows, batch)?;
        for i in 0..self.rows {
            let out_lane = &mut out[i * batch..(i + 1) * batch];
            out_lane.fill(0.0);
            let (cols, vals) = self.row(i);
            for (&c, &a) in cols.iter().zip(vals.iter()) {
                let v_lane = &v[c * batch..(c + 1) * batch];
                for (o, &x) in out_lane.iter_mut().zip(v_lane.iter()) {
                    *o += a * x;
                }
            }
        }
        Ok(())
    }

    /// Batched transposed matrix-vector product (`out_k = selfᵀ · v_k`
    /// per lane) over SoA vectors; see [`SparseMatrix::matvec_batch_into`]
    /// for the layout. Row-scatter like the per-bin kernel, with each
    /// lane's accumulation order preserved.
    pub fn matvec_transposed_batch_into(
        &self,
        v: &[f64],
        batch: usize,
        out: &mut [f64],
    ) -> Result<()> {
        self.check_batch(
            "sparse_matvec_transposed_batch",
            v,
            self.rows,
            out,
            self.cols,
            batch,
        )?;
        out.fill(0.0);
        for i in 0..self.rows {
            let v_lane = &v[i * batch..(i + 1) * batch];
            let (cols, vals) = self.row(i);
            for (&c, &a) in cols.iter().zip(vals.iter()) {
                let out_lane = &mut out[c * batch..(c + 1) * batch];
                for (o, &x) in out_lane.iter_mut().zip(v_lane.iter()) {
                    *o += a * x;
                }
            }
        }
        Ok(())
    }

    /// Batched diagonal of `self · diag(w_k) · selfᵀ` per lane
    /// (`out[i*batch + k] = Σ_c a_ic² · w[c*batch + k]`): the per-lane
    /// Jacobi preconditioners of the batched PCG solver, in one `O(nnz)`
    /// traversal. Lane accumulation order matches
    /// [`SparseMatrix::awat_diag_into`] bitwise.
    pub fn awat_diag_batch_into(
        &self,
        weights: &[f64],
        batch: usize,
        out: &mut [f64],
    ) -> Result<()> {
        self.check_batch(
            "sparse_awat_diag_batch",
            weights,
            self.cols,
            out,
            self.rows,
            batch,
        )?;
        for i in 0..self.rows {
            let out_lane = &mut out[i * batch..(i + 1) * batch];
            out_lane.fill(0.0);
            let (cols, vals) = self.row(i);
            for (&c, &a) in cols.iter().zip(vals.iter()) {
                let coeff = a * a;
                let w_lane = &weights[c * batch..(c + 1) * batch];
                for (o, &w) in out_lane.iter_mut().zip(w_lane.iter()) {
                    *o += coeff * w;
                }
            }
        }
        Ok(())
    }

    /// Reduced-precision variant of [`SparseMatrix::matvec_batch_into`]:
    /// each product is computed in `f32` and accumulated in `f64` (the
    /// [`crate::Precision::F32`] mode). Relative accuracy is bounded by
    /// single-precision rounding of the products (~1e-7 per term); the
    /// `f64` accumulator keeps the summation itself full-precision.
    pub fn matvec_batch_f32_into(&self, v: &[f64], batch: usize, out: &mut [f64]) -> Result<()> {
        self.check_batch(
            "sparse_matvec_batch_f32",
            v,
            self.cols,
            out,
            self.rows,
            batch,
        )?;
        for i in 0..self.rows {
            let out_lane = &mut out[i * batch..(i + 1) * batch];
            out_lane.fill(0.0);
            let (cols, vals) = self.row(i);
            for (&c, &a) in cols.iter().zip(vals.iter()) {
                let a32 = a as f32;
                let v_lane = &v[c * batch..(c + 1) * batch];
                for (o, &x) in out_lane.iter_mut().zip(v_lane.iter()) {
                    *o += f64::from(a32 * x as f32);
                }
            }
        }
        Ok(())
    }

    /// Reduced-precision variant of
    /// [`SparseMatrix::matvec_transposed_batch_into`]; see
    /// [`SparseMatrix::matvec_batch_f32_into`] for the arithmetic
    /// contract.
    pub fn matvec_transposed_batch_f32_into(
        &self,
        v: &[f64],
        batch: usize,
        out: &mut [f64],
    ) -> Result<()> {
        self.check_batch(
            "sparse_matvec_transposed_batch_f32",
            v,
            self.rows,
            out,
            self.cols,
            batch,
        )?;
        out.fill(0.0);
        for i in 0..self.rows {
            let v_lane = &v[i * batch..(i + 1) * batch];
            let (cols, vals) = self.row(i);
            for (&c, &a) in cols.iter().zip(vals.iter()) {
                let a32 = a as f32;
                let out_lane = &mut out[c * batch..(c + 1) * batch];
                for (o, &x) in out_lane.iter_mut().zip(v_lane.iter()) {
                    *o += f64::from(a32 * x as f32);
                }
            }
        }
        Ok(())
    }

    /// Vertical concatenation `[self ; rhs]`; column counts must match.
    pub fn vstack(&self, rhs: &SparseMatrix) -> Result<SparseMatrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_vstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut row_ptr = Vec::with_capacity(self.rows + rhs.rows + 1);
        row_ptr.extend_from_slice(&self.row_ptr);
        let base = self.nnz();
        row_ptr.extend(rhs.row_ptr.iter().skip(1).map(|&p| p + base));
        let mut col_idx = Vec::with_capacity(self.nnz() + rhs.nnz());
        col_idx.extend_from_slice(&self.col_idx);
        col_idx.extend_from_slice(&rhs.col_idx);
        let mut values = Vec::with_capacity(self.nnz() + rhs.nnz());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&rhs.values);
        Ok(SparseMatrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Selects rows by index (in the given order) into a new matrix.
    ///
    /// Used to slice routing matrices down to an instrumented subset of
    /// links. Indices may repeat.
    pub fn select_rows(&self, rows: &[usize]) -> Result<SparseMatrix> {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for &r in rows {
            if r >= self.rows {
                return Err(LinalgError::InvalidArgument(
                    "select_rows: row index out of bounds",
                ));
            }
            let (cols, vals) = self.row(r);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len());
        }
        Ok(SparseMatrix {
            rows: rows.len(),
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Selects columns by index (in the given order) into a new matrix.
    ///
    /// Used to slice a routing matrix down to a subset of OD pairs.
    /// Duplicate column indices are rejected.
    pub fn select_cols(&self, cols: &[usize]) -> Result<SparseMatrix> {
        let mut map = vec![usize::MAX; self.cols];
        for (new, &old) in cols.iter().enumerate() {
            if old >= self.cols {
                return Err(LinalgError::InvalidArgument(
                    "select_cols: column index out of bounds",
                ));
            }
            if map[old] != usize::MAX {
                return Err(LinalgError::InvalidArgument(
                    "select_cols: duplicate column index",
                ));
            }
            map[old] = new;
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for i in 0..self.rows {
            scratch.clear();
            let (rcols, rvals) = self.row(i);
            for (&c, &v) in rcols.iter().zip(rvals.iter()) {
                if map[c] != usize::MAX {
                    scratch.push((map[c], v));
                }
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(SparseMatrix {
            rows: self.rows,
            cols: cols.len(),
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Symmetric permutation of a square matrix: returns `P·self·Pᵀ`
    /// where `out[i][j] = self[perm[i]][perm[j]]`.
    ///
    /// `perm` must be a true permutation of `0..rows`. Values only move —
    /// they are never recombined — so permuting by `perm` and then by its
    /// inverse reproduces the original matrix bit-identically. This is
    /// what reorders an operator into cluster-block form for the
    /// block-Jacobi preconditioner.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<SparseMatrix> {
        if self.rows != self.cols {
            return Err(LinalgError::InvalidArgument(
                "permute_symmetric: matrix must be square",
            ));
        }
        if perm.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_permute_symmetric",
                lhs: self.shape(),
                rhs: (perm.len(), 1),
            });
        }
        // inv[old] = new; doubles as the permutation validity check.
        let mut inv = vec![usize::MAX; self.rows];
        for (new, &old) in perm.iter().enumerate() {
            if old >= self.rows || inv[old] != usize::MAX {
                return Err(LinalgError::InvalidArgument(
                    "permute_symmetric: perm is not a permutation",
                ));
            }
            inv[old] = new;
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for &old_row in perm {
            scratch.clear();
            let (cols, vals) = self.row(old_row);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                scratch.push((inv[c], v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Extracts the submatrix at the given row and column indices (in the
    /// given order): [`SparseMatrix::select_rows`] composed with
    /// [`SparseMatrix::select_cols`]. Row indices may repeat; duplicate
    /// column indices are rejected. This is the block-extraction primitive
    /// of the partition-aware decomposition.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Result<SparseMatrix> {
        self.select_rows(rows)?.select_cols(cols)
    }

    /// True when every stored value is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[3.0, 4.0, 0.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn dense_round_trip() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.shape(), (3, 4));
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.to_dense(), d);
        assert!((s.density() - 5.0 / 12.0).abs() < 1e-15);
        assert!(s.all_finite());
    }

    #[test]
    fn triplets_match_dense_build() {
        let d = sample_dense();
        let mut trips = Vec::new();
        for i in 0..3 {
            for j in 0..4 {
                if d[(i, j)] != 0.0 {
                    trips.push((i, j, d[(i, j)]));
                }
            }
        }
        // Out-of-order with a duplicate split in two halves.
        trips.reverse();
        trips.push((2, 1, 2.0));
        trips.push((2, 1, 2.0));
        let s = SparseMatrix::from_triplets(3, 4, trips).unwrap();
        let mut expect = d.clone();
        expect[(2, 1)] += 4.0;
        assert_eq!(s.to_dense(), expect);
        assert!(SparseMatrix::from_triplets(2, 2, [(2, 0, 1.0)]).is_err());
        assert!(SparseMatrix::from_triplets(2, 2, [(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn cancelled_duplicates_are_dropped() {
        let s =
            SparseMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 0, -1.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s, SparseMatrix::from_triplets(2, 2, [(1, 1, 2.0)]).unwrap());
        assert_eq!(s.to_dense()[(1, 1)], 2.0);
    }

    #[test]
    fn empty_rows_and_zeros() {
        let s = SparseMatrix::zeros(3, 5);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.to_dense(), Matrix::zeros(3, 5));
        let s = SparseMatrix::from_triplets(3, 5, [(1, 1, 0.0)]).unwrap();
        assert_eq!(s.nnz(), 0);
        assert_eq!(SparseMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let v = [1.0, -2.0, 0.5, 3.0];
        assert_eq!(s.matvec(&v).unwrap(), d.matvec(&v).unwrap());
        assert!(s.matvec(&[1.0]).is_err());
        let mut out = vec![0.0; 2];
        assert!(s.matvec_into(&v, &mut out).is_err());
    }

    #[test]
    fn matvec_transposed_matches_dense() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let v = [2.0, -1.0, 0.25];
        assert_eq!(
            s.matvec_transposed(&v).unwrap(),
            d.matvec_transposed(&v).unwrap()
        );
        assert!(s.matvec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn transpose_matches_dense() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.transpose().to_dense(), d.transpose());
        assert_eq!(s.transpose().transpose().to_dense(), d);
    }

    #[test]
    fn col_extraction() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        for j in 0..4 {
            assert_eq!(s.col(j), d.col(j));
        }
    }

    #[test]
    fn awat_matches_dense_computation() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let w = [0.5, 2.0, 1.0, 3.0];
        // Dense reference: A · diag(w) · Aᵀ.
        let aw = {
            let mut m = d.clone();
            for i in 0..m.rows() {
                for (j, v) in m.row_mut(i).iter_mut().enumerate() {
                    *v *= w[j];
                }
            }
            m
        };
        let expect = aw.matmul(&d.transpose()).unwrap();
        let got = s.awat(&w).unwrap();
        assert!(got.approx_eq(&expect, 1e-12));
        // The _into variant with a stale transpose shape errors.
        let mut out = Matrix::zeros(3, 3);
        assert!(s.awat_into(&w, &s, &mut out).is_err());
        assert!(s.awat(&[1.0]).is_err());
    }

    #[test]
    fn awat_diag_matches_full_awat() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let w = [0.5, 2.0, 1.0, 3.0];
        let full = s.awat(&w).unwrap();
        let mut diag = vec![0.0; 3];
        s.awat_diag_into(&w, &mut diag).unwrap();
        for (i, &v) in diag.iter().enumerate() {
            assert!((v - full[(i, i)]).abs() < 1e-15, "diag[{i}] {v}");
        }
        assert!(s.awat_diag_into(&[1.0], &mut diag).is_err());
        let mut short = vec![0.0; 2];
        assert!(s.awat_diag_into(&w, &mut short).is_err());
    }

    /// Interleaves per-bin vectors into the SoA layout.
    fn to_soa(lanes: &[Vec<f64>]) -> Vec<f64> {
        let batch = lanes.len();
        let n = lanes[0].len();
        let mut soa = vec![0.0; n * batch];
        for (k, lane) in lanes.iter().enumerate() {
            for (i, &v) in lane.iter().enumerate() {
                soa[i * batch + k] = v;
            }
        }
        soa
    }

    fn lane_of(soa: &[f64], k: usize, batch: usize) -> Vec<f64> {
        soa.iter().skip(k).step_by(batch).copied().collect()
    }

    #[test]
    fn batched_matvec_matches_per_bin_bitwise() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let lanes: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                (0..4)
                    .map(|i| (i as f64 - 1.5) * (k as f64 + 0.7))
                    .collect()
            })
            .collect();
        let v = to_soa(&lanes);
        let mut out = vec![0.0; 3 * 3];
        s.matvec_batch_into(&v, 3, &mut out).unwrap();
        for (k, lane) in lanes.iter().enumerate() {
            assert_eq!(lane_of(&out, k, 3), s.matvec(lane).unwrap(), "lane {k}");
        }
        // B = 1 degenerates to the per-bin kernel exactly.
        let mut out1 = vec![0.0; 3];
        s.matvec_batch_into(&lanes[0], 1, &mut out1).unwrap();
        assert_eq!(out1, s.matvec(&lanes[0]).unwrap());
        assert!(s.matvec_batch_into(&v, 0, &mut out).is_err());
        assert!(s.matvec_batch_into(&v[..4], 3, &mut out).is_err());
    }

    #[test]
    fn batched_transposed_matvec_matches_per_bin_bitwise() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        // Include a zero entry so the per-bin kernel's zero-skip is
        // exercised against the batched no-skip path.
        let lanes: Vec<Vec<f64>> = vec![vec![2.0, 0.0, -1.0], vec![0.0, 0.0, 3.5]];
        let v = to_soa(&lanes);
        let mut out = vec![0.0; 4 * 2];
        s.matvec_transposed_batch_into(&v, 2, &mut out).unwrap();
        for (k, lane) in lanes.iter().enumerate() {
            assert_eq!(
                lane_of(&out, k, 2),
                s.matvec_transposed(lane).unwrap(),
                "lane {k}"
            );
        }
        assert!(s.matvec_transposed_batch_into(&v, 0, &mut out).is_err());
        assert!(s
            .matvec_transposed_batch_into(&v, 2, &mut out[..4])
            .is_err());
    }

    #[test]
    fn batched_awat_diag_matches_per_bin_bitwise() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let lanes: Vec<Vec<f64>> = vec![
            vec![0.5, 2.0, 1.0, 3.0],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![0.0, 4.0, 0.25, 7.0],
        ];
        let w = to_soa(&lanes);
        let mut out = vec![0.0; 3 * 3];
        s.awat_diag_batch_into(&w, 3, &mut out).unwrap();
        for (k, lane) in lanes.iter().enumerate() {
            let mut want = vec![0.0; 3];
            s.awat_diag_into(lane, &mut want).unwrap();
            assert_eq!(lane_of(&out, k, 3), want, "lane {k}");
        }
        assert!(s.awat_diag_batch_into(&w, 0, &mut out).is_err());
        assert!(s.awat_diag_batch_into(&w[..4], 3, &mut out).is_err());
    }

    #[test]
    fn f32_batched_kernels_are_close_to_f64() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let lanes: Vec<Vec<f64>> = (0..2)
            .map(|k| (0..4).map(|i| 1.0 + i as f64 * 0.3 + k as f64).collect())
            .collect();
        let v = to_soa(&lanes);
        let mut exact = vec![0.0; 3 * 2];
        let mut approx = vec![0.0; 3 * 2];
        s.matvec_batch_into(&v, 2, &mut exact).unwrap();
        s.matvec_batch_f32_into(&v, 2, &mut approx).unwrap();
        for (e, a) in exact.iter().zip(approx.iter()) {
            let scale = e.abs().max(1.0);
            assert!(
                (e - a).abs() <= 1e-6 * scale,
                "f32 matvec drifted: {e} vs {a}"
            );
        }
        let lanes_t: Vec<Vec<f64>> = vec![vec![2.0, -1.0, 0.25], vec![1.0, 0.0, 3.0]];
        let vt = to_soa(&lanes_t);
        let mut exact_t = vec![0.0; 4 * 2];
        let mut approx_t = vec![0.0; 4 * 2];
        s.matvec_transposed_batch_into(&vt, 2, &mut exact_t)
            .unwrap();
        s.matvec_transposed_batch_f32_into(&vt, 2, &mut approx_t)
            .unwrap();
        for (e, a) in exact_t.iter().zip(approx_t.iter()) {
            let scale = e.abs().max(1.0);
            assert!(
                (e - a).abs() <= 1e-6 * scale,
                "f32 matvecT drifted: {e} vs {a}"
            );
        }
        let mut out = vec![0.0; 3 * 2];
        assert!(s.matvec_batch_f32_into(&v, 0, &mut out).is_err());
        assert!(s
            .matvec_transposed_batch_f32_into(&vt, 0, &mut out)
            .is_err());
    }

    #[test]
    fn vstack_matches_dense() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let stacked = s.vstack(&s).unwrap();
        assert_eq!(stacked.to_dense(), d.vstack(&d).unwrap());
        let other = SparseMatrix::zeros(1, 3);
        assert!(s.vstack(&other).is_err());
    }

    #[test]
    fn symmetric_permutation_matches_dense_and_round_trips() {
        let d = Matrix::from_rows(&[
            &[1.0, 2.0, 0.0, 0.0],
            &[0.0, 3.0, 4.0, 0.0],
            &[5.0, 0.0, 6.0, 7.0],
            &[0.0, 8.0, 0.0, 9.0],
        ])
        .unwrap();
        let s = SparseMatrix::from_dense(&d);
        let perm = [2usize, 0, 3, 1];
        let p = s.permute_symmetric(&perm).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(p.to_dense()[(i, j)], d[(perm[i], perm[j])]);
            }
        }
        // Permuting back by the inverse reproduces the original exactly.
        let mut inv = [0usize; 4];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        assert_eq!(p.permute_symmetric(&inv).unwrap(), s);
        // Identity permutation is a bit-identical no-op.
        assert_eq!(s.permute_symmetric(&[0, 1, 2, 3]).unwrap(), s);
        // Rejections: non-square, wrong length, repeated or out-of-range.
        let rect = SparseMatrix::zeros(2, 3);
        assert!(rect.permute_symmetric(&[0, 1]).is_err());
        assert!(s.permute_symmetric(&[0, 1]).is_err());
        assert!(s.permute_symmetric(&[0, 0, 1, 2]).is_err());
        assert!(s.permute_symmetric(&[0, 1, 2, 9]).is_err());
    }

    #[test]
    fn submatrix_composes_row_and_col_selection() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let sub = s.submatrix(&[2, 0], &[3, 0, 1]).unwrap();
        assert_eq!(sub.shape(), (2, 3));
        let sd = sub.to_dense();
        assert_eq!(sd[(0, 0)], d[(2, 3)]);
        assert_eq!(sd[(0, 1)], d[(2, 0)]);
        assert_eq!(sd[(0, 2)], d[(2, 1)]);
        assert_eq!(sd[(1, 0)], d[(0, 3)]);
        assert!(s.submatrix(&[9], &[0]).is_err());
        assert!(s.submatrix(&[0], &[1, 1]).is_err());
    }

    #[test]
    fn row_and_col_selection() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let top = s.select_rows(&[2, 0]).unwrap();
        assert_eq!(top.to_dense().row(0), d.row(2));
        assert_eq!(top.to_dense().row(1), d.row(0));
        assert!(s.select_rows(&[9]).is_err());
        let sub = s.select_cols(&[3, 0]).unwrap();
        assert_eq!(sub.shape(), (3, 2));
        assert_eq!(sub.to_dense().col(0), d.col(3));
        assert_eq!(sub.to_dense().col(1), d.col(0));
        assert!(s.select_cols(&[9]).is_err());
        assert!(s.select_cols(&[0, 0]).is_err());
    }
}
