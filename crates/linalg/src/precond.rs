//! Block-Jacobi preconditioning for the matrix-free PCG solvers.
//!
//! The scalar Jacobi preconditioner (`z = r ⊘ diag`) ignores all coupling
//! between rows of the normal-equations operator `A·W·Aᵀ + ridge·I`. On
//! partitioned topologies that coupling has strong block structure: rows
//! belonging to one cluster (its link rows plus its marginal rows)
//! interact heavily with each other and only weakly — through boundary
//! links — with the rest. [`BlockJacobiPreconditioner`] inverts exactly
//! those per-cluster diagonal blocks: each block of `A·W·Aᵀ + ridge·I` is
//! assembled densely (via the existing weighted gram kernel on the
//! block's row slice) and Cholesky-factored once per solve, and every
//! preconditioner application solves the small triangular systems instead
//! of dividing by the diagonal. Rows not covered by any block — and any
//! block whose submatrix is not numerically positive definite — fall back
//! to the scalar Jacobi rule, so the preconditioner is always SPD and
//! never worse-defined than the scalar one.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use crate::{LinalgError, Result};

/// A block-Jacobi preconditioner for operators of the form
/// `A·diag(w)·Aᵀ + ridge·I`, with per-block dense Cholesky factors and a
/// scalar-Jacobi fallback for uncovered rows.
///
/// Usage: [`BlockJacobiPreconditioner::factor`] once per solve (weights
/// change per bin), then hand [`BlockJacobiPreconditioner::apply`] to
/// [`crate::PcgWorkspace::solve_preconditioned`] (or per lane to
/// [`crate::PcgBatchWorkspace::solve_preconditioned`]). Buffers are
/// reused across factorizations, so a warm workspace allocates only when
/// block shapes change.
///
/// # Examples
///
/// ```
/// use ic_linalg::{BlockJacobiPreconditioner, Matrix, SparseMatrix};
///
/// let a = SparseMatrix::from_dense(
///     &Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[0.0, 3.0, 1.0]]).unwrap(),
/// );
/// let mut bj = BlockJacobiPreconditioner::new();
/// bj.factor(&a, &[1.0, 1.0, 1.0], 0.0, &[vec![0, 1]]).unwrap();
/// let mut z = vec![0.0; 2];
/// bj.apply(&[1.0, 1.0], &mut z).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockJacobiPreconditioner {
    blocks: Vec<Vec<usize>>,
    factors: Vec<Option<Cholesky>>,
    diag: Vec<f64>,
    ridge: f64,
    rows: usize,
    factored: bool,
    buf_b: Vec<f64>,
    buf_x: Vec<f64>,
}

impl BlockJacobiPreconditioner {
    /// An empty preconditioner; call
    /// [`BlockJacobiPreconditioner::factor`] before applying it.
    pub fn new() -> Self {
        BlockJacobiPreconditioner::default()
    }

    /// Factors the per-block diagonal blocks of `a·diag(weights)·aᵀ +
    /// ridge·I` for the given disjoint row blocks.
    ///
    /// Each block's dense submatrix is assembled with the weighted gram
    /// kernel on the block's row slice and Cholesky-factored; a block
    /// that is not numerically positive definite falls back to the
    /// scalar rule for its rows. Rows not covered by any block use the
    /// scalar Jacobi rule (same non-positive/non-finite guard as
    /// [`crate::PcgWorkspace::solve`]). Block row indices must be
    /// in-range and globally disjoint.
    pub fn factor(
        &mut self,
        a: &SparseMatrix,
        weights: &[f64],
        ridge: f64,
        blocks: &[Vec<usize>],
    ) -> Result<()> {
        let rows = a.rows();
        if weights.len() != a.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "block_jacobi_factor",
                lhs: a.shape(),
                rhs: (weights.len(), 1),
            });
        }
        if !(ridge >= 0.0) || !ridge.is_finite() {
            return Err(LinalgError::InvalidArgument(
                "block_jacobi: ridge must be non-negative and finite",
            ));
        }
        let mut seen = vec![false; rows];
        for block in blocks {
            for &r in block {
                if r >= rows {
                    return Err(LinalgError::InvalidArgument(
                        "block_jacobi: block row index out of bounds",
                    ));
                }
                if seen[r] {
                    return Err(LinalgError::InvalidArgument(
                        "block_jacobi: blocks must be disjoint",
                    ));
                }
                seen[r] = true;
            }
        }
        self.factored = false;
        self.rows = rows;
        self.ridge = ridge;
        // Scalar fallback diagonal for uncovered rows and non-PD blocks.
        self.diag.resize(rows, 0.0);
        a.awat_diag_into(weights, &mut self.diag)?;
        self.blocks.clear();
        self.blocks.extend(blocks.iter().cloned());
        self.factors.clear();
        let mut max_block = 0usize;
        for block in blocks {
            let s = block.len();
            max_block = max_block.max(s);
            if s == 0 {
                self.factors.push(None);
                continue;
            }
            // Dense block of A·W·Aᵀ restricted to this block's rows:
            // the weighted gram of the row slice, which costs O(nnz of
            // the slice · rows sharing each column) — cheap for cluster
            // blocks whose columns are shared by few rows.
            let sub = a.select_rows(block)?;
            let sub_t = sub.transpose();
            let mut dense = Matrix::zeros(s, s);
            sub.awat_into(weights, &sub_t, &mut dense)?;
            for i in 0..s {
                dense[(i, i)] += ridge;
            }
            self.factors.push(Cholesky::factor(&dense).ok());
        }
        self.buf_b.resize(max_block, 0.0);
        self.buf_x.resize(max_block, 0.0);
        self.factored = true;
        Ok(())
    }

    /// Applies the preconditioner: `z = P⁻¹·r`, block solves for covered
    /// rows and the scalar Jacobi rule elsewhere. Allocation-free.
    pub fn apply(&mut self, r: &[f64], z: &mut [f64]) -> Result<()> {
        if !self.factored {
            return Err(LinalgError::InvalidArgument(
                "block_jacobi: apply before factor",
            ));
        }
        if r.len() != self.rows || z.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "block_jacobi_apply",
                lhs: (self.rows, 1),
                rhs: (r.len(), z.len()),
            });
        }
        // Scalar Jacobi everywhere first (same guard as the PCG solver);
        // block solves overwrite their rows below.
        for (i, (zi, &ri)) in z.iter_mut().zip(r.iter()).enumerate() {
            let m = self.diag[i] + self.ridge;
            let m = if m > 0.0 && m.is_finite() { m } else { 1.0 };
            *zi = ri / m;
        }
        for (block, factor) in self.blocks.iter().zip(self.factors.iter()) {
            let Some(chol) = factor else { continue };
            let s = block.len();
            for (t, &row) in block.iter().enumerate() {
                self.buf_b[t] = r[row];
            }
            chol.solve_into(&self.buf_b[..s], &mut self.buf_x[..s])?;
            for (t, &row) in block.iter().enumerate() {
                z[row] = self.buf_x[t];
            }
        }
        Ok(())
    }

    /// Number of blocks in the last factorization.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks of the last factorization that fell back to the scalar
    /// rule (not numerically positive definite, or empty).
    pub fn fallback_blocks(&self) -> usize {
        self.factors.iter().filter(|f| f.is_none()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcgWorkspace;

    /// A 6x4 operator whose gram has two tightly coupled 3-row blocks
    /// joined by one shared column.
    fn clustered() -> (SparseMatrix, Vec<f64>) {
        let dense = Matrix::from_rows(&[
            &[2.0, 1.0, 0.0, 0.0],
            &[1.0, 2.0, 0.0, 0.0],
            &[0.5, 0.5, 0.1, 0.0],
            &[0.0, 0.0, 2.0, 1.0],
            &[0.0, 0.0, 1.0, 2.0],
            &[0.0, 0.1, 0.5, 0.5],
        ])
        .unwrap();
        let weights = vec![1.0, 0.5, 2.0, 1.5];
        (SparseMatrix::from_dense(&dense), weights)
    }

    #[test]
    fn blocks_invert_exactly() {
        let (a, w) = clustered();
        let ridge = 1e-3;
        let mut bj = BlockJacobiPreconditioner::new();
        bj.factor(&a, &w, ridge, &[vec![0, 1, 2], vec![3, 4, 5]])
            .unwrap();
        assert_eq!(bj.block_count(), 2);
        assert_eq!(bj.fallback_blocks(), 0);
        // Applying P⁻¹ to each column of the true block-diagonal matrix
        // must return the identity columns on block rows.
        let mut full = a.awat(&w).unwrap();
        for i in 0..6 {
            full[(i, i)] += ridge;
        }
        // Zero the off-diagonal coupling between the two blocks to get P.
        for i in 0..3 {
            for j in 3..6 {
                full[(i, j)] = 0.0;
                full[(j, i)] = 0.0;
            }
        }
        let mut z = vec![0.0; 6];
        for j in 0..6 {
            let col: Vec<f64> = (0..6).map(|i| full[(i, j)]).collect();
            bj.apply(&col, &mut z).unwrap();
            for (i, &v) in z.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-10, "P⁻¹P[{i},{j}] = {v}");
            }
        }
    }

    #[test]
    fn uncovered_rows_use_scalar_rule() {
        let (a, w) = clustered();
        let ridge = 0.5;
        let mut bj = BlockJacobiPreconditioner::new();
        bj.factor(&a, &w, ridge, &[vec![0, 1]]).unwrap();
        let mut diag = vec![0.0; 6];
        a.awat_diag_into(&w, &mut diag).unwrap();
        let r = vec![1.0; 6];
        let mut z = vec![0.0; 6];
        bj.apply(&r, &mut z).unwrap();
        for i in 2..6 {
            assert_eq!(z[i], 1.0 / (diag[i] + ridge), "row {i}");
        }
    }

    #[test]
    fn preconditioned_pcg_matches_scalar_and_iterates_less() {
        let (a, w) = clustered();
        let at = a.transpose();
        let ridge = 1e-6;
        let b: Vec<f64> = (0..6).map(|i| (i as f64 - 2.0) * 1.5 + 0.25).collect();
        let apply = |v: &[f64], y: &mut [f64]| {
            let mut tmp = a.matvec_transposed(v).unwrap();
            for (t, &wc) in tmp.iter_mut().zip(w.iter()) {
                *t *= wc;
            }
            at.matvec_transposed_into(&tmp, y)
        };

        let mut diag = vec![0.0; 6];
        a.awat_diag_into(&w, &mut diag).unwrap();
        let mut scalar_ws = PcgWorkspace::new();
        let mut x_scalar = vec![0.0; 6];
        let scalar = scalar_ws
            .solve(&diag, ridge, &b, &mut x_scalar, apply)
            .unwrap();
        assert!(scalar.converged);

        let mut bj = BlockJacobiPreconditioner::new();
        bj.factor(&a, &w, ridge, &[vec![0, 1, 2], vec![3, 4, 5]])
            .unwrap();
        let mut block_ws = PcgWorkspace::new();
        let mut x_block = vec![0.0; 6];
        let block = block_ws
            .solve_preconditioned(ridge, &b, &mut x_block, apply, |r, z| bj.apply(r, z))
            .unwrap();
        assert!(block.converged);
        assert!(
            block.iterations < scalar.iterations,
            "block-Jacobi should converge faster on a clustered operator: {} vs {}",
            block.iterations,
            scalar.iterations
        );
        for (s, bl) in x_scalar.iter().zip(x_block.iter()) {
            assert!((s - bl).abs() <= 1e-10 * (1.0 + s.abs()), "{s} vs {bl}");
        }
    }

    #[test]
    fn non_pd_block_falls_back_to_scalar() {
        // A row of zeros makes its 1x1 gram block 0 — not PD.
        let dense = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]).unwrap();
        let a = SparseMatrix::from_dense(&dense);
        let mut bj = BlockJacobiPreconditioner::new();
        bj.factor(&a, &[1.0, 1.0], 0.0, &[vec![0], vec![1]])
            .unwrap();
        assert_eq!(bj.fallback_blocks(), 1);
        let mut z = vec![0.0; 2];
        bj.apply(&[3.0, 5.0], &mut z).unwrap();
        assert_eq!(z[0], 3.0);
        // Zero diagonal, zero ridge → identity scaling, as in the solver.
        assert_eq!(z[1], 5.0);
    }

    #[test]
    fn rejects_bad_arguments() {
        let (a, w) = clustered();
        let mut bj = BlockJacobiPreconditioner::new();
        let mut z = vec![0.0; 6];
        // Apply before factor.
        assert!(bj.apply(&[0.0; 6], &mut z).is_err());
        // Bad weights length, ridge, indices, overlap.
        assert!(bj.factor(&a, &[1.0], 0.0, &[]).is_err());
        assert!(bj.factor(&a, &w, -1.0, &[]).is_err());
        assert!(bj.factor(&a, &w, f64::NAN, &[]).is_err());
        assert!(bj.factor(&a, &w, 0.0, &[vec![9]]).is_err());
        assert!(bj.factor(&a, &w, 0.0, &[vec![0], vec![0]]).is_err());
        // Shape mismatch on apply.
        bj.factor(&a, &w, 0.0, &[vec![0, 1]]).unwrap();
        assert!(bj.apply(&[0.0; 3], &mut z).is_err());
    }
}
