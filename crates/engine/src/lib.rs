//! # ic-engine — deterministic sharded parallel execution
//!
//! One execution engine under all three of the toolkit's workloads: the
//! batch estimation pipeline (bins of a [`TmSeries`]-shaped run), the
//! streaming replay drivers (candidate/baseline estimators per window,
//! bins within a window), and the experiment runner (scenarios × bins).
//! Before this crate each layer hand-rolled its own worker loop; now they
//! all share the same scheduler, the same workspace pooling, and the same
//! determinism guarantees.
//!
//! ## Determinism by construction
//!
//! The engine promises that **1 worker and N workers produce bit-identical
//! results** — never "close", never "equal in distribution". The rules
//! that make this hold, and that every caller must preserve:
//!
//! 1. **Jobs are pure functions of their index.** A job may read shared
//!    immutable inputs and its index (or [`Shard`] range), nothing else —
//!    no shared mutable state, no thread identity, no clocks.
//! 2. **Workspaces are result-neutral.** A per-worker workspace
//!    ([`WorkspacePool`]) may carry buffers between jobs for speed, but a
//!    warm workspace must produce exactly the bits a fresh one would
//!    (the property the `*Workspace` types of `ic-linalg` and
//!    `ic-estimation` are proptest-locked to). Which worker — and hence
//!    which workspace — runs which job is scheduling-dependent; results
//!    must not be.
//! 3. **Results assemble by index, not completion order.**
//!    [`Engine::run`] collects into per-job slots and concatenates in job
//!    order.
//! 4. **Errors are deterministic too.** When jobs fail, the *first
//!    failing job by index* determines the returned error, regardless of
//!    which worker hit an error first on the wall clock (all jobs still
//!    run; there is no cross-job cancellation to race on).
//! 5. **Seeds derive from indices.** Randomized jobs take their seed from
//!    [`shard_seed`] `(base, index)` — a re-export of
//!    [`ic_stats::rng::derive_seed`] — never from scheduling order.
//!
//! ## Sharding
//!
//! [`ShardPlan`] splits a run of `bins` time bins into contiguous,
//! balanced [`Shard`] ranges capped at the engine's
//! [`shard_bins`](Engine::shard_bins) knob. Because the estimation hot
//! path is embarrassingly parallel across bins (each bin's tomogravity
//! solve and IPF touch only that bin's column), shard boundaries cannot
//! change results — only wall-clock time. The thread count and the shard
//! size are *performance knobs only*.
//!
//! ```
//! use ic_engine::{Engine, WorkspacePool};
//!
//! let engine = Engine::new().with_threads(4);
//! let pool: WorkspacePool<Vec<f64>> = WorkspacePool::new();
//! let squares: Vec<u64> = engine
//!     .run(8, &pool, |i, _ws| Ok::<u64, ()>((i as u64) * (i as u64)))
//!     .unwrap();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // The same run with 1 thread is bit-identical:
//! let serial = Engine::serial().run(8, &pool, |i, _ws| Ok::<u64, ()>((i as u64) * (i as u64)));
//! assert_eq!(serial.unwrap(), squares);
//! ```
//!
//! [`TmSeries`]: https://docs.rs/ic-core

mod metrics;
mod pool;
mod run;
mod shard;

pub use metrics::EngineMetrics;
pub use pool::WorkspacePool;
pub use run::Engine;
pub use shard::{Shard, ShardPlan};

/// The machine's available parallelism (at least 1) — the single source
/// of truth for default worker-pool sizing across the workspace (the
/// experiment `Runner`, the bench binaries' `--threads` default, ...).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives a shard/job seed from a base seed and the shard's index — a
/// re-export of [`ic_stats::rng::derive_seed`], so engine callers and
/// pre-engine code (the experiment runner's batch seeding) produce
/// identical seed sequences.
pub fn shard_seed(base: u64, index: u64) -> u64 {
    ic_stats::rng::derive_seed(base, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn shard_seed_matches_derive_seed() {
        for base in [0u64, 7, u64::MAX] {
            for index in [0u64, 1, 1000] {
                assert_eq!(
                    shard_seed(base, index),
                    ic_stats::rng::derive_seed(base, index)
                );
            }
        }
    }
}
