//! Engine execution metrics: queue wait vs. run time, per-worker
//! utilization.
//!
//! An [`EngineMetrics`] bundle is registered once per *scope* (the
//! subsystem owning a [`WorkspacePool`](crate::WorkspacePool) — e.g.
//! `pipeline`, `serve`) and attached to the pool; [`Engine::run`] then
//! records into it on every run that uses that pool. All handles are
//! pre-registered `Arc`s, so the per-job cost is a clock read and a few
//! relaxed atomic adds — and a pool without metrics costs one `None`
//! branch per run, preserving the engine's bit-identity and
//! allocation-free guarantees untouched (metrics only observe).
//!
//! [`Engine::run`]: crate::Engine::run

use ic_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Pre-registered handles for one engine scope.
#[derive(Debug)]
pub struct EngineMetrics {
    /// `engine.<scope>.job_wait.seconds` — time from run start until a
    /// job is picked up (queue wait).
    pub job_wait: Arc<Histogram>,
    /// `engine.<scope>.job_run.seconds` — time a job spends executing.
    pub job_run: Arc<Histogram>,
    /// `engine.<scope>.jobs_total` — jobs executed.
    pub jobs: Arc<Counter>,
    /// `engine.<scope>.runs_total` — engine runs.
    pub runs: Arc<Counter>,
    /// `engine.<scope>.worker_busy_nanos_total` — nanoseconds workers
    /// spent executing jobs.
    pub worker_busy_nanos: Arc<Counter>,
    /// `engine.<scope>.worker_wall_nanos_total` — nanoseconds of worker
    /// capacity (run wall time × workers).
    pub worker_wall_nanos: Arc<Counter>,
    /// `engine.<scope>.workers` — worker count of the most recent run.
    pub workers: Arc<Gauge>,
    /// `engine.<scope>.utilization` — cumulative busy/capacity ratio,
    /// refreshed after every run.
    pub utilization: Arc<Gauge>,
}

impl EngineMetrics {
    /// Registers the scope's handles in `registry` under
    /// `engine.<scope>.*`.
    pub fn register(registry: &MetricsRegistry, scope: &str) -> Arc<EngineMetrics> {
        let name = |suffix: &str| format!("engine.{scope}.{suffix}");
        Arc::new(EngineMetrics {
            job_wait: registry.histogram(&name("job_wait.seconds")),
            job_run: registry.histogram(&name("job_run.seconds")),
            jobs: registry.counter(&name("jobs_total")),
            runs: registry.counter(&name("runs_total")),
            worker_busy_nanos: registry.counter(&name("worker_busy_nanos_total")),
            worker_wall_nanos: registry.counter(&name("worker_wall_nanos_total")),
            workers: registry.gauge(&name("workers")),
            utilization: registry.gauge(&name("utilization")),
        })
    }

    /// Cumulative per-worker utilization: busy nanoseconds over worker
    /// capacity nanoseconds across all runs (NaN before the first run).
    pub fn cumulative_utilization(&self) -> f64 {
        let wall = self.worker_wall_nanos.get();
        if wall == 0 {
            return f64::NAN;
        }
        self.worker_busy_nanos.get() as f64 / wall as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_creates_shared_handles() {
        let registry = MetricsRegistry::new();
        let a = EngineMetrics::register(&registry, "pipeline");
        let b = EngineMetrics::register(&registry, "pipeline");
        a.jobs.add(3);
        assert_eq!(b.jobs.get(), 3, "same scope shares counters");
        assert!(a.cumulative_utilization().is_nan());
        a.worker_busy_nanos.add(50);
        a.worker_wall_nanos.add(100);
        assert_eq!(a.cumulative_utilization(), 0.5);
        let text = registry.render_prometheus();
        assert!(text.contains("engine_pipeline_jobs_total 3"));
    }
}
