//! Reusable per-worker workspace pooling.
//!
//! The estimation hot path owes its allocation-free steady state to
//! workspace structs (`PipelineWorkspace`, `TomogravityWorkspace`,
//! `IpfWorkspace`, ...) that are sized on first use and reused per bin. A
//! [`WorkspacePool`] extends that reuse across engine runs: each worker
//! checks one workspace out for the duration of a run and restores it at
//! the end, so a long-lived caller (a streaming estimator processing
//! window after window) stays allocation-free across calls while worker
//! counts and scheduling stay free to vary.
//!
//! Pooling is safe for determinism **only because workspaces are
//! result-neutral**: a warm workspace must produce exactly the bits a
//! fresh `Default` one would. Which workspace a worker draws depends on
//! scheduling; the produced results must not.

use crate::metrics::EngineMetrics;
use std::sync::{Arc, Mutex};

/// A lock-guarded free list of reusable workspaces.
pub struct WorkspacePool<W> {
    free: Mutex<Vec<W>>,
    metrics: Option<Arc<EngineMetrics>>,
}

impl<W> WorkspacePool<W> {
    /// An empty pool; workspaces are created on first checkout.
    pub fn new() -> Self {
        WorkspacePool {
            free: Mutex::new(Vec::new()),
            metrics: None,
        }
    }

    /// Attaches engine metrics: every [`Engine::run`](crate::Engine::run)
    /// against this pool records queue-wait/run-time/utilization into the
    /// given scope's handles. Purely observational — results and the
    /// pool's reuse behaviour are unchanged.
    pub fn with_metrics(mut self, metrics: Arc<EngineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached engine metrics, if any.
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// Number of idle workspaces currently in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }

    /// Folds over the idle workspaces (observability accessor: e.g.
    /// summing per-workspace solve counters after a run, when every
    /// worker has restored its workspace).
    pub fn fold_idle<T>(&self, init: T, f: impl FnMut(T, &W) -> T) -> T {
        let free = self.free.lock().expect("workspace pool poisoned");
        free.iter().fold(init, f)
    }

    /// Returns a workspace to the pool for later reuse.
    pub fn restore(&self, workspace: W) {
        self.free
            .lock()
            .expect("workspace pool poisoned")
            .push(workspace);
    }
}

impl<W: Default> WorkspacePool<W> {
    /// Takes a workspace out of the pool, creating a fresh one when the
    /// pool is empty.
    pub fn checkout(&self) -> W {
        self.free
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default()
    }
}

impl<W> Default for WorkspacePool<W> {
    fn default() -> Self {
        WorkspacePool::new()
    }
}

impl<W> core::fmt::Debug for WorkspacePool<W> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WorkspacePool")
            .field("idle", &self.idle())
            .finish()
    }
}

/// Cloning yields an **empty** pool: pooled buffers are scratch, not
/// state, so a cloned owner (e.g. a cloned streaming estimator) warms its
/// own workspaces from scratch and produces identical results. Attached
/// metrics handles are kept — the clone keeps reporting into the same
/// scope.
impl<W> Clone for WorkspacePool<W> {
    fn clone(&self) -> Self {
        WorkspacePool {
            free: Mutex::new(Vec::new()),
            metrics: self.metrics.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_creates_then_reuses() {
        let pool: WorkspacePool<Vec<u8>> = WorkspacePool::new();
        assert_eq!(pool.idle(), 0);
        let mut w = pool.checkout();
        w.push(7);
        pool.restore(w);
        assert_eq!(pool.idle(), 1);
        let w = pool.checkout();
        assert_eq!(w, vec![7], "warm workspace comes back");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn clone_is_empty_and_debug_prints_idle() {
        let pool: WorkspacePool<Vec<u8>> = WorkspacePool::default();
        pool.restore(vec![1]);
        let cloned = pool.clone();
        assert_eq!(cloned.idle(), 0);
        assert!(format!("{pool:?}").contains("idle"));
    }

    #[test]
    fn fold_idle_sees_restored_workspaces() {
        let pool: WorkspacePool<Vec<u8>> = WorkspacePool::new();
        pool.restore(vec![1, 2]);
        pool.restore(vec![3]);
        let total: usize = pool.fold_idle(0, |acc, w| acc + w.len());
        assert_eq!(total, 3);
    }

    #[test]
    fn metrics_attach_and_survive_clone() {
        let registry = ic_obs::MetricsRegistry::new();
        let metrics = EngineMetrics::register(&registry, "test");
        let pool: WorkspacePool<Vec<u8>> = WorkspacePool::new().with_metrics(metrics);
        assert!(pool.metrics().is_some());
        assert!(pool.clone().metrics().is_some());
        assert!(WorkspacePool::<Vec<u8>>::new().metrics().is_none());
    }
}
