//! Contiguous bin-range sharding.
//!
//! A [`ShardPlan`] splits a run of `total` time bins into contiguous,
//! balanced [`Shard`]s. Shards never overlap, cover every bin exactly
//! once, appear in bin order, and differ in length by at most one — so a
//! plan is a pure function of `(total, max_len)` and the work each shard
//! carries is as even as contiguity allows.

/// One contiguous range of bins, executed as a single engine job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position of the shard within its plan (also its job index).
    pub index: usize,
    /// First bin of the range (inclusive).
    pub start: usize,
    /// Number of bins in the range.
    pub len: usize,
}

impl Shard {
    /// One past the last bin of the range.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// The bins of the shard, in order.
    pub fn bins(&self) -> core::ops::Range<usize> {
        self.start..self.end()
    }
}

/// A deterministic split of `total` bins into contiguous balanced shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Splits `total` bins into the fewest contiguous shards of at most
    /// `max_len` bins each, balanced to within one bin of each other.
    /// `total == 0` yields an empty plan; `max_len` is clamped to at
    /// least 1.
    pub fn new(total: usize, max_len: usize) -> Self {
        if total == 0 {
            return ShardPlan { shards: Vec::new() };
        }
        let max_len = max_len.max(1);
        let count = total.div_ceil(max_len);
        let base = total / count;
        let remainder = total % count;
        let mut shards = Vec::with_capacity(count);
        let mut start = 0;
        for index in 0..count {
            // The first `remainder` shards carry one extra bin.
            let len = base + usize::from(index < remainder);
            shards.push(Shard { index, start, len });
            start += len;
        }
        ShardPlan { shards }
    }

    /// Number of shards in the plan.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan contains no shards (a zero-bin run).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Total bins covered by the plan.
    pub fn total_bins(&self) -> usize {
        self.shards.iter().map(|s| s.len).sum()
    }

    /// The shard at `index`.
    pub fn get(&self, index: usize) -> Option<Shard> {
        self.shards.get(index).copied()
    }

    /// Iterates the shards in bin order.
    pub fn iter(&self) -> impl Iterator<Item = Shard> + '_ {
        self.shards.iter().copied()
    }
}

impl core::ops::Index<usize> for ShardPlan {
    type Output = Shard;

    fn index(&self, index: usize) -> &Shard {
        &self.shards[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_for_zero_bins() {
        let plan = ShardPlan::new(0, 8);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.total_bins(), 0);
        assert!(plan.get(0).is_none());
    }

    #[test]
    fn single_shard_when_total_fits() {
        let plan = ShardPlan::new(5, 8);
        assert_eq!(plan.len(), 1);
        assert_eq!(
            plan[0],
            Shard {
                index: 0,
                start: 0,
                len: 5
            }
        );
        assert_eq!(plan[0].end(), 5);
        assert_eq!(plan[0].bins().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shards_partition_and_balance() {
        let plan = ShardPlan::new(10, 4); // 3 shards: 4, 3, 3
        let lens: Vec<usize> = plan.iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        let mut covered = Vec::new();
        for s in plan.iter() {
            covered.extend(s.bins());
        }
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn max_len_zero_is_clamped() {
        let plan = ShardPlan::new(3, 0);
        assert_eq!(plan.len(), 3);
        assert!(plan.iter().all(|s| s.len == 1));
    }
}
