//! The scoped-thread worker pool.

use crate::pool::WorkspacePool;
use crate::shard::{Shard, ShardPlan};
use crate::{default_threads, shard_seed};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Target bins per shard when the caller does not override it.
///
/// Small enough that a day-long window (288 bins) spreads over many
/// workers, large enough that per-shard scheduling overhead stays
/// negligible next to a tomogravity solve.
pub const DEFAULT_SHARD_BINS: usize = 16;

/// A deterministic sharded executor.
///
/// Plain data — two performance knobs ([`threads`](Engine::with_threads)
/// and [`shard_bins`](Engine::with_shard_bins)) that change wall-clock
/// time and **never** results (see the crate docs for the rules that make
/// this hold). Copyable, so layers thread it through by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
    shard_bins: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine sized to the machine's available parallelism
    /// ([`default_threads`]) with the default shard size.
    pub fn new() -> Self {
        Engine {
            threads: default_threads(),
            shard_bins: DEFAULT_SHARD_BINS,
        }
    }

    /// A single-worker engine: jobs run on the calling thread with zero
    /// spawn overhead — the reference execution every multi-worker run is
    /// bit-identical to.
    pub fn serial() -> Self {
        Engine::new().with_threads(1)
    }

    /// Sets the number of worker threads (clamped to at least 1). Affects
    /// wall-clock time only, never results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the target bins per shard (clamped to at least 1). Affects
    /// load balancing only, never results.
    pub fn with_shard_bins(mut self, shard_bins: usize) -> Self {
        self.shard_bins = shard_bins.max(1);
        self
    }

    /// Number of worker threads the engine will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Target bins per shard.
    pub fn shard_bins(&self) -> usize {
        self.shard_bins
    }

    /// The contiguous shard plan this engine uses for a `bins`-bin run.
    pub fn plan(&self, bins: usize) -> ShardPlan {
        ShardPlan::new(bins, self.shard_bins)
    }

    /// Runs `jobs` indexed jobs on the worker pool and returns their
    /// results **in job order**.
    ///
    /// Each worker checks one workspace out of `pool` for the whole run
    /// (creating it on first use) and restores it afterwards, so repeated
    /// runs against the same pool reuse warm buffers. Every job executes
    /// exactly once; when jobs fail, the error of the **first failing job
    /// by index** is returned — completion order never shows.
    ///
    /// Workers are `std::thread::scope` threads spawned per call — the
    /// scope is what lets jobs borrow non-`'static` inputs (series,
    /// observation models, shard plans) without `Arc`-wrapping the world.
    /// What persists across calls is the *workspace* pool, which carries
    /// the expensive state (sized factor/scratch buffers). Spawn cost is
    /// tens of microseconds per worker — noise against a tomogravity bin
    /// solve, and the `workers == 1` path (a serial engine, or a
    /// one-job run) spawns nothing at all, so callers that want zero
    /// overhead for tiny workloads pass [`Engine::serial`].
    pub fn run<T, E, W, F>(&self, jobs: usize, pool: &WorkspacePool<W>, job: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        W: Send + Default,
        F: Fn(usize, &mut W) -> Result<T, E> + Sync,
    {
        if jobs == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(jobs);
        // Purely observational: when the pool carries engine metrics,
        // each job records its queue wait (run start → pickup) and run
        // time, and each worker its busy time. Everything below is
        // atomics on pre-registered handles — no locks, no allocation —
        // and absence costs one branch per job.
        let metrics = pool.metrics();
        let run_start = metrics.map(|_| std::time::Instant::now());
        let slots: Vec<Mutex<Option<Result<T, E>>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let worker = || {
            let mut ws = pool.checkout();
            let mut busy_nanos: u64 = 0;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let job_start = metrics.map(|m| {
                    let now = std::time::Instant::now();
                    let wait = now.duration_since(run_start.expect("run_start set with metrics"));
                    m.job_wait.record(wait.as_secs_f64());
                    now
                });
                let result = job(i, &mut ws);
                if let (Some(m), Some(start)) = (metrics, job_start) {
                    let elapsed = start.elapsed();
                    m.job_run.record(elapsed.as_secs_f64());
                    m.jobs.inc();
                    busy_nanos += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            }
            if let Some(m) = metrics {
                m.worker_busy_nanos.add(busy_nanos);
            }
            pool.restore(ws);
        };
        if workers == 1 {
            // Serial fast path: no scope, no spawns.
            worker();
        } else {
            std::thread::scope(|scope| {
                // The calling thread is worker 0; spawn the rest.
                for _ in 1..workers {
                    scope.spawn(worker);
                }
                worker();
            });
        }
        if let (Some(m), Some(start)) = (metrics, run_start) {
            let wall_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let capacity = wall_nanos.saturating_mul(workers as u64);
            m.runs.inc();
            m.worker_wall_nanos.add(capacity);
            m.workers.set(workers as f64);
            m.utilization.set(m.cumulative_utilization());
        }
        let mut out = Vec::with_capacity(jobs);
        for slot in slots {
            let result = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every job index below jobs is executed exactly once");
            out.push(result?);
        }
        Ok(out)
    }

    /// Shards a `bins`-bin run with [`Engine::plan`] and executes one job
    /// per [`Shard`], returning per-shard results in bin order.
    pub fn run_sharded<T, E, W, F>(
        &self,
        bins: usize,
        pool: &WorkspacePool<W>,
        job: F,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        W: Send + Default,
        F: Fn(Shard, &mut W) -> Result<T, E> + Sync,
    {
        let plan = self.plan(bins);
        self.run(plan.len(), pool, |i, ws| job(plan[i], ws))
    }

    /// Like [`Engine::run`], with a per-job seed derived from
    /// `(base_seed, index)` via [`shard_seed`] — the deterministic way to
    /// randomize sharded work.
    pub fn run_seeded<T, E, W, F>(
        &self,
        base_seed: u64,
        jobs: usize,
        pool: &WorkspacePool<W>,
        job: F,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        W: Send + Default,
        F: Fn(usize, u64, &mut W) -> Result<T, E> + Sync,
    {
        self.run(jobs, pool, |i, ws| {
            job(i, shard_seed(base_seed, i as u64), ws)
        })
    }

    /// Runs two independent closures — in parallel when the engine has
    /// more than one thread — and returns `(a(), b())`.
    ///
    /// The streaming drivers use this for the candidate/baseline pair of
    /// each window: the two estimators share no state, so evaluation
    /// order cannot change results, and the tuple order fixes which error
    /// a caller sees first.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            let ra = a();
            let rb = b();
            (ra, rb)
        } else {
            std::thread::scope(|scope| {
                let handle = scope.spawn(b);
                let ra = a();
                let rb = handle.join().expect("joined closure panicked");
                (ra, rb)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_clamp_and_report() {
        let e = Engine::new().with_threads(0).with_shard_bins(0);
        assert_eq!(e.threads(), 1);
        assert_eq!(e.shard_bins(), 1);
        assert_eq!(Engine::serial().threads(), 1);
        assert_eq!(Engine::default(), Engine::new());
        assert!(Engine::new().threads() >= 1);
    }

    #[test]
    fn empty_run_returns_empty() {
        let pool: WorkspacePool<()> = WorkspacePool::new();
        let out: Vec<u32> = Engine::new()
            .run(0, &pool, |_, _| Ok::<u32, ()>(1))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn results_assemble_in_job_order() {
        let pool: WorkspacePool<()> = WorkspacePool::new();
        for threads in [1, 2, 5] {
            let out = Engine::new()
                .with_threads(threads)
                .run(17, &pool, |i, _| Ok::<usize, ()>(i * 3))
                .unwrap();
            assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn first_failing_job_by_index_wins() {
        let pool: WorkspacePool<()> = WorkspacePool::new();
        for threads in [1, 4] {
            let err = Engine::new()
                .with_threads(threads)
                .run(10, &pool, |i, _| {
                    if i >= 3 {
                        Err(format!("job {i} failed"))
                    } else {
                        Ok(i)
                    }
                })
                .unwrap_err();
            assert_eq!(err, "job 3 failed");
        }
    }

    #[test]
    fn sharded_run_covers_every_bin_once() {
        let pool: WorkspacePool<()> = WorkspacePool::new();
        let engine = Engine::new().with_threads(3).with_shard_bins(4);
        let chunks = engine
            .run_sharded(11, &pool, |shard, _| {
                Ok::<Vec<usize>, ()>(shard.bins().collect())
            })
            .unwrap();
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_runs_match_shard_seed() {
        let pool: WorkspacePool<()> = WorkspacePool::new();
        let seeds = Engine::new()
            .with_threads(2)
            .run_seeded(9, 4, &pool, |_, seed, _| Ok::<u64, ()>(seed))
            .unwrap();
        let want: Vec<u64> = (0..4).map(|i| shard_seed(9, i)).collect();
        assert_eq!(seeds, want);
    }

    #[test]
    fn workers_restore_workspaces_to_the_pool() {
        let pool: WorkspacePool<Vec<u64>> = WorkspacePool::new();
        let engine = Engine::new().with_threads(3);
        let _ = engine.run(9, &pool, |i, ws| {
            ws.push(i as u64);
            Ok::<(), ()>(())
        });
        // Every checked-out workspace came back (at most `threads`).
        assert!(pool.idle() >= 1 && pool.idle() <= 3);
        // A follow-up run reuses them without affecting results.
        let out = engine.run(4, &pool, |i, _| Ok::<usize, ()>(i)).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn instrumented_runs_record_metrics_and_match_bare_runs() {
        let registry = ic_obs::MetricsRegistry::new();
        let metrics = crate::EngineMetrics::register(&registry, "test");
        let bare_pool: WorkspacePool<()> = WorkspacePool::new();
        let obs_pool: WorkspacePool<()> = WorkspacePool::new().with_metrics(Arc::clone(&metrics));
        for threads in [1, 3] {
            let engine = Engine::new().with_threads(threads);
            let bare = engine
                .run(10, &bare_pool, |i, _| Ok::<usize, ()>(i * i))
                .unwrap();
            let obs = engine
                .run(10, &obs_pool, |i, _| Ok::<usize, ()>(i * i))
                .unwrap();
            assert_eq!(bare, obs, "instrumentation must not change results");
        }
        assert_eq!(metrics.jobs.get(), 20);
        assert_eq!(metrics.runs.get(), 2);
        assert_eq!(metrics.job_wait.count(), 20);
        assert_eq!(metrics.job_run.count(), 20);
        assert!(metrics.worker_wall_nanos.get() > 0);
        assert_eq!(metrics.workers.get(), 3.0);
        let util = metrics.utilization.get();
        assert!((0.0..=1.0).contains(&util), "utilization {util}");
    }

    use std::sync::Arc;

    #[test]
    fn join_runs_both_in_either_mode() {
        for threads in [1, 2] {
            let engine = Engine::new().with_threads(threads);
            let (a, b) = engine.join(|| 1 + 1, || "b");
            assert_eq!((a, b), (2, "b"));
        }
    }
}
