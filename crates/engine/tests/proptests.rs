//! Property tests for the engine's determinism-by-construction claims:
//! shard plans are exact partitions, worker counts never change results
//! or errors, and pooled workspaces are invisible in outputs.

use ic_engine::{shard_seed, Engine, ShardPlan, WorkspacePool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A shard plan partitions `0..total` exactly: contiguous, in order,
    /// no gaps, no overlaps, every shard within the size cap and balanced
    /// to within one bin.
    #[test]
    fn shard_plans_partition_exactly(total in 0usize..2000, max_len in 0usize..64) {
        let plan = ShardPlan::new(total, max_len);
        prop_assert_eq!(plan.total_bins(), total);
        let mut next = 0usize;
        let mut min_len = usize::MAX;
        let mut max_seen = 0usize;
        for (k, shard) in plan.iter().enumerate() {
            prop_assert_eq!(shard.index, k);
            prop_assert_eq!(shard.start, next);
            prop_assert!(shard.len >= 1);
            prop_assert!(shard.len <= max_len.max(1));
            min_len = min_len.min(shard.len);
            max_seen = max_seen.max(shard.len);
            next = shard.end();
        }
        prop_assert_eq!(next, total);
        if !plan.is_empty() {
            prop_assert!(max_seen - min_len <= 1, "balanced to within one bin");
        }
    }

    /// 1 worker and N workers produce bit-identical outputs for arbitrary
    /// job counts, shard sizes, and a nontrivial float job.
    #[test]
    fn one_vs_n_workers_bit_identical(
        jobs in 0usize..40,
        threads in 2usize..8,
        shard_bins in 1usize..9,
        scale in 1.0f64..100.0,
    ) {
        let pool: WorkspacePool<Vec<f64>> = WorkspacePool::new();
        let job = |i: usize, ws: &mut Vec<f64>| {
            // Workspace-carried scratch that must stay result-neutral.
            ws.resize(8, 0.0);
            let mut acc = 0.0f64;
            for (k, slot) in ws.iter_mut().enumerate() {
                *slot = (i as f64 + k as f64).sin() * scale;
                acc += *slot * *slot;
            }
            Ok::<f64, String>(acc.sqrt())
        };
        let one = Engine::serial().with_shard_bins(shard_bins).run(jobs, &pool, job).unwrap();
        let many = Engine::new()
            .with_threads(threads)
            .with_shard_bins(shard_bins)
            .run(jobs, &pool, job)
            .unwrap();
        prop_assert_eq!(one, many);
    }

    /// Sharded runs cover every bin exactly once regardless of worker
    /// count and shard size, and concatenate in bin order.
    #[test]
    fn sharded_runs_are_order_preserving(
        bins in 0usize..300,
        threads in 1usize..8,
        shard_bins in 1usize..48,
    ) {
        let pool: WorkspacePool<()> = WorkspacePool::new();
        let chunks = Engine::new()
            .with_threads(threads)
            .with_shard_bins(shard_bins)
            .run_sharded(bins, &pool, |shard, _| {
                Ok::<Vec<usize>, ()>(shard.bins().collect())
            })
            .unwrap();
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        prop_assert_eq!(flat, (0..bins).collect::<Vec<_>>());
    }

    /// The first failing job **by index** determines the error under any
    /// worker count, even when later-indexed failures finish earlier.
    #[test]
    fn error_determinism_first_index_wins(
        jobs in 1usize..30,
        threads in 1usize..8,
        fail_from in 0usize..30,
    ) {
        let pool: WorkspacePool<()> = WorkspacePool::new();
        let result = Engine::new().with_threads(threads).run(jobs, &pool, |i, _| {
            if i >= fail_from {
                Err(format!("fail {i}"))
            } else {
                Ok(i)
            }
        });
        if fail_from >= jobs {
            prop_assert_eq!(result.unwrap(), (0..jobs).collect::<Vec<_>>());
        } else {
            prop_assert_eq!(result.unwrap_err(), format!("fail {fail_from}"));
        }
    }

    /// Seeded runs derive every job's seed from (base, index) — identical
    /// across worker counts and equal to `shard_seed`.
    #[test]
    fn seeded_runs_are_schedule_free(
        base in any::<u64>(),
        jobs in 0usize..20,
        threads in 1usize..6,
    ) {
        let pool: WorkspacePool<()> = WorkspacePool::new();
        let seeds = Engine::new()
            .with_threads(threads)
            .run_seeded(base, jobs, &pool, |_, seed, _| Ok::<u64, ()>(seed))
            .unwrap();
        let want: Vec<u64> = (0..jobs as u64).map(|i| shard_seed(base, i)).collect();
        prop_assert_eq!(seeds, want);
    }

    /// Warm pools are result-neutral: running against a pool already
    /// dirtied by a different job mix reproduces the fresh-pool results.
    #[test]
    fn warm_pools_do_not_change_results(
        jobs in 1usize..20,
        threads in 1usize..6,
    ) {
        let job = |i: usize, ws: &mut Vec<f64>| {
            ws.clear();
            ws.extend((0..4).map(|k| ((i * 7 + k) as f64).cos()));
            Ok::<f64, ()>(ws.iter().sum())
        };
        let fresh_pool: WorkspacePool<Vec<f64>> = WorkspacePool::new();
        let fresh = Engine::new().with_threads(threads).run(jobs, &fresh_pool, job).unwrap();
        let warm_pool: WorkspacePool<Vec<f64>> = WorkspacePool::new();
        warm_pool.restore(vec![999.0; 1000]);
        warm_pool.restore(vec![-1.0; 3]);
        let warm = Engine::new().with_threads(threads).run(jobs, &warm_pool, job).unwrap();
        prop_assert_eq!(fresh, warm);
    }
}
